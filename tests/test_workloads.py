"""Functional and structural tests for the workload library."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.classical_sim import bits_to_int, int_to_bits, simulate_classical
from repro.ir.flatten import flatten_program
from repro.workloads import (
    LARGE_BENCHMARKS,
    NISQ_BENCHMARKS,
    adder_program,
    benchmark_names,
    load_benchmark,
    modexp_program,
    multiplier_program,
    rd53,
    salsa20_program,
    sha2_program,
    sym6,
    synthetic_program,
    two_of_five,
)
from repro.exceptions import ExperimentError, IRError


def _evaluate(program, input_bits):
    flat = flatten_program(program)
    assignment = dict(zip(flat.param_wires, input_bits))
    out = simulate_classical(flat.circuit, assignment)
    params = [out[w] for w in flat.param_wires]
    ancilla = [out[w] for w in range(flat.circuit.num_qubits)
               if w not in set(flat.param_wires)]
    return params, ancilla


class TestAdders:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_uncontrolled_addition(self, width):
        program = adder_program(width, controlled=False)
        rng = random.Random(width)
        for _ in range(10):
            a, b = rng.randrange(1 << width), rng.randrange(1 << width)
            bits = int_to_bits(a, width) + int_to_bits(b, width) + [0] * (width + 1)
            params, ancilla = _evaluate(program, bits)
            assert bits_to_int(params[2 * width:]) == a + b
            assert all(bit == 0 for bit in ancilla)

    @pytest.mark.parametrize("ctrl", [0, 1])
    def test_controlled_addition(self, ctrl):
        width = 3
        program = adder_program(width, controlled=True)
        a, b = 5, 6
        bits = [ctrl] + int_to_bits(a, width) + int_to_bits(b, width) + [0] * (width + 1)
        params, _ = _evaluate(program, bits)
        expected = a + b if ctrl else 0
        assert bits_to_int(params[1 + 2 * width:]) == expected

    def test_inputs_preserved(self):
        width = 4
        program = adder_program(width, controlled=True)
        bits = [1] + int_to_bits(9, width) + int_to_bits(13, width) + [0] * (width + 1)
        params, _ = _evaluate(program, bits)
        assert params[:1 + 2 * width] == bits[:1 + 2 * width]

    def test_invalid_width_rejected(self):
        with pytest.raises(IRError):
            adder_program(0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7))
    def test_addition_property(self, a, b):
        width = 3
        program = adder_program(width, controlled=False)
        bits = int_to_bits(a, width) + int_to_bits(b, width) + [0] * (width + 1)
        params, ancilla = _evaluate(program, bits)
        assert bits_to_int(params[2 * width:]) == a + b
        assert all(bit == 0 for bit in ancilla)


class TestMultiplier:
    @pytest.mark.parametrize("width", [2, 3])
    def test_controlled_multiplication(self, width):
        program = multiplier_program(width, controlled=True)
        rng = random.Random(width)
        for _ in range(8):
            a, b = rng.randrange(1 << width), rng.randrange(1 << width)
            ctrl = rng.randint(0, 1)
            bits = [ctrl] + int_to_bits(a, width) + int_to_bits(b, width) + [0] * (2 * width)
            params, ancilla = _evaluate(program, bits)
            expected = a * b if ctrl else 0
            assert bits_to_int(params[1 + 2 * width:]) == expected
            assert all(bit == 0 for bit in ancilla)

    def test_width_one_rejected(self):
        with pytest.raises(IRError):
            multiplier_program(1)


class TestOracles:
    def test_rd53_truth_table(self):
        program = rd53()
        for bits in itertools.product([0, 1], repeat=5):
            params, ancilla = _evaluate(program, list(bits) + [0, 0, 0])
            assert bits_to_int(params[5:]) == sum(bits)
            assert all(b == 0 for b in ancilla)

    def test_sym6_truth_table(self):
        program = sym6()
        for bits in itertools.product([0, 1], repeat=6):
            params, _ = _evaluate(program, list(bits) + [0])
            assert params[6] == (1 if sum(bits) in (2, 3, 4) else 0)

    def test_two_of_five_truth_table(self):
        program = two_of_five()
        for bits in itertools.product([0, 1], repeat=5):
            params, _ = _evaluate(program, list(bits) + [0])
            assert params[5] == (1 if sum(bits) == 2 else 0)


class TestStructuralWorkloads:
    """Modexp / SHA2 / Salsa20 are resource-model workloads; check structure."""

    def test_modexp_structure(self):
        program = modexp_program(width=3, exponent_bits=2)
        program.validate()
        assert program.num_levels() >= 4
        flat = flatten_program(program)
        assert flat.circuit.is_classical()

    def test_modexp_passthrough_when_exponent_zero(self):
        program = modexp_program(width=3, exponent_bits=2)
        # exponent bits 0 -> every stage copies the value through unchanged.
        value = 5
        bits = [0, 0] + int_to_bits(value, 3) + [0] * 3
        params, ancilla = _evaluate(program, bits)
        assert bits_to_int(params[5:]) == value
        assert all(b == 0 for b in ancilla)

    def test_sha2_structure(self):
        program = sha2_program(word_width=4, rounds=2)
        program.validate()
        assert program.num_levels() == 3
        assert program.static_gate_count() > 100

    def test_salsa20_structure(self):
        program = salsa20_program(word_width=4, rounds=1)
        program.validate()
        assert program.num_levels() == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(IRError):
            sha2_program(word_width=4, rounds=0)
        with pytest.raises(IRError):
            salsa20_program(word_width=1, rounds=1)
        with pytest.raises(IRError):
            modexp_program(width=3, exponent_bits=0)


class TestSyntheticBenchmarks:
    @pytest.mark.parametrize("name", ["jasmine-s", "elsa-s", "belle-s",
                                      "jasmine", "elsa", "belle"])
    def test_generation_is_reproducible(self, name):
        first = synthetic_program(name)
        second = synthetic_program(name)
        assert first.static_gate_count() == second.static_gate_count()
        assert len(first.modules()) == len(second.modules())

    def test_belle_is_deeply_nested(self):
        assert synthetic_program("belle").num_levels() >= 5

    def test_elsa_is_shallow_and_heavy(self):
        program = synthetic_program("elsa")
        assert program.num_levels() <= 3
        assert program.static_gate_count() > synthetic_program("belle-s").static_gate_count()

    def test_programs_are_classical_and_valid(self):
        for name in ("jasmine-s", "elsa-s", "belle-s"):
            program = synthetic_program(name)
            program.validate()
            assert flatten_program(program).circuit.is_classical()

    def test_unknown_name_rejected(self):
        with pytest.raises(IRError):
            synthetic_program("anna")


class TestRegistry:
    def test_all_names_present(self):
        names = benchmark_names()
        assert set(NISQ_BENCHMARKS) <= set(names)
        assert set(LARGE_BENCHMARKS) <= set(names)

    def test_load_by_any_case(self):
        assert load_benchmark("rd53").name == "RD53"
        assert load_benchmark("RD53").name == "RD53"

    def test_load_with_overrides(self):
        program = load_benchmark("MUL32", width=4)
        assert program.name == "MUL32"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ExperimentError):
            load_benchmark("nonexistent")

    def test_bad_override_rejected(self):
        with pytest.raises(ExperimentError):
            load_benchmark("RD53", width=7)
