"""Tests for repro.tuner: spaces, objectives, strategies, runs, reports.

Covers four layers:

* the declarative pieces — deterministic space expansion (grid and
  seeded sample), objective parsing/scalarization/Pareto dominance,
  and strategy round-planning (including successive-halving promotion
  and failed-candidate elimination);
* the :class:`~repro.tuner.TuningRun` driver against a local session —
  fingerprint dedup across racing rounds, mixed success/failure
  candidates, byte-identical determinism of repeated seeded runs;
* the JSONL trial journal — kill/resume with zero repeat compilations
  (proved by cache accounting), resume idempotence, refusal to resume
  a journal belonging to a different run, torn-tail tolerance;
* the remote backends (service client and 2-server cluster
  coordinator) and the ``tune`` CLI command.
"""

import json
import math
import threading

import pytest

from repro.exceptions import TunerError
from repro.api import MachineSpec, Session
from repro.cluster import ClusterCoordinator
from repro.core.compiler import POLICY_PRESETS, preset
from repro.service import ServiceClient, make_server
from repro.tuner import (
    CandidateEvaluation,
    Choice,
    FloatRange,
    GridSearch,
    IntRange,
    MultiObjective,
    Objective,
    RandomSearch,
    Round,
    RoundResult,
    SearchSpace,
    SuccessiveHalving,
    TUNER_METRICS,
    TuningReport,
    TuningRun,
    candidate_key,
    candidate_label,
    metric_values,
)
from repro.tuner.strategies import rank_candidates

GRID = MachineSpec.nisq_grid(5, 5)

#: The compact space most runner tests search: 2 x 2 policy pairs.
SMALL_SPACE = SearchSpace(
    Choice("allocation", ("laa", "lifo")),
    Choice("reclamation", ("cer", "lazy")),
)


def small_run(benchmarks=("RD53", "ADDER4"), *, space=SMALL_SPACE,
              objective="aqv", strategy=None, machine=GRID, **kwargs):
    """A fast two-round halving run over the small policy space."""
    strategy = strategy or SuccessiveHalving(scales=("quick", "laptop"))
    return TuningRun(space, objective, strategy, benchmarks,
                     machine=machine, **kwargs)


# ----------------------------------------------------------------------
# Search spaces
# ----------------------------------------------------------------------
class TestSearchSpace:
    def test_grid_is_cartesian_in_declaration_order(self):
        space = SearchSpace(Choice("allocation", ("laa", "lifo")),
                            Choice("reclamation", ("cer", "eager")))
        assert space.grid() == [
            {"allocation": "laa", "reclamation": "cer"},
            {"allocation": "laa", "reclamation": "eager"},
            {"allocation": "lifo", "reclamation": "cer"},
            {"allocation": "lifo", "reclamation": "eager"},
        ]
        assert space.size() == len(space) == 4

    def test_int_and_float_ranges(self):
        assert IntRange("max_qubits", 2, 8, step=3).grid_values() == (2, 5, 8)
        assert FloatRange("max_qubits", 0.0, 1.0,
                          steps=3).grid_values() == (0.0, 0.5, 1.0)
        assert FloatRange("max_qubits", 2.0, 9.0,
                          steps=1).grid_values() == (2.0,)

    def test_sample_is_seeded_and_without_replacement(self):
        space = SearchSpace(Choice("allocation", ("laa", "lifo")),
                            Choice("reclamation", ("cer", "eager", "lazy")))
        first = space.sample(4, seed=11)
        assert first == space.sample(4, seed=11)
        assert len(first) == 4
        keys = [candidate_key(candidate) for candidate in first]
        assert len(set(keys)) == 4, "sampling is without replacement"

    def test_sample_beyond_size_returns_shuffled_grid(self):
        space = SearchSpace(Choice("reclamation", ("cer", "eager", "lazy")))
        everything = space.sample(99, seed=3)
        assert sorted(map(candidate_key, everything)) == \
            sorted(map(candidate_key, space.grid()))

    def test_policy_space_reflects_registries(self):
        space = SearchSpace.policy_space()
        names = {param.name for param in space.params}
        assert names == {"allocation", "reclamation"}
        labels = {candidate_label(candidate) for candidate in space.grid()}
        assert "allocation=laa,reclamation=cer" in labels
        assert space.size() >= 6

    def test_config_for_overlays_base_and_clears_label(self):
        space = SearchSpace(Choice("allocation", ("lifo",)), base="square")
        config = space.config_for({"allocation": "lifo"})
        assert config.allocation == "lifo"
        assert config.reclamation == POLICY_PRESETS["square"].reclamation
        assert config.policy_name == "lifo+cer", \
            "the base preset's label must not shadow the candidate"

    def test_validation_errors(self):
        with pytest.raises(TunerError, match="at least one parameter"):
            SearchSpace()
        with pytest.raises(TunerError, match="not a CompilerConfig"):
            SearchSpace(Choice("swap_budget", (1, 2)))
        with pytest.raises(TunerError, match="appears twice"):
            SearchSpace(Choice("allocation", ("laa",)),
                        Choice("allocation", ("lifo",)))
        with pytest.raises(TunerError, match="no values"):
            Choice("allocation", ())
        with pytest.raises(TunerError, match="repeats a value"):
            Choice("allocation", ("laa", "laa"))
        with pytest.raises(TunerError, match="empty range"):
            IntRange("max_qubits", 9, 2)
        with pytest.raises(TunerError, match="unknown base preset"):
            SearchSpace(Choice("allocation", ("laa",)), base="bogus")
        with pytest.raises(TunerError, match="outside the space"):
            SMALL_SPACE.config_for({"decompose_toffoli": True})
        with pytest.raises(TunerError, match="sample size"):
            SMALL_SPACE.sample(0)


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------
class TestObjective:
    def test_parse_shorthand_forms(self):
        assert Objective.parse("aqv") == Objective("aqv")
        assert Objective.parse("max:aqv") == Objective("aqv", goal="max")
        assert Objective.parse("gates*2") == Objective("gates", weight=2.0)
        assert Objective.parse("max:qubits*0.5") == \
            Objective("qubits", goal="max", weight=0.5)

    def test_invalid_specs(self):
        with pytest.raises(TunerError, match="unknown objective metric"):
            Objective("speed")
        with pytest.raises(TunerError, match="min.*max"):
            Objective("aqv", goal="up")
        with pytest.raises(TunerError, match="weight"):
            Objective("aqv", weight=0)
        with pytest.raises(TunerError, match="non-numeric weight"):
            Objective.parse("aqv*fast")
        with pytest.raises(TunerError, match="at least one objective"):
            MultiObjective()
        with pytest.raises(TunerError, match="repeat a metric"):
            MultiObjective("aqv", "max:aqv")

    def test_scalarize_orients_and_weights(self):
        objective = MultiObjective(Objective("gates", weight=2.0),
                                  Objective("qubits", goal="max"))
        assert objective.scalarize({"gates": 10, "qubits": 4}) == 16.0
        with pytest.raises(TunerError, match="missing objective metric"):
            objective.scalarize({"gates": 10})

    def test_metric_values_cover_tuner_metrics_and_are_deterministic(self):
        result = Session().compile("RD53", machine=GRID, policy="square")
        values = metric_values(result)
        assert set(values) == set(TUNER_METRICS)
        assert values["total_gates"] == result.total_gate_count
        assert "compile_seconds" not in values, \
            "wall-clock must never leak into scores"

    def test_pareto_front_and_dominance(self):
        objective = MultiObjective("gates", "qubits")
        a = {"gates": 1, "qubits": 9}
        b = {"gates": 9, "qubits": 1}
        c = {"gates": 9, "qubits": 9}   # dominated by both
        d = {"gates": 1, "qubits": 9}   # duplicate of a
        assert objective.dominates(a, c) and objective.dominates(b, c)
        assert not objective.dominates(a, b)
        assert not objective.dominates(a, d), "equal points never dominate"
        assert objective.pareto_front([a, b, c, d]) == \
            [True, True, False, True]

    def test_max_goal_flips_dominance(self):
        objective = MultiObjective(Objective("aqv", goal="max"))
        assert objective.dominates({"aqv": 9}, {"aqv": 1})
        assert objective.scalarize({"aqv": 9}) < \
            objective.scalarize({"aqv": 1})


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
class TestStrategies:
    def test_grid_search_is_one_full_round(self):
        strategy = GridSearch(scale="quick")
        round_ = strategy.first_round(SMALL_SPACE)
        assert round_.scale == "quick" and len(round_) == 4
        assert strategy.next_round(SMALL_SPACE, round_, []) is None

    def test_random_search_samples_with_seed(self):
        strategy = RandomSearch(trials=3, seed=5, scale="quick")
        round_ = strategy.first_round(SMALL_SPACE)
        again = RandomSearch(trials=3, seed=5,
                             scale="quick").first_round(SMALL_SPACE)
        assert round_.candidates == again.candidates
        assert len(round_) == 3
        assert strategy.next_round(SMALL_SPACE, round_, []) is None

    def test_halving_promotes_best_fraction_up_the_ladder(self):
        strategy = SuccessiveHalving(scales=("quick", "laptop"), eta=2.0)
        first = strategy.first_round(SMALL_SPACE)
        assert first.scale == "quick" and len(first) == 4
        scored = [(candidate, float(index))
                  for index, candidate in enumerate(first.candidates)]
        second = strategy.next_round(SMALL_SPACE, first, scored)
        assert second.scale == "laptop" and second.number == 1
        assert list(second.candidates) == list(first.candidates[:2])
        assert strategy.next_round(SMALL_SPACE, second, scored[:2]) is None

    def test_halving_never_promotes_failed_candidates(self):
        strategy = SuccessiveHalving(scales=("quick", "laptop"), eta=2.0)
        first = strategy.first_round(SMALL_SPACE)
        scored = [(candidate, math.inf if index < 3 else 1.0)
                  for index, candidate in enumerate(first.candidates)]
        second = strategy.next_round(SMALL_SPACE, first, scored)
        assert list(second.candidates) == [first.candidates[3]]
        all_failed = [(candidate, math.inf)
                      for candidate in first.candidates]
        assert strategy.next_round(SMALL_SPACE, first, all_failed) is None

    def test_rank_candidates_breaks_ties_deterministically(self):
        tied = [({"allocation": "lifo"}, 1.0), ({"allocation": "laa"}, 1.0)]
        ranked = rank_candidates(tied)
        assert ranked == rank_candidates(list(reversed(tied)))
        assert ranked[0][0] == {"allocation": "laa"}

    def test_validation_errors(self):
        with pytest.raises(TunerError, match="unknown benchmark scale"):
            GridSearch(scale="huge")
        with pytest.raises(TunerError, match="trials"):
            RandomSearch(trials=0)
        with pytest.raises(TunerError, match="at least one scale"):
            SuccessiveHalving(scales=())
        with pytest.raises(TunerError, match="eta"):
            SuccessiveHalving(eta=1.0)
        with pytest.raises(TunerError, match="min_survivors"):
            SuccessiveHalving(min_survivors=0)


# ----------------------------------------------------------------------
# TuningRun against a local session
# ----------------------------------------------------------------------
class TestTuningRunLocal:
    def test_run_ranks_and_exports_a_preset_compatible_winner(self):
        run = small_run(backend=Session())
        report = run.run()
        assert len(report.standings) == 4
        best = report.best_config()
        config = preset("square", **best)
        assert config.allocation == best["allocation"]
        assert config.reclamation == best["reclamation"]
        scores = [e.score for e in report.standings
                  if e.round_number == report.final_round.number]
        assert scores == sorted(scores), "survivors rank by score"

    def test_fingerprint_dedup_across_racing_rounds(self):
        # RD53/ADDER4 have no scale overrides, so promotion to laptop
        # re-uses the quick-round fingerprints: round two must compile
        # nothing new.
        session = Session()
        run = small_run(backend=session)
        run.run()
        assert run.trials_executed == 8          # 4 candidates x 2 marks
        assert run.trials_deduped == 4           # 2 survivors x 2 marks
        assert session.cache_misses == run.trials_executed

    def test_seeded_run_is_deterministic_byte_for_byte(self):
        strategy = lambda: SuccessiveHalving(scales=("quick", "laptop"),
                                             trials=3, seed=9)
        first = small_run(strategy=strategy(), backend=Session()).run()
        second = small_run(strategy=strategy(), backend=Session()).run()
        assert first.to_json() == second.to_json()

    def test_failing_candidates_sink_and_are_not_promoted(self):
        # max_qubits=4 cannot hold RD53 on a 5x5 grid -> that candidate
        # fails with ResourceExhaustedError while its sibling succeeds.
        space = SearchSpace(Choice("max_qubits", (4, None)))
        run = TuningRun(space, "aqv",
                        SuccessiveHalving(scales=("quick", "laptop")),
                        ["RD53"], machine=GRID, backend=Session())
        report = run.run()
        standings = report.standings
        assert [e.ok for e in standings] == [True, False]
        assert standings[0].candidate == {"max_qubits": None}
        assert standings[-1].score is None
        rows = report.leaderboard_rows()
        assert "ResourceExhaustedError" in rows[-1]["error"]
        assert rows[0]["error"] == ""
        assert report.pareto_mask() == [True, False]
        assert report.best_config() == {"max_qubits": None}

    def test_every_candidate_failing_raises_on_best(self):
        run = TuningRun(SMALL_SPACE, "aqv", GridSearch(scale="quick"),
                        ["RD53"], machine=MachineSpec.nisq(2),
                        backend=Session())
        report = run.run()
        assert not any(e.ok for e in report.standings)
        with pytest.raises(TunerError, match="every candidate failed"):
            report.best()

    def test_multi_objective_pareto_flags_in_report(self):
        report = small_run(objective=MultiObjective("gates", "qubits"),
                           backend=Session()).run()
        mask = report.pareto_mask()
        final = report.final_round.number
        assert any(mask), "someone is always on the front"
        for evaluation, on_front in zip(report.standings, mask):
            if evaluation.round_number != final:
                assert not on_front, "eliminated candidates never flag"

    def test_on_trial_fires_once_per_executed_trial(self):
        seen = []
        run = small_run(backend=Session(), on_trial=seen.append)
        run.run()
        assert len(seen) == run.trials_executed
        assert all(record["ok"] for record in seen)
        assert {record["benchmark"] for record in seen} == \
            {"RD53", "ADDER4"}

    def test_constructor_validation(self):
        with pytest.raises(TunerError, match="at least one benchmark"):
            small_run(benchmarks=())
        with pytest.raises(TunerError, match="backend"):
            TuningRun(SMALL_SPACE, "aqv", GridSearch(scale="quick"),
                      ["RD53"], backend=object())

    def test_backend_entry_count_mismatch_raises(self):
        class Broken:
            def run(self, jobs):
                return []

        run = small_run(backend=Broken())
        with pytest.raises(TunerError, match="returned 0 entries"):
            run.run()


# ----------------------------------------------------------------------
# The trial journal
# ----------------------------------------------------------------------
class KilledMidRun(Exception):
    pass


class TestJournalResume:
    @staticmethod
    def killed_after(n, journal):
        """Run until ``n`` trials are journaled, then 'crash'."""
        def killer(record):
            killer.count += 1
            if killer.count >= n:
                raise KilledMidRun()
        killer.count = 0
        run = small_run(backend=Session(), journal_path=journal,
                        on_trial=killer)
        with pytest.raises(KilledMidRun):
            run.run()
        return run

    def test_resume_performs_zero_repeat_compilations(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        reference = small_run(backend=Session()).run()
        self.killed_after(3, journal)
        session = Session()
        resumed = small_run(backend=session, journal_path=journal)
        report = resumed.run()
        assert resumed.journal_restored == 3
        assert resumed.trials_executed == 8 - 3
        assert session.cache_misses == resumed.trials_executed
        assert session.cache_hits == 0, "no journaled trial recompiled"
        assert report.to_json() == reference.to_json()

    def test_resume_is_idempotent(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        first = small_run(backend=Session(), journal_path=journal)
        report = first.run()
        session = Session()
        again = small_run(backend=session, journal_path=journal)
        assert again.run().to_json() == report.to_json()
        assert again.trials_executed == 0, \
            "a complete journal leaves nothing to compile"
        assert again.journal_restored == first.trials_executed
        assert session.cache_misses == 0

    def test_journal_of_a_different_run_is_refused(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        small_run(backend=Session(), journal_path=journal).run()
        with pytest.raises(TunerError, match="belongs to run"):
            small_run(objective="gates", journal_path=journal)

    def test_torn_tail_is_tolerated_header_garbage_is_not(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        run = small_run(backend=Session(), journal_path=journal)
        run.run()
        with open(journal, "a", encoding="utf-8") as stream:
            stream.write('{"type": "trial", "fingerpr')  # torn write
        resumed = small_run(journal_path=journal)
        assert resumed.journal_restored == run.trials_executed
        headerless = tmp_path / "bad.jsonl"
        headerless.write_text('{"type": "trial"}\n')
        with pytest.raises(TunerError, match="no header"):
            small_run(journal_path=headerless)

    def test_journal_resumes_across_backends(self, tmp_path):
        # The run fingerprint excludes the backend: a journal written
        # against one session resumes against another (or a cluster).
        journal = tmp_path / "tune.jsonl"
        self.killed_after(2, journal)
        resumed = small_run(backend=Session(), journal_path=journal)
        reference = small_run(backend=Session()).run()
        assert resumed.run().to_json() == reference.to_json()
        assert resumed.journal_restored == 2


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def evaluation(candidate, round_number, scale, score, ok=True):
    metrics = None if not ok else {"gates": score, "qubits": 1.0}
    return CandidateEvaluation(
        candidate=candidate, round_number=round_number, scale=scale,
        ok=ok, score=None if not ok else score, metrics=metrics,
        per_benchmark={"RD53": {"ok": True, "metrics": metrics} if ok
                       else {"ok": False,
                             "error": {"error_type": "CompilationError"}}})


class TestTuningReport:
    @staticmethod
    def report(rounds):
        return TuningReport(descriptor={"demo": True},
                            objective=MultiObjective("gates"),
                            benchmarks=("RD53",), rounds=rounds)

    def test_later_rounds_outrank_and_failures_sink(self):
        first = RoundResult(0, "quick", [
            evaluation({"allocation": "laa"}, 0, "quick", 5.0),
            evaluation({"allocation": "lifo"}, 0, "quick", 1.0),
            evaluation({"reclamation": "cer"}, 0, "quick", None, ok=False),
        ])
        second = RoundResult(1, "laptop", [
            evaluation({"allocation": "lifo"}, 1, "laptop", 9.0),
        ])
        standings = self.report([first, second]).standings
        assert [e.candidate for e in standings] == [
            {"allocation": "lifo"},   # final round wins despite score 9
            {"allocation": "laa"},
            {"reclamation": "cer"},   # failed: last
        ]

    def test_rows_pad_error_column_uniformly(self):
        rounds = [RoundResult(0, "quick", [
            evaluation({"allocation": "laa"}, 0, "quick", 2.0),
            evaluation({"allocation": "lifo"}, 0, "quick", None, ok=False),
        ])]
        rows = self.report(rounds).leaderboard_rows()
        assert [row["error"] for row in rows] == ["", "CompilationError"]
        assert [row["rank"] for row in rows] == [1, 2]

    def test_to_json_round_trips_and_names_best(self, tmp_path):
        rounds = [RoundResult(0, "quick", [
            evaluation({"allocation": "laa"}, 0, "quick", 2.0)])]
        report = self.report(rounds)
        path = tmp_path / "board.json"
        text = report.to_json(str(path))
        assert path.read_text(encoding="utf-8") == text
        decoded = json.loads(text)
        assert decoded["best"] == {"allocation": "laa"}
        assert decoded["leaderboard"][0]["pareto"] is True

    def test_empty_report_is_rejected(self):
        with pytest.raises(TunerError, match="at least one round"):
            self.report([])


# ----------------------------------------------------------------------
# Remote backends (service + cluster) and the CLI
# ----------------------------------------------------------------------
def start_servers(count, tmp_path=None):
    servers, urls = [], []
    for index in range(count):
        cache_dir = str(tmp_path / f"cache-{index}") if tmp_path else None
        server = make_server("127.0.0.1", 0, workers=1, cache_dir=cache_dir)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        urls.append("http://%s:%s" % server.server_address[:2])
    return servers, urls


def stop(server):
    server.shutdown()
    server.server_close()


class TestRemoteBackends:
    def test_service_and_cluster_match_local_byte_for_byte(self, tmp_path):
        local = small_run(backend=Session()).run()
        servers, urls = start_servers(2, tmp_path)
        try:
            via_client = small_run(backend=ServiceClient(urls[0])).run()
            assert via_client.to_json() == local.to_json()
            coordinator = ClusterCoordinator(urls)
            cluster_run = small_run(backend=coordinator)
            assert cluster_run.backend.kind == "cluster"
            assert cluster_run.run().to_json() == local.to_json()
            fleet = coordinator.topology.fleet_stats()
            assert fleet["reachable"] == 2
            assert fleet["fleet"]["jobs_run"] >= 1
        finally:
            for server in servers:
                stop(server)

    def test_tuning_trials_share_one_trace_id(self, tmp_path):
        # Every trial a run pushes through a remote backend must land
        # under the backend's single trace id, so one `trace` command
        # shows the whole tuning run as a waterfall.
        servers, urls = start_servers(2, tmp_path)
        try:
            client = ServiceClient(urls[0])
            small_run(backend=client).run()
            payload = client.trace(client.trace_id)
            assert payload["trace_id"] == client.trace_id
            spans = payload["spans"]
            assert {span["trace_id"] for span in spans} == {client.trace_id}
            names = {span["name"] for span in spans}
            assert {"server.handle", "job.run", "compile"} <= names

            coordinator = ClusterCoordinator(urls)
            small_run(backend=coordinator).run()
            merged = coordinator.collect_trace()
            assert merged["trace_id"] == coordinator.trace_id
            assert merged["count"] > 0
            assert {span["trace_id"] for span in merged["spans"]} == \
                {coordinator.trace_id}
            # Both shards executed trials under the one id.
            assert {span["worker"] for span in merged["spans"]} == set(urls)
        finally:
            for server in servers:
                stop(server)


class TestTuneCLI:
    def test_tune_command_exports_best_and_leaderboard(self, tmp_path):
        from repro.experiments.__main__ import main

        best_path = tmp_path / "best.json"
        board_path = tmp_path / "board.json"
        journal = tmp_path / "tune.jsonl"
        argv = ["tune", "RD53", "ADDER4", "--grid", "5", "5",
                "--scales", "quick", "--strategy", "grid",
                "--objective", "aqv",
                "--journal", str(journal),
                "--export", str(board_path),
                "--export-best", str(best_path)]
        assert main(argv) == 0
        best = json.loads(best_path.read_text(encoding="utf-8"))
        assert {"allocation", "reclamation"} <= set(best)
        board = json.loads(board_path.read_text(encoding="utf-8"))
        assert board["best"] == best
        # Rerunning over the same journal restores every trial and
        # exports identical bytes.
        rerun_path = tmp_path / "board2.json"
        assert main(["tune", "RD53", "ADDER4", "--grid", "5", "5",
                     "--scales", "quick", "--strategy", "grid",
                     "--objective", "aqv", "--journal", str(journal),
                     "--export", str(rerun_path)]) == 0
        assert rerun_path.read_bytes() == board_path.read_bytes()

    def test_every_candidate_failing_still_prints_the_leaderboard(
            self, capsys):
        # A 3x3 grid cannot hold RD53: every trial fails under failure
        # isolation.  That is a structured outcome, not a crash — the
        # leaderboard (with its error column) must still come out.
        from repro.experiments.__main__ import main

        argv = ["tune", "RD53", "--grid", "3", "3", "--scales", "quick",
                "--strategy", "grid"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "every candidate failed" in out
        assert "ResourceExhaustedError" in out
        # ...but exporting a best config from an all-failed run is an
        # error the user must see.
        with pytest.raises(SystemExit, match="every candidate failed"):
            main(argv + ["--export-best", "best.json"])

    def test_cli_validation(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["tune"])  # no benchmarks
        with pytest.raises(SystemExit):
            main(["sweep", "RD53", "--journal", "x.jsonl"])
        with pytest.raises(SystemExit):
            main(["compile", "RD53", "--strategy", "grid"])
        with pytest.raises(SystemExit):
            main(["tune", "RD53", "--scale", "quick"])  # use --scales
        with pytest.raises(SystemExit):
            main(["tune", "RD53", "--policies", "lazy"])  # space is fixed
        with pytest.raises(SystemExit):
            main(["tune", "RD53", "--strategy", "grid", "--trials", "5"])
        with pytest.raises(SystemExit):
            main(["tune", "RD53", "--strategy", "random", "--trials", "0"])
        with pytest.raises(SystemExit):
            main(["cluster-stats"])  # no endpoints
