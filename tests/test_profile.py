"""Tests for repro.profile: the deterministic compile-path profiler."""

from __future__ import annotations

import pytest

from repro.api import CompileJob, MachineSpec
from repro.api.job import execute_job
from repro.exceptions import ExperimentError
from repro.profile import (
    PHASE_WORK,
    JobProfile,
    ProfileReport,
    profile_benchmarks,
    profile_results,
    result_counters,
)

GRID = MachineSpec.nisq_grid(5, 5)


def _fresh_result(name="RD53", policy="square"):
    return execute_job(CompileJob.for_benchmark(name, GRID, policy))


class TestCounters:
    def test_counters_are_deterministic_across_runs(self):
        first = result_counters(_fresh_result())
        second = result_counters(_fresh_result())
        assert first == second  # machine-independent by construction

    def test_counter_relationships(self):
        counters = result_counters(_fresh_result())
        assert counters["routed_gates"] \
            == counters["gates"] + counters["swaps"]
        assert counters["gates"] > 0
        assert counters["liveness_events"] > 0
        assert counters["reclaim_ops"] >= 0

    def test_every_profiled_phase_has_a_work_counter(self):
        profile = JobProfile.from_result(_fresh_result())
        for phase in profile.phase_seconds:
            assert phase in PHASE_WORK, phase
            assert PHASE_WORK[phase] in profile.counters


class TestJobProfile:
    def test_from_result_captures_phases_and_label(self):
        profile = JobProfile.from_result(_fresh_result())
        assert profile.label == "RD53/square"
        assert set(profile.phase_seconds) == set(PHASE_WORK)
        assert profile.compile_seconds > 0

    def test_rejects_results_without_phase_timings(self):
        result = _fresh_result()
        stripped = result.from_dict(result.to_dict())  # drops telemetry
        with pytest.raises(ExperimentError):
            JobProfile.from_result(stripped)

    def test_phase_rate_is_work_over_seconds(self):
        profile = JobProfile(
            label="x", program_name="x", policy_name="p",
            machine_name="m", compile_seconds=1.0,
            phase_seconds={"allocation": 0.5}, counters={"gates": 100})
        assert profile.phase_rate("allocation") == pytest.approx(200.0)

    def test_phase_rate_floors_on_zero_seconds(self):
        profile = JobProfile(
            label="x", program_name="x", policy_name="p",
            machine_name="m", compile_seconds=1.0,
            phase_seconds={"allocation": 0.0}, counters={"gates": 100})
        assert profile.phase_rate("allocation") == 100.0

    def test_to_dict_shape(self):
        data = JobProfile.from_result(_fresh_result()).to_dict()
        assert set(data) == {"label", "program_name", "policy_name",
                             "machine_name", "compile_seconds",
                             "phase_seconds", "phase_rates", "counters"}
        assert set(data["phase_rates"]) == set(data["phase_seconds"])


class TestProfileReport:
    def _report(self):
        return profile_benchmarks(["RD53", "ADDER4"], GRID,
                                  policies=("eager", "square"),
                                  scale="quick")

    def test_profiles_every_pair(self):
        report = self._report()
        assert len(report) == 4
        assert [profile.label for profile in report] == [
            "RD53/eager", "RD53/square", "ADDER4/eager", "ADDER4/square"]

    def test_phase_totals_sum_per_phase(self):
        report = self._report()
        totals = report.phase_totals()
        assert set(totals) == set(PHASE_WORK)
        for phase, total in totals.items():
            assert total == pytest.approx(sum(
                profile.phase_seconds[phase] for profile in report))

    def test_hotspots_rank_by_seconds(self):
        rows = self._report().hotspots()
        seconds = [row["seconds"] for row in rows]
        assert seconds == sorted(seconds, reverse=True)
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)

    def test_hotspots_top_n(self):
        assert len(self._report().hotspots(top=3)) == 3

    def test_table_is_deterministic_given_fixed_profiles(self):
        report = self._report()
        assert report.table() == report.table()
        first_data_row = report.table().splitlines()[3]
        top = report.hotspots(top=1)[0]
        assert top["label"] in first_data_row
        assert top["phase"] in first_data_row

    def test_table_handles_empty_report(self):
        text = ProfileReport([]).table("empty")
        assert "0 job(s)" in text

    def test_to_dict_round_trips_to_json(self):
        import json

        data = self._report().to_dict()
        assert json.loads(json.dumps(data)) == data
        assert len(data["jobs"]) == 4

    def test_profile_results_wraps_existing_results(self):
        report = profile_results([_fresh_result()], labels=["custom"])
        assert report.profiles[0].label == "custom"
