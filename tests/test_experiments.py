"""Integration tests for the experiment harness (quick-scale runs)."""

import pytest

from repro.api import Session
from repro.experiments import EXPERIMENTS, figure1, figure5, figure8, figure9, figure10, table3, table4
from repro.experiments.runner import (
    benchmark_overrides,
    compile_with_autosize,
    load_scaled_benchmark,
    nisq_machine_factory,
)
from repro.exceptions import ExperimentError

NISQ_QUICK = ("RD53", "belle-s")
LARGE_QUICK = ("ADDER32", "Belle")


class TestRunnerHelpers:
    def test_benchmark_overrides_scales(self):
        assert benchmark_overrides("MUL32", "paper") == {}
        assert benchmark_overrides("MUL32", "quick")["width"] <= 8
        with pytest.raises(ExperimentError):
            benchmark_overrides("MUL32", "huge")

    def test_load_scaled_benchmark(self):
        program = load_scaled_benchmark("MODEXP", "quick")
        assert program.name == "MODEXP"

    def test_autosize_grows_machine(self):
        program = load_scaled_benchmark("ADDER32", "quick")
        result = compile_with_autosize(program, "lazy", nisq_machine_factory(),
                                       start_qubits=8)
        assert result.num_qubits_used > 8


class TestExperimentRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {"figure1", "figure5", "figure8a", "figure8b", "figure8c",
                    "figure9", "figure10", "table3", "table4"}
        assert expected == set(EXPERIMENTS)

    def test_experiments_share_a_session_cache(self):
        session = Session()
        first = table3.run(benchmarks=NISQ_QUICK, policies=("lazy", "square"),
                           session=session)
        assert session.cache_misses == len(NISQ_QUICK) * 2
        second = table3.run(benchmarks=NISQ_QUICK, policies=("lazy", "square"),
                            session=session)
        assert session.cache_misses == len(NISQ_QUICK) * 2  # all hits
        assert first.rows == second.rows
        # figure8a overlaps table3's (benchmark, policy, config) grid.
        figure8.run_aqv(benchmarks=NISQ_QUICK, policies=("lazy", "square"),
                        session=session)
        assert session.cache_misses == len(NISQ_QUICK) * 2


class TestTableExperiments:
    def test_table4_rows(self):
        experiment = table4.run()
        assert len(experiment.rows) == 3
        assert "Table IV" in table4.format_report(experiment)

    def test_table3_quick(self):
        experiment = table3.run(benchmarks=NISQ_QUICK, policies=("lazy", "square"))
        assert len(experiment.rows) == len(NISQ_QUICK) * 2
        for row in experiment.rows:
            assert row["gates"] > 0
            assert row["qubits"] > 0
        assert "Table III" in table3.format_report(experiment)


class TestFigureExperiments:
    def test_figure1_square_has_smallest_area(self):
        experiment = figure1.run(scale="quick")
        areas = {row["policy"]: row["area (AQV)"] for row in experiment.rows}
        assert experiment.extras["best_policy"] in areas
        assert areas[experiment.extras["best_policy"]] == min(areas.values())
        assert "Figure 1" in figure1.format_report(experiment)

    def test_figure5_reports_both_machines(self):
        experiment = figure5.run()
        assert {"lattice AQV", "fully-connected AQV"} <= set(experiment.rows[0])
        assert experiment.extras["preferred_on_full"] in ("lazy", "eager")

    def test_figure8a_quick(self):
        experiment = figure8.run_aqv(benchmarks=NISQ_QUICK,
                                     policies=("lazy", "square"))
        for row in experiment.rows:
            assert row["lazy"] > 0 and row["square"] > 0

    def test_figure8b_quick(self):
        experiment = figure8.run_success(benchmarks=NISQ_QUICK)
        for row in experiment.rows:
            for policy in ("lazy", "eager", "square"):
                assert 0.0 < row[policy] <= 1.0

    def test_figure8c_quick(self):
        experiment = figure8.run_noise(benchmarks=("RD53",), shots=128)
        row = experiment.rows[0]
        for policy in ("lazy", "eager", "square"):
            assert 0.0 <= row[policy] <= 1.0

    def test_figure9_quick_normalised_to_lazy(self):
        experiment = figure9.run(benchmarks=LARGE_QUICK, scale="quick")
        for row in experiment.rows:
            assert row["lazy"] == pytest.approx(1.0)
            assert row["square"] > 0
        assert experiment.extras["mean_reduction_vs_lazy"] > 0

    def test_figure10_quick_on_ft_machines(self):
        experiment = figure10.run(benchmarks=LARGE_QUICK, scale="quick")
        for row in experiment.rows:
            assert row["lazy"] == pytest.approx(1.0)
        assert "mean_reduction_vs_lazy_pct" in experiment.extras
