"""Tests for repro.telemetry.spans: the end-to-end span waterfall.

Unit-level: span lifecycle, the bounded recorder, context propagation,
the PhaseTimer bridge, and the deterministic ASCII renderer.  End to
end: a live server's ``GET /trace/<id>`` carries the whole job path
(handler, queue wait, worker run, cache tiers, compile phases), and a
two-server cluster merges every shard's spans under one trace id.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import CompileJob, MachineSpec
from repro.exceptions import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import make_server
from repro.telemetry import (
    Span,
    SpanRecorder,
    child_span,
    current_span,
    record_compile_spans,
    render_waterfall,
    valid_trace_id,
)

GRID = MachineSpec.nisq_grid(5, 5)


# ----------------------------------------------------------------------
# Span basics
# ----------------------------------------------------------------------
class TestSpan:
    def test_start_finish_stamps_duration(self):
        span = Span("op", trace_id="t" * 16)
        try:
            span.start()
        finally:
            span.finish()
        assert span.duration is not None and span.duration >= 0.0
        assert span.trace_id == "t" * 16
        assert len(span.span_id) == 16

    def test_finish_is_idempotent(self):
        recorder = SpanRecorder()
        with recorder.span("op") as span:
            span.finish()
            first = span.duration
        assert span.duration == first  # __exit__ did not re-stamp
        assert recorder.stats()["recorded"] == 1  # and did not re-record

    def test_finish_without_start_records_nothing(self):
        span = Span("op")
        span.finish()
        assert span.duration is None

    def test_invalid_trace_id_is_replaced(self):
        span = Span("op", trace_id="not hex!")
        assert valid_trace_id(span.trace_id)

    def test_start_wall_uses_process_anchor(self):
        recorder = SpanRecorder()
        with recorder.span("a") as outer:
            with recorder.span("b") as inner:
                pass
        assert inner.start_wall >= outer.start_wall

    def test_to_dict_shape(self):
        recorder = SpanRecorder()
        with recorder.span("op", labels={"k": "v"}) as span:
            pass
        data = span.to_dict()
        assert set(data) == {"trace_id", "span_id", "parent_id", "name",
                             "start", "duration", "labels"}
        assert data["labels"] == {"k": "v"}

    def test_span_ids_are_unique(self):
        ids = {Span("op").span_id for _ in range(1000)}
        assert len(ids) == 1000


# ----------------------------------------------------------------------
# Recorder: ring bound, trace queries, context propagation
# ----------------------------------------------------------------------
class TestSpanRecorder:
    def test_capacity_bounds_the_buffer(self):
        recorder = SpanRecorder(capacity=10)
        for index in range(25):
            recorder.add(f"op-{index}", trace_id="a" * 16)
        stats = recorder.stats()
        assert stats["buffered"] == 10
        assert stats["recorded"] == 25
        assert stats["evicted"] == 15
        names = [span.name for span in recorder.snapshot()]
        assert names[0] == "op-15"  # oldest spans evicted first

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)

    def test_nested_spans_link_parent_and_trace(self):
        recorder = SpanRecorder()
        with recorder.span("outer") as outer:
            assert current_span() is outer
            with recorder.span("inner") as inner:
                assert current_span() is inner
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            assert current_span() is outer
        assert current_span() is None

    def test_explicit_parent_id_overrides_context(self):
        recorder = SpanRecorder()
        with recorder.span("outer", trace_id="c" * 16):
            with recorder.span("adopted", trace_id="c" * 16,
                               parent_id="feedfeedfeedfeed") as span:
                assert span.parent_id == "feedfeedfeedfeed"

    def test_context_restored_after_exception(self):
        recorder = SpanRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("doomed"):
                raise RuntimeError("boom")
        assert current_span() is None
        assert recorder.stats()["recorded"] == 1  # finished on the way out

    def test_for_trace_filters_and_sorts(self):
        recorder = SpanRecorder()
        recorder.add("late", trace_id="a" * 16, start_mono=2.0)
        recorder.add("early", trace_id="a" * 16, start_mono=1.0)
        recorder.add("other", trace_id="b" * 16, start_mono=0.0)
        spans = recorder.for_trace("a" * 16)
        assert [span.name for span in spans] == ["early", "late"]

    def test_add_records_prefinished_span(self):
        recorder = SpanRecorder()
        span = recorder.add("queue.wait", trace_id="a" * 16,
                            duration=0.5, labels={"job_id": "j1"})
        assert span.duration == 0.5
        assert recorder.snapshot() == [span]

    def test_concurrent_recording_is_safe(self):
        recorder = SpanRecorder(capacity=64)

        def spin():
            for _ in range(100):
                with recorder.span("op"):
                    pass

        threads = [threading.Thread(target=spin, daemon=True)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.stats()["recorded"] == 400


class TestChildSpan:
    def test_noop_without_active_span(self):
        with child_span("cache.memory") as span:
            assert span is None

    def test_real_child_under_active_span(self):
        recorder = SpanRecorder()
        with recorder.span("job.run") as parent:
            with child_span("cache.memory", labels={"hits": "1"}) as span:
                assert span is not None
                assert span.parent_id == parent.span_id
        names = {span.name for span in recorder.snapshot()}
        assert names == {"job.run", "cache.memory"}


# ----------------------------------------------------------------------
# PhaseTimer bridge
# ----------------------------------------------------------------------
class _FakeResult:
    def __init__(self, compile_seconds, phase_seconds):
        self.compile_seconds = compile_seconds
        self.phase_seconds = phase_seconds


class TestRecordCompileSpans:
    def test_phases_become_children_at_cumulative_offsets(self):
        recorder = SpanRecorder()
        result = _FakeResult(0.3, {"validate": 0.1, "allocation": 0.2})
        with recorder.span("session.compile") as parent:
            record_compile_spans(parent, [("RD53", result)])
        by_name = {span.name: span for span in recorder.snapshot()}
        compile_span = by_name["compile"]
        assert compile_span.parent_id == parent.span_id
        assert compile_span.duration == 0.3
        assert compile_span.labels == {"benchmark": "RD53"}
        allocation = by_name["phase.allocation"]
        validate = by_name["phase.validate"]
        assert allocation.parent_id == compile_span.span_id
        # Sorted phase order: allocation first, validate offset after it.
        assert validate.start_mono == pytest.approx(
            allocation.start_mono + 0.2)

    def test_jobs_lay_out_sequentially(self):
        recorder = SpanRecorder()
        results = [("a", _FakeResult(0.1, {})), ("b", _FakeResult(0.2, {}))]
        with recorder.span("session.compile") as parent:
            record_compile_spans(parent, results)
        compiles = sorted((span for span in recorder.snapshot()
                           if span.name == "compile"),
                          key=lambda span: span.start_mono)
        assert compiles[1].start_mono == pytest.approx(
            compiles[0].start_mono + 0.1)

    def test_cached_results_are_skipped(self):
        recorder = SpanRecorder()
        with recorder.span("session.compile") as parent:
            record_compile_spans(parent, [("miss", None)])
        assert [span.name for span in recorder.snapshot()] \
            == ["session.compile"]

    def test_noop_without_recorder(self):
        span = Span("orphan")
        span.start()
        try:
            record_compile_spans(span, [("a", _FakeResult(0.1, {}))])
        finally:
            span.finish()
        assert span.recorder is None  # nothing to record into; no crash


# ----------------------------------------------------------------------
# Waterfall rendering
# ----------------------------------------------------------------------
class TestRenderWaterfall:
    def _records(self):
        return [
            {"trace_id": "a" * 16, "span_id": "root000000000000",
             "parent_id": None, "name": "job.run", "start": 100.0,
             "duration": 1.0, "labels": {}},
            {"trace_id": "a" * 16, "span_id": "child00000000000",
             "parent_id": "root000000000000", "name": "compile",
             "start": 100.2, "duration": 0.5,
             "labels": {"benchmark": "RD53"}, "worker": "http://w1"},
        ]

    def test_renders_hierarchy_and_labels(self):
        text = render_waterfall(self._records())
        lines = text.splitlines()
        assert lines[0].startswith("trace " + "a" * 16)
        assert "2 span(s)" in lines[0]
        assert lines[1].lstrip().startswith("job.run")
        assert lines[2].lstrip().startswith("compile")  # indented child
        assert "{benchmark=RD53}" in lines[2]
        assert "@http://w1" in lines[2]

    def test_deterministic_output(self):
        records = self._records()
        assert render_waterfall(records) \
            == render_waterfall(list(reversed(records)))

    def test_orphan_spans_render_as_roots(self):
        records = self._records()
        records[1]["parent_id"] = "missing0missing0"
        text = render_waterfall(records)
        assert "compile" in text

    def test_empty_trace(self):
        assert render_waterfall([]) == "(no spans)\n"

    def test_accepts_span_objects(self):
        recorder = SpanRecorder()
        with recorder.span("op"):
            pass
        assert "op" in render_waterfall(recorder.snapshot())


# ----------------------------------------------------------------------
# End to end: one server, then a two-server fleet
# ----------------------------------------------------------------------
@pytest.fixture()
def live_server(tmp_path):
    server = make_server("127.0.0.1", 0, cache_dir=str(tmp_path / "cache"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestTraceEndpoint:
    def test_job_path_spans_land_under_one_trace(self, live_server):
        server, url = live_server
        client = ServiceClient(url)
        job = CompileJob.for_benchmark("RD53", GRID)
        job_id = client.submit_async(job)
        client.wait_for(job_id)

        payload = client.trace()
        assert payload["trace_id"] == client.trace_id
        names = [span["name"] for span in payload["spans"]]
        for expected in ("server.handle", "queue.wait", "job.run",
                         "cache.memory", "session.compile", "compile",
                         "phase.allocation"):
            assert expected in names, names
        assert all(span["trace_id"] == client.trace_id
                   for span in payload["spans"])
        wait = next(span for span in payload["spans"]
                    if span["name"] == "queue.wait")
        assert wait["labels"]["job_id"] == job_id

    def test_waterfall_nests_job_under_handler(self, live_server):
        _, url = live_server
        client = ServiceClient(url)
        client.wait_for(client.submit_async(CompileJob.for_benchmark(
            "RD53", GRID)))
        spans = client.trace()["spans"]
        by_name = {span["name"]: span for span in spans}
        handler = by_name["server.handle"]
        assert by_name["job.run"]["parent_id"] == handler["span_id"]
        assert by_name["queue.wait"]["parent_id"] == handler["span_id"]
        compile_span = by_name["compile"]
        assert by_name["phase.validate"]["parent_id"] \
            == compile_span["span_id"]

    def test_get_polling_stays_span_free(self, live_server):
        _, url = live_server
        client = ServiceClient(url)
        client.wait_for(client.submit_async(CompileJob.for_benchmark(
            "RD53", GRID)))
        for _ in range(5):
            client.health()
        names = [span["name"] for span in client.trace()["spans"]]
        assert names.count("server.handle") == 1  # only the POST

    def test_unknown_trace_returns_empty(self, live_server):
        _, url = live_server
        payload = ServiceClient(url).trace("f" * 16)
        assert payload == {"trace_id": "f" * 16, "count": 0, "spans": []}

    def test_malformed_trace_id_rejected(self, live_server):
        _, url = live_server
        with pytest.raises(ServiceError):
            ServiceClient(url).trace("not a trace id")

    def test_client_side_spans_are_optional(self, live_server):
        _, url = live_server
        recorder = SpanRecorder()
        client = ServiceClient(url, spans=recorder)
        client.health()
        spans = recorder.snapshot()
        assert [span.name for span in spans] == ["client.request"]
        assert spans[0].labels == {"method": "GET", "path": "/health"}
        assert spans[0].trace_id == client.trace_id


class TestFleetTrace:
    def _servers(self, tmp_path, count=2):
        servers = []
        for index in range(count):
            server = make_server(
                "127.0.0.1", 0,
                cache_dir=str(tmp_path / f"cache-{index}"))
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            servers.append((server, thread))
        urls = [f"http://127.0.0.1:{server.server_address[1]}"
                for server, _ in servers]
        return servers, urls

    def _stop(self, servers):
        for server, thread in servers:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_cluster_sweep_merges_spans_from_every_shard(self, tmp_path):
        from repro.api import SweepSpec
        from repro.cluster import ClusterCoordinator

        servers, urls = self._servers(tmp_path)
        try:
            spec = SweepSpec(benchmarks=("RD53", "ADDER4", "2OF5", "6SYM"),
                             machines=(GRID,), policies=("square",),
                             scales=("quick",))
            coordinator = ClusterCoordinator(urls)
            result = coordinator.run(spec)
            assert len(result) == 4

            payload = coordinator.collect_trace()
            assert payload["trace_id"] == coordinator.trace_id
            workers = {span.get("worker") for span in payload["spans"]}
            assert workers == set(urls)  # spans from every shard
            assert all(span["trace_id"] == coordinator.trace_id
                       for span in payload["spans"])
            for name in ("queue.wait", "job.run", "compile",
                         "phase.allocation"):
                assert any(span["name"] == name
                           for span in payload["spans"]), name
            assert all(info["reachable"]
                       for info in payload["workers"].values())

            # The merged list renders one waterfall, deterministically.
            text = render_waterfall(payload["spans"])
            assert text == render_waterfall(payload["spans"])
            assert coordinator.trace_id in text.splitlines()[0]
        finally:
            self._stop(servers)

    def test_unreachable_worker_reported_not_dropped(self, tmp_path):
        from repro.cluster import ClusterTopology

        servers, urls = self._servers(tmp_path, count=1)
        dead = "http://127.0.0.1:9"  # discard port: nothing listens
        try:
            topology = ClusterTopology(urls + [dead])
            client = ServiceClient(urls[0],
                                   trace_id=topology.trace_id)
            client.health()
            payload = topology.fleet_trace()
            assert payload["workers"][urls[0]]["reachable"] is True
            assert payload["workers"][dead]["reachable"] is False
            assert "error" in payload["workers"][dead]
        finally:
            self._stop(servers)
