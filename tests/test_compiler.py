"""Integration tests for the SQUARE compiler.

These exercise the full instrumentation-driven walk: allocation,
scheduling with routing, reclamation decisions, uncomputation replay and
the resulting metrics, for every policy preset.
"""

import itertools

import pytest

from repro.exceptions import CompilationError, ResourceExhaustedError
from repro.arch.ft import FTMachine
from repro.arch.machine import IdealMachine
from repro.arch.nisq import NISQMachine
from repro.core.compiler import (
    POLICY_PRESETS,
    CompilerConfig,
    SquareCompiler,
    compile_program,
    preset,
)
from repro.ir.classical_sim import simulate_classical
from repro.ir.flatten import flatten_program
from repro.ir.program import Program, QModule

from tests.conftest import build_two_level_program

ALL_POLICIES = tuple(POLICY_PRESETS)


def reference_outputs(program, num_params):
    """Expected values of the entry module's *output* parameters.

    Only the output parameters are compared across policies: deferring
    policies legitimately leave garbage on input parameters and ancillas
    (that is exactly the "qubit reservation" the paper describes), but the
    values written by Store blocks must be identical for every policy.
    """
    flat = flatten_program(program)
    num_outputs = len(program.entry.outputs)
    output_wires = flat.param_wires[num_params - num_outputs:]
    table = {}
    for bits in itertools.product([0, 1], repeat=num_params):
        out = simulate_classical(flat.circuit, dict(zip(flat.param_wires, bits)))
        table[bits] = tuple(out[w] for w in output_wires)
    return table


class TestPresets:
    def test_known_presets(self):
        assert set(POLICY_PRESETS) == {"eager", "lazy", "square", "square-laa"}

    def test_preset_overrides(self):
        config = preset("square", record_schedule=True)
        assert config.record_schedule
        assert config.reclamation == "cer"

    def test_unknown_preset_rejected(self):
        with pytest.raises(CompilationError):
            preset("greedy")

    def test_unknown_policy_names_rejected(self):
        machine = NISQMachine.grid(3, 3)
        with pytest.raises(CompilationError):
            SquareCompiler(machine, CompilerConfig(allocation="nope"))
        with pytest.raises(CompilationError):
            SquareCompiler(machine, CompilerConfig(reclamation="nope"))


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_two_level_program_outputs_preserved(self, policy, two_level_program):
        reference = reference_outputs(two_level_program, 5)
        machine = NISQMachine.grid(4, 4)
        result = compile_program(two_level_program, machine, policy=policy,
                                 record_schedule=True)
        circuit = result.to_circuit()
        output_wires = range(3, 5)  # entry outputs are the last two params
        for bits, expected in reference.items():
            out = simulate_classical(circuit, dict(zip(range(5), bits)))
            assert tuple(out[w] for w in output_wires) == expected

    @pytest.mark.parametrize("policy", ("eager", "lazy", "square"))
    def test_three_level_program_outputs_preserved(self, policy):
        # leaf -> middle -> top, each level with its own ancilla, to exercise
        # recursive recomputation and deferred-garbage cleanup.
        leaf = QModule("leaf", num_inputs=2, num_outputs=1, num_ancilla=1)
        leaf.ccx(leaf.inputs[0], leaf.inputs[1], leaf.ancillas[0])
        leaf.begin_store()
        leaf.cx(leaf.ancillas[0], leaf.outputs[0])

        middle = QModule("middle", num_inputs=2, num_outputs=1, num_ancilla=1)
        middle.call(leaf, middle.inputs[0], middle.inputs[1], middle.ancillas[0])
        middle.begin_store()
        middle.cx(middle.ancillas[0], middle.outputs[0])

        top = QModule("top", num_inputs=2, num_outputs=1, num_ancilla=1)
        top.call(middle, top.inputs[0], top.inputs[1], top.ancillas[0])
        top.begin_store()
        top.cx(top.ancillas[0], top.outputs[0])
        program = Program(top, name="three-level")

        reference = reference_outputs(program, 3)
        machine = NISQMachine.grid(4, 4)
        result = compile_program(program, machine, policy=policy,
                                 record_schedule=True)
        circuit = result.to_circuit()
        for bits, expected in reference.items():
            out = simulate_classical(circuit, dict(zip(range(3), bits)))
            assert (out[2],) == expected


class TestPolicyBehaviour:
    def test_eager_emits_more_gates_than_lazy(self, two_level_program):
        machine_a = NISQMachine.grid(4, 4)
        machine_b = NISQMachine.grid(4, 4)
        eager = compile_program(two_level_program, machine_a, policy="eager")
        lazy = compile_program(two_level_program, machine_b, policy="lazy")
        assert eager.gate_count > lazy.gate_count
        assert eager.uncompute_gate_count > 0
        assert lazy.uncompute_gate_count == 0

    def test_lazy_defers_and_eager_reclaims(self, two_level_program):
        eager = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                policy="eager")
        lazy = compile_program(two_level_program, NISQMachine.grid(4, 4),
                               policy="lazy")
        assert eager.num_reclaimed >= 1
        assert lazy.num_reclaimed == 0
        assert lazy.num_deferred >= 1

    def test_eager_reuses_qubits_on_repeated_calls(self):
        # Two sequential calls to the same ancilla-hungry child: Eager should
        # reuse the reclaimed ancillas, Lazy must allocate fresh ones.
        child = QModule("child", num_inputs=2, num_outputs=1, num_ancilla=3)
        a = child.ancillas
        child.ccx(child.inputs[0], child.inputs[1], a[0])
        child.cx(a[0], a[1])
        child.cx(a[1], a[2])
        child.begin_store()
        child.cx(a[2], child.outputs[0])

        top = QModule("top", num_inputs=2, num_outputs=2, num_ancilla=0)
        top.call(child, top.inputs[0], top.inputs[1], top.outputs[0])
        top.call(child, top.inputs[0], top.inputs[1], top.outputs[1])
        program = Program(top)

        eager = compile_program(program, NISQMachine.grid(4, 4), policy="eager")
        lazy = compile_program(program, NISQMachine.grid(4, 4), policy="lazy")
        assert eager.num_qubits_used < lazy.num_qubits_used

    def test_aqv_positive_and_consistent_with_segments(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="square")
        assert result.active_quantum_volume > 0
        assert result.active_quantum_volume == sum(
            segment.duration for segment in result.usage_segments
        )

    def test_usage_series_matches_peak(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="lazy")
        series = result.usage_series()
        assert max(count for _, count in series) <= result.peak_live_qubits

    def test_square_records_cost_annotated_decisions(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="square")
        cer_events = [e for e in result.reclamation_events if e.costs is not None]
        assert cer_events, "CER should have evaluated Equations 1 and 2"

    def test_ideal_machine_has_no_swaps(self, two_level_program):
        result = compile_program(two_level_program, IdealMachine(16),
                                 policy="square")
        assert result.swap_count == 0

    def test_ft_machine_compiles(self, two_level_program):
        result = compile_program(two_level_program, FTMachine.grid(4, 4),
                                 policy="square")
        assert result.swap_count == 0
        assert result.gate_count > 0

    def test_resource_exhaustion(self, two_level_program):
        tiny = NISQMachine.grid(2, 2)  # 4 qubits < 7 needed
        with pytest.raises(ResourceExhaustedError):
            compile_program(two_level_program, tiny, policy="lazy")

    def test_max_qubits_budget(self, two_level_program):
        machine = NISQMachine.grid(4, 4)
        with pytest.raises(ResourceExhaustedError):
            compile_program(two_level_program, machine, policy="lazy",
                            max_qubits=3)

    def test_decompose_toffoli_removes_ccx(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="eager", decompose_toffoli=True,
                                 record_schedule=True)
        assert all(event.name != "ccx" for event in result.scheduled_gates)

    def test_result_summary_keys(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="square")
        summary = result.summary()
        for key in ("program", "policy", "gates", "qubits", "depth", "swaps", "aqv"):
            assert key in summary

    def test_physical_circuit_includes_swaps(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="eager", record_schedule=True)
        if result.swap_count:
            physical = result.to_circuit(physical=True)
            assert physical.count("swap") >= 1

    def test_to_circuit_requires_recorded_schedule(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="eager")
        with pytest.raises(ValueError):
            result.to_circuit()

    def test_entry_param_sites_available(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="square", record_schedule=True)
        sites = result.entry_param_sites()
        assert len(sites) == 5
        assert len(set(sites)) == 5
