"""Tests for the repro.api compilation service and the public registries."""

import json

import pytest

from repro.exceptions import (
    CompilationError,
    ExperimentError,
    ResourceExhaustedError,
)
from repro.api import (
    CompileJob,
    MachineSpec,
    ParallelExecutor,
    SerialExecutor,
    Session,
    SweepSpec,
    autosize_compile,
    execute_job,
)
from repro.arch.nisq import NISQMachine
from repro.core.compiler import CompilerConfig, compile_program, preset
from repro.core.policies import (
    allocation_policy_names,
    create_allocation_policy,
    reclamation_policy_names,
    register_allocation_policy,
    register_reclamation_policy,
)
from repro.core.allocation import LifoAllocation
from repro.core.reclamation import EagerReclamation
from repro.core.result import CompilationResult
from repro.workloads.registry import (
    benchmark_names,
    canonical_benchmark_name,
    load_benchmark,
    register_benchmark,
)

from tests.conftest import build_two_level_program

GRID = MachineSpec.nisq_grid(5, 5)


class TestMachineSpec:
    def test_build_matches_kind(self):
        assert MachineSpec.nisq_grid(4, 4).build().name == "nisq-grid-4x4"
        assert MachineSpec.nisq_full(9).build().topology.is_fully_connected
        assert MachineSpec.ft(16).build().communication == "braid"
        assert MachineSpec.ideal(8).build().communication == "none"

    def test_autosize_build_takes_size(self):
        spec = MachineSpec.nisq_autosize(start_qubits=16)
        assert spec.build(64).num_qubits >= 64

    def test_invalid_kind_rejected(self):
        with pytest.raises(ExperimentError):
            MachineSpec(kind="quantum-cloud", num_qubits=4)

    def test_underspecified_rejected(self):
        with pytest.raises(ExperimentError):
            MachineSpec(kind="nisq")

    def test_autosize_conflicts_with_fixed_size(self):
        with pytest.raises(ExperimentError):
            MachineSpec(kind="nisq", rows=5, cols=5, autosize=True)
        with pytest.raises(ExperimentError):
            MachineSpec(kind="nisq", num_qubits=25, autosize=True)

    def test_autosize_build_needs_explicit_size(self):
        with pytest.raises(ExperimentError):
            MachineSpec.nisq_autosize().build()


class TestCompileJob:
    def test_needs_exactly_one_source(self):
        with pytest.raises(ExperimentError):
            CompileJob(machine=GRID)
        with pytest.raises(ExperimentError):
            CompileJob(benchmark="RD53",
                       program=build_two_level_program(), machine=GRID)

    def test_fingerprint_stable_across_instances(self):
        job_a = CompileJob.for_benchmark("RD53", GRID, "square")
        job_b = CompileJob.for_benchmark("RD53", GRID, "square")
        assert job_a.fingerprint() == job_b.fingerprint()

    def test_fingerprint_case_insensitive_benchmark(self):
        job_a = CompileJob.for_benchmark("rd53", GRID, "square")
        job_b = CompileJob.for_benchmark("RD53", GRID, "square")
        assert job_a.fingerprint() == job_b.fingerprint()

    def test_fingerprint_ignores_override_order(self):
        job_a = CompileJob(benchmark="MODEXP", machine=GRID,
                           overrides={"width": 3, "exponent_bits": 2})
        job_b = CompileJob(benchmark="MODEXP", machine=GRID,
                           overrides={"exponent_bits": 2, "width": 3})
        assert job_a.fingerprint() == job_b.fingerprint()

    def test_fingerprint_distinguishes_coordinates(self):
        base = CompileJob.for_benchmark("RD53", GRID, "square")
        fingerprints = {
            base.fingerprint(),
            CompileJob.for_benchmark("RD53", GRID, "lazy").fingerprint(),
            CompileJob.for_benchmark("6SYM", GRID, "square").fingerprint(),
            CompileJob.for_benchmark(
                "RD53", MachineSpec.nisq_grid(4, 4), "square").fingerprint(),
            CompileJob.for_benchmark(
                "RD53", GRID, "square",
                decompose_toffoli=True).fingerprint(),
        }
        assert len(fingerprints) == 5

    def test_execute_matches_compile_program(self):
        job = CompileJob.for_benchmark("RD53", GRID, "square",
                                       decompose_toffoli=True)
        via_api = execute_job(job)
        direct = compile_program(load_benchmark("RD53"),
                                 NISQMachine.grid(5, 5), policy="square",
                                 decompose_toffoli=True)
        assert via_api.summary() == direct.summary()

    def test_program_job(self):
        program = build_two_level_program()
        job = CompileJob(program=program, machine=MachineSpec.nisq_grid(4, 4))
        result = execute_job(job)
        assert result.program_name == program.name
        assert result.gate_count > 0

    def test_program_fingerprint_reflects_content(self):
        from repro.ir.program import Program, QModule

        def build(second_gate):
            module = QModule("same-name", num_inputs=2, num_outputs=1,
                             num_ancilla=0)
            module.cx(module.inputs[0], module.outputs[0])
            getattr(module, second_gate)(module.outputs[0])
            return Program(module, name="same-name")

        grid = MachineSpec.nisq_grid(4, 4)
        job_x = CompileJob(program=build("x"), machine=grid)
        job_h = CompileJob(program=build("h"), machine=grid)
        job_x2 = CompileJob(program=build("x"), machine=grid)
        assert job_x.fingerprint() != job_h.fingerprint()
        assert job_x.fingerprint() == job_x2.fingerprint()

    def test_session_compile_rejects_overrides_for_programs(self):
        with pytest.raises(ExperimentError):
            Session().compile(build_two_level_program(),
                              machine=MachineSpec.nisq_grid(4, 4),
                              overrides={"width": 99})


class TestSweepSpec:
    def test_expansion_cardinality(self):
        spec = SweepSpec(
            benchmarks=("RD53", "6SYM", "ADDER4"),
            machines=(GRID, MachineSpec.nisq_grid(4, 4)),
            policies=("lazy", "square"),
            scales=("quick", "laptop"),
        )
        assert len(spec) == 3 * 2 * 2 * 2
        assert len(spec.jobs()) == len(spec)

    def test_builder_chaining(self):
        spec = (SweepSpec()
                .with_benchmarks("RD53")
                .with_machines(GRID)
                .with_policies("lazy")
                .with_scales("quick")
                .with_config(decompose_toffoli=True))
        jobs = spec.jobs()
        assert len(jobs) == 1
        assert jobs[0].config.decompose_toffoli

    def test_scale_overrides_reach_jobs(self):
        spec = SweepSpec(benchmarks=("MUL32",), machines=(GRID,),
                         policies=("lazy",), scales=("quick",))
        job = spec.jobs()[0]
        assert dict(job.overrides)["width"] <= 8

    def test_empty_and_bad_scale_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec(benchmarks=()).jobs()
        with pytest.raises(ExperimentError):
            SweepSpec(benchmarks=("RD53",), scales=("huge",)).jobs()

    def test_explicit_config_policy(self):
        config = CompilerConfig(allocation="lifo", reclamation="lazy",
                                label="custom")
        spec = SweepSpec(benchmarks=("RD53",), machines=(GRID,),
                         policies=(config,))
        assert spec.jobs()[0].config is config


class TestSessionMemoization:
    def test_repeat_submission_hits_cache(self):
        calls = []

        class CountingExecutor:
            def run(self, jobs):
                calls.extend(jobs)
                return [execute_job(job) for job in jobs]

        session = Session(executor=CountingExecutor())
        job = CompileJob.for_benchmark("RD53", GRID, "square")
        first = session.submit(job)
        second = session.submit(job)
        assert len(calls) == 1
        assert first is second
        assert session.cache_hits == 1 and session.cache_misses == 1

    def test_duplicates_inside_batch_execute_once(self):
        calls = []

        class CountingExecutor:
            def run(self, jobs):
                calls.extend(jobs)
                return [execute_job(job) for job in jobs]

        session = Session(executor=CountingExecutor())
        job = CompileJob.for_benchmark("RD53", GRID, "square")
        sweep = session.run([job, job, job])
        assert len(calls) == 1
        assert len(sweep) == 3
        assert sweep.cache_hits == 2
        assert [entry.cached for entry in sweep] == [False, True, True]

    def test_clear_cache(self):
        session = Session()
        session.submit(CompileJob.for_benchmark("RD53", GRID, "square"))
        assert session.cache_size == 1
        session.clear_cache()
        assert session.cache_size == 0


class TestExecutorDeterminism:
    def test_parallel_matches_serial(self):
        spec = (SweepSpec()
                .with_benchmarks("RD53", "ADDER4")
                .with_machines(GRID)
                .with_policies("lazy", "eager", "square")
                .with_config(decompose_toffoli=True))
        serial = Session(executor=SerialExecutor()).run(spec)
        parallel = Session(executor=ParallelExecutor(jobs=4)).run(spec)
        for entry_s, entry_p in zip(serial, parallel):
            metrics_s = {**entry_s.result.summary(),
                         "comm": entry_s.result.total_comm_cost}
            metrics_p = {**entry_p.result.summary(),
                         "comm": entry_p.result.total_comm_cost}
            assert metrics_s == metrics_p
        assert serial.table("t") == parallel.table("t")

    def test_parallel_empty_batch(self):
        assert ParallelExecutor(jobs=2).run([]) == []

    def test_parallel_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)


class TestSweepResult:
    @pytest.fixture(scope="class")
    def sweep(self):
        spec = (SweepSpec()
                .with_benchmarks("RD53", "6SYM")
                .with_machines(GRID)
                .with_policies("lazy", "square"))
        return Session().run(spec)

    def test_filter_and_get(self, sweep):
        assert len(sweep.filter(benchmark="RD53")) == 2
        assert len(sweep.filter(policy="square")) == 2
        result = sweep.get(benchmark="rd53", policy="square")
        assert result.policy_name == "square"
        with pytest.raises(ExperimentError):
            sweep.get(benchmark="RD53")  # two matches

    def test_suite_shape(self, sweep):
        suite = sweep.suite(benchmark="6SYM")
        assert list(suite) == ["lazy", "square"]

    def test_suite_rejects_ambiguous_scope(self, sweep):
        # Two benchmarks in scope -> duplicate policy labels.
        with pytest.raises(ExperimentError):
            sweep.suite()

    def test_rows_and_table(self, sweep):
        rows = sweep.rows()
        assert len(rows) == 4
        assert {"benchmark", "policy", "gates", "aqv"} <= set(rows[0])
        assert "RD53" in sweep.table()

    def test_json_and_csv_export(self, sweep, tmp_path):
        payload = json.loads(sweep.to_json())
        assert len(payload) == 4
        full = json.loads(sweep.to_json(full=True))
        assert "fingerprint" in full[0] and "result" in full[0]
        csv_path = tmp_path / "sweep.csv"
        text = sweep.to_csv(str(csv_path))
        assert csv_path.read_text() == text
        assert text.splitlines()[0].startswith("benchmark,policy")


class TestResultRoundTrip:
    def test_to_dict_from_dict_round_trip(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="square", record_schedule=True)
        rebuilt = CompilationResult.from_dict(result.to_dict())
        assert rebuilt == result

    def test_round_trip_through_json(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="square", record_schedule=True)
        rebuilt = CompilationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert rebuilt.to_circuit().count("cx") == result.to_circuit().count("cx")

    def test_light_results_are_small(self, two_level_program):
        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="square")
        data = result.to_dict()
        assert data["scheduled_gates"] == []
        assert CompilationResult.from_dict(data).summary() == result.summary()


@pytest.fixture
def restored_registries():
    """Snapshot and restore the global registries around mutation tests."""
    from repro.core import policies as policy_registry
    from repro.workloads import registry as benchmark_registry

    snapshots = [
        (policy_registry._ALLOCATION, dict(policy_registry._ALLOCATION)),
        (policy_registry._RECLAMATION, dict(policy_registry._RECLAMATION)),
        (benchmark_registry._FACTORIES, dict(benchmark_registry._FACTORIES)),
        (benchmark_registry._CANONICAL, dict(benchmark_registry._CANONICAL)),
    ]
    yield
    for registry, snapshot in snapshots:
        registry.clear()
        registry.update(snapshot)


class TestPolicyRegistries:
    def test_builtins_registered(self):
        assert allocation_policy_names() == ["laa", "lifo"]
        assert reclamation_policy_names() == ["cer", "eager", "lazy"]

    def test_unknown_policy_error_lists_names(self):
        with pytest.raises(CompilationError) as exc_info:
            create_allocation_policy("greedy")
        assert "lifo" in str(exc_info.value)

    def test_register_and_compile_with_custom_policies(self, two_level_program,
                                                       restored_registries):
        register_allocation_policy("test-lifo", LifoAllocation, replace=True)

        @register_reclamation_policy("test-eager", replace=True)
        class TestEager(EagerReclamation):
            pass

        result = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                 policy="eager", allocation="test-lifo",
                                 reclamation="test-eager")
        reference = compile_program(two_level_program, NISQMachine.grid(4, 4),
                                    policy="eager", allocation="lifo",
                                    reclamation="eager")
        assert result.summary()["gates"] == reference.summary()["gates"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(CompilationError):
            register_allocation_policy("lifo", LifoAllocation)


class TestPresetOverrides:
    def test_replace_preserves_other_fields(self):
        config = preset("square", record_schedule=True)
        assert config.record_schedule
        assert config.allocation == "laa" and config.label == "square"

    def test_unknown_override_rejected_with_field_names(self):
        with pytest.raises(CompilationError) as exc_info:
            preset("square", decompose_tofoli=True)  # typo'd field
        message = str(exc_info.value)
        assert "decompose_tofoli" in message
        assert "decompose_toffoli" in message  # valid fields listed

    def test_result_is_frozen_dataclass(self):
        config = preset("square", max_qubits=10)
        with pytest.raises(Exception):
            config.max_qubits = 20


class TestBenchmarkRegistry:
    def test_canonical_names_in_listing_and_errors(self):
        names = benchmark_names()
        assert "RD53" in names and "6SYM" in names
        with pytest.raises(ExperimentError) as exc_info:
            load_benchmark("nonexistent")
        message = str(exc_info.value)
        # The error lists the same canonical capitalisations the listing
        # uses — no leaked lowercase internal keys.
        assert "RD53" in message and "'rd53'" not in message
        assert "MODEXP" in message and "'modexp'" not in message

    def test_canonical_benchmark_name(self):
        assert canonical_benchmark_name("rd53") == "RD53"
        assert canonical_benchmark_name("Belle") == "Belle"
        with pytest.raises(ExperimentError):
            canonical_benchmark_name("anna")

    def test_register_benchmark_decorator(self, restored_registries):
        @register_benchmark("TEST-TWOLEVEL", replace=True)
        def build(width=4):
            return build_two_level_program()

        assert "TEST-TWOLEVEL" in benchmark_names()
        program = load_benchmark("test-twolevel")
        assert program.name == build_two_level_program().name
        job = CompileJob.for_benchmark("test-twolevel",
                                       MachineSpec.nisq_grid(4, 4), "square")
        assert job.benchmark == "TEST-TWOLEVEL"
        assert execute_job(job).gate_count > 0

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError):
            register_benchmark("RD53", lambda: None)


def _wide_program(num_params: int, num_ancilla: int):
    """A program whose peak-live footprint is params + ancillas."""
    from repro.ir.program import Program, QModule

    module = QModule("wide", num_inputs=num_params, num_outputs=0,
                     num_ancilla=num_ancilla)
    for ancilla in module.ancillas:
        module.cx(module.inputs[0], ancilla)
    return Program(module, name=f"wide-{num_params}-{num_ancilla}")


class TestAutosizeBoundaries:
    """The machine-size search must never build beyond max_qubits."""

    @staticmethod
    def _machine_for(attempts):
        def build(num_qubits):
            attempts.append(num_qubits)
            return NISQMachine.with_qubits(num_qubits)
        return build

    def test_cap_between_doublings_is_clamped(self):
        # Needs 80 live qubits: 64 fails, and the doubling to 128 must be
        # clamped to the 100-qubit cap instead of overshooting it.
        program = _wide_program(50, 30)
        attempts = []
        result = autosize_compile(program, self._machine_for(attempts),
                                  preset("lazy"), start_qubits=64,
                                  max_qubits=100)
        assert attempts == [64, 100]
        assert result.peak_live_qubits == 80

    def test_cap_hit_exactly_then_reraise(self):
        # Needs 120 live qubits: 25 -> 50 -> 100 all fail; the error only
        # propagates after the attempt at exactly the cap.
        program = _wide_program(20, 100)
        attempts = []
        with pytest.raises(ResourceExhaustedError):
            autosize_compile(program, self._machine_for(attempts),
                             preset("lazy"), start_qubits=25, max_qubits=100)
        assert attempts == [25, 50, 100]

    def test_start_above_cap_is_clamped(self):
        program = _wide_program(10, 10)
        attempts = []
        result = autosize_compile(program, self._machine_for(attempts),
                                  preset("lazy"), start_qubits=512,
                                  max_qubits=64)
        assert attempts == [64]
        assert result.num_qubits_used <= 64


class TestExecutorContract:
    def test_short_executor_batch_rejected(self):
        class ShortExecutor:
            def run(self, jobs):
                return [execute_job(jobs[0])]  # silently drops the rest

        session = Session(executor=ShortExecutor())
        jobs = [CompileJob.for_benchmark("RD53", GRID, "lazy"),
                CompileJob.for_benchmark("RD53", GRID, "square")]
        with pytest.raises(ExperimentError) as exc_info:
            session.run(jobs)
        assert "ShortExecutor" in str(exc_info.value)

    def test_long_executor_batch_rejected(self):
        class LongExecutor:
            def run(self, jobs):
                return [execute_job(job) for job in jobs] * 2

        session = Session(executor=LongExecutor())
        with pytest.raises(ExperimentError) as exc_info:
            session.run([CompileJob.for_benchmark("RD53", GRID, "square")])
        assert "LongExecutor" in str(exc_info.value)

    def test_isolation_needs_run_isolated(self):
        class BareExecutor:
            def run(self, jobs):
                return [execute_job(job) for job in jobs]

        session = Session(executor=BareExecutor(), isolate_failures=True)
        with pytest.raises(ExperimentError) as exc_info:
            session.run([CompileJob.for_benchmark("RD53", GRID, "square")])
        assert "run_isolated" in str(exc_info.value)

    def test_parallel_error_names_the_failing_job(self):
        impossible = CompileJob.for_benchmark(
            "RD53", MachineSpec.nisq(2), "square")
        fine = CompileJob.for_benchmark("RD53", GRID, "square")
        with pytest.raises(ResourceExhaustedError) as exc_info:
            ParallelExecutor(jobs=2).run([fine, impossible])
        message = str(exc_info.value)
        assert "RD53" in message and "square" in message
        assert "nisq-2" in message


class TestCacheAccounting:
    def test_hits_accumulate_across_run_calls(self):
        spec = (SweepSpec()
                .with_benchmarks("RD53", "6SYM")
                .with_machines(GRID)
                .with_policies("lazy", "square"))
        session = Session()
        first = session.run(spec)
        assert first.cache_hits == 0
        assert session.cache_misses == 4 and session.cache_hits == 0
        second = session.run(spec)
        assert second.cache_hits == 4
        assert session.cache_misses == 4 and session.cache_hits == 4
        assert session.cache_size == 4
        # Rows are identical whether computed or recalled.
        assert first.rows() == second.rows()

    def test_stats_snapshot(self):
        session = Session()
        session.submit(CompileJob.for_benchmark("RD53", GRID, "square"))
        stats = session.stats()
        assert stats["cache_size"] == 1
        assert stats["cache_misses"] == 1
        assert stats["disk_hits"] == 0
        assert "disk_cache" not in stats
