"""Unit tests for the modular program IR (QModule / Program / builder)."""

import pytest

from repro.exceptions import IRError, QubitBindingError, ValidationError
from repro.ir.builder import ModuleBuilder
from repro.ir.program import CallStmt, GateStmt, Program, QModule, QubitRegister

from tests.conftest import build_fun1, build_two_level_program


class TestQubitRegister:
    def test_register_indexing(self):
        register = QubitRegister("r", 3)
        assert len(register) == 3
        assert register[1].index == 1

    def test_register_requires_positive_size(self):
        with pytest.raises(IRError):
            QubitRegister("r", 0)


class TestQModule:
    def test_params_are_inputs_then_outputs(self):
        module = QModule("m", num_inputs=2, num_outputs=1, num_ancilla=1)
        assert module.num_params == 3
        assert module.params[:2] == module.inputs
        assert module.params[2] == module.outputs[0]

    def test_requires_at_least_one_parameter(self):
        with pytest.raises(IRError):
            QModule("m", num_inputs=0, num_outputs=0)

    def test_gate_scope_checking(self):
        module = QModule("m", num_inputs=2)
        other = QModule("other", num_inputs=1)
        with pytest.raises(QubitBindingError):
            module.x(other.inputs[0])

    def test_gate_arity_checked(self):
        module = QModule("m", num_inputs=3)
        with pytest.raises(IRError):
            module.gate("cx", module.inputs[0])

    def test_call_arity_checked(self):
        child = QModule("child", num_inputs=2)
        parent = QModule("parent", num_inputs=3)
        with pytest.raises(IRError):
            parent.call(child, parent.inputs[0])

    def test_call_rejects_duplicate_args(self):
        child = QModule("child", num_inputs=2)
        parent = QModule("parent", num_inputs=3)
        with pytest.raises(IRError):
            parent.call(child, parent.inputs[0], parent.inputs[0])

    def test_blocks_routing(self):
        module = QModule("m", num_inputs=2, num_ancilla=1)
        module.cx(module.inputs[0], module.ancillas[0])
        module.begin_store()
        module.cx(module.ancillas[0], module.inputs[1])
        assert len(module.compute) == 1
        assert len(module.store) == 1

    def test_child_modules_deduplicated(self):
        child = QModule("child", num_inputs=1)
        child.x(child.inputs[0])
        parent = QModule("parent", num_inputs=2)
        parent.call(child, parent.inputs[0])
        parent.call(child, parent.inputs[1])
        assert parent.child_modules() == (child,)

    def test_static_gate_count_recurses(self):
        program = build_two_level_program()
        # fun1 has 4 gates; main adds 1 compute gate + 2 store gates.
        assert program.static_gate_count() == 7

    def test_validate_rejects_ancilla_without_compute(self):
        module = QModule("m", num_inputs=1, num_ancilla=1)
        with pytest.raises(ValidationError):
            module.validate()


class TestProgram:
    def test_call_graph_and_levels(self):
        program = build_two_level_program()
        graph = program.call_graph()
        assert set(graph.nodes) == {"main", "fun1"}
        assert graph.has_edge("main", "fun1")
        assert program.num_levels() == 2

    def test_modules_entry_first(self):
        program = build_two_level_program()
        assert program.modules()[0] is program.entry

    def test_total_declared_ancilla(self):
        program = build_two_level_program()
        assert program.total_declared_ancilla() == 2

    def test_validate_passes(self):
        build_two_level_program().validate()


class TestModuleBuilder:
    def test_builder_produces_fun1(self):
        module = build_fun1()
        assert module.name == "fun1"
        assert len(module.compute) == 3
        assert len(module.store) == 1

    def test_builder_contexts_restore_block(self):
        builder = ModuleBuilder("m", num_inputs=2, num_ancilla=1)
        with builder.store():
            builder.cx(builder.inputs[0], builder.inputs[1])
        builder.cx(builder.inputs[0], builder.ancillas[0])
        module = builder.build()
        assert len(module.store) == 1
        assert len(module.compute) == 1

    def test_build_twice_rejected(self):
        builder = ModuleBuilder("m", num_inputs=1)
        builder.x(builder.inputs[0])
        builder.build()
        with pytest.raises(IRError):
            builder.build()

    def test_auto_uncompute_gate_only(self):
        builder = ModuleBuilder("m", num_inputs=2, num_ancilla=1)
        with builder.compute():
            builder.ccx(builder.inputs[0], builder.inputs[1], builder.ancillas[0])
        builder.auto_uncompute()
        module = builder.build()
        assert module.has_explicit_uncompute
        assert len(module.uncompute) == 1

    def test_auto_uncompute_rejects_calls(self):
        child = QModule("child", num_inputs=1)
        child.x(child.inputs[0])
        builder = ModuleBuilder("m", num_inputs=1, num_ancilla=1)
        with builder.compute():
            builder.call(child, builder.ancillas[0])
        with pytest.raises(IRError):
            builder.auto_uncompute()

    def test_build_program_wraps_entry(self):
        builder = ModuleBuilder("m", num_inputs=1)
        builder.x(builder.inputs[0])
        program = builder.build_program(name="demo")
        assert isinstance(program, Program)
        assert program.name == "demo"


class TestStatements:
    def test_gate_stmt_repr(self):
        module = QModule("m", num_inputs=2)
        module.cx(module.inputs[0], module.inputs[1])
        assert "cx" in repr(module.compute[0])

    def test_call_stmt_repr(self):
        child = QModule("child", num_inputs=1)
        child.x(child.inputs[0])
        parent = QModule("parent", num_inputs=1)
        parent.call(child, parent.inputs[0])
        assert "child" in repr(parent.compute[0])

    def test_statement_types(self):
        program = build_two_level_program()
        kinds = [type(stmt) for _, stmt in program.entry.statements()]
        assert CallStmt in kinds
        assert GateStmt in kinds
