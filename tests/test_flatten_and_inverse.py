"""Tests for statement inversion and the Eager-semantics flattener."""

import itertools

import pytest

from repro.exceptions import IrreversibleBlockError, NonClassicalGateError
from repro.ir.classical_sim import simulate_classical
from repro.ir.flatten import flatten_module, flatten_program
from repro.ir.inverse import (
    check_uncomputable,
    inverse_module,
    invert_statements,
    uncompute_block,
)
from repro.ir.program import GateStmt, Program, QModule
from repro.ir.validate import (
    validate_program,
    verify_ancilla_restored,
    verify_explicit_uncompute,
)

from tests.conftest import build_fun1, build_two_level_program


class TestInvertStatements:
    def test_gate_order_reversed_and_inverted(self):
        module = QModule("m", num_inputs=2)
        module.gate("t", module.inputs[0])
        module.cx(module.inputs[0], module.inputs[1])
        inverted = invert_statements(module.compute)
        assert [s.name for s in inverted] == ["cx", "tdg"]

    def test_measure_rejected(self):
        module = QModule("m", num_inputs=1)
        module.gate("measure", module.inputs[0])
        with pytest.raises(IrreversibleBlockError):
            invert_statements(module.compute)

    def test_check_uncomputable_rejects_hadamard(self):
        module = QModule("m", num_inputs=1)
        module.h(module.inputs[0])
        with pytest.raises(NonClassicalGateError):
            check_uncomputable(module.compute)

    def test_uncompute_block_prefers_explicit(self):
        module = build_fun1()
        module.begin_uncompute()
        module.ccx(module.inputs[1], module.inputs[0], module.ancillas[0])
        block = uncompute_block(module)
        assert len(block) == 1

    def test_inverse_module_roundtrip(self):
        fun1 = build_fun1()
        inverse = inverse_module(fun1)
        # Compose fun1 then its inverse in one program: must be the identity
        # on the parameters.
        top = QModule("roundtrip", num_inputs=4)
        q = top.inputs
        top.call(fun1, *q)
        top.call(inverse, *q)
        flat = flatten_program(Program(top))
        for bits in itertools.product([0, 1], repeat=4):
            out = simulate_classical(flat.circuit,
                                     dict(zip(flat.param_wires, bits)))
            assert [out[w] for w in flat.param_wires] == list(bits)


class TestFlattener:
    def test_flatten_fun1_ancilla_clean(self):
        fun1 = build_fun1()
        flat = flatten_module(fun1)
        param_set = set(flat.param_wires)
        for bits in itertools.product([0, 1], repeat=4):
            out = simulate_classical(flat.circuit,
                                     dict(zip(flat.param_wires, bits)))
            ancilla = [w for w in range(flat.circuit.num_qubits)
                       if w not in param_set]
            assert all(out[w] == 0 for w in ancilla)

    def test_flatten_two_level_matches_direct_logic(self):
        program = build_two_level_program()
        flat = flatten_program(program)
        # fun1's Toffoli cascade stores in2 onto main's ancilla; main then
        # XORs in0 onto it, so both outputs receive in0 ^ in2.
        for bits in itertools.product([0, 1], repeat=3):
            assignment = dict(zip(flat.param_wires[:3], bits))
            out = simulate_classical(flat.circuit, assignment)
            i0, _i1, i2 = bits
            expected = i0 ^ i2
            assert out[flat.param_wires[3]] == expected
            assert out[flat.param_wires[4]] == expected

    def test_reuse_reduces_total_wires(self):
        program = build_two_level_program()
        with_reuse = flatten_program(program, reuse_ancilla=True)
        without = flatten_program(program, reuse_ancilla=False)
        assert with_reuse.circuit.num_qubits <= without.circuit.num_qubits
        assert with_reuse.max_ancilla_in_use <= without.total_ancilla_wires

    def test_ancilla_free_module_not_uncomputed(self):
        module = QModule("copy", num_inputs=1, num_outputs=1)
        module.cx(module.inputs[0], module.outputs[0])
        flat = flatten_module(module)
        out = simulate_classical(flat.circuit, {flat.param_wires[0]: 1})
        assert out[flat.param_wires[1]] == 1


class TestValidation:
    def test_verify_ancilla_restored_passes_for_fun1(self):
        verify_ancilla_restored(build_fun1())

    def test_verify_explicit_uncompute_catches_bad_block(self):
        module = QModule("bad", num_inputs=2, num_ancilla=1)
        module.ccx(module.inputs[0], module.inputs[1], module.ancillas[0])
        module.begin_uncompute()
        module.x(module.ancillas[0])  # not the inverse of compute
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            verify_explicit_uncompute(module)

    def test_validate_program_full(self):
        validate_program(build_two_level_program(), check_ancilla=True)
