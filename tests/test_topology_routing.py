"""Tests for topologies, swap routing, layout and braid routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ArchitectureError, ResourceExhaustedError
from repro.arch.braid import BraidTracker, manhattan_route
from repro.arch.mapping import Layout
from repro.arch.routing import SwapRouter
from repro.arch.topology import Topology


class TestTopology:
    def test_grid_shape_and_neighbors(self):
        grid = Topology.grid(3, 4)
        assert grid.num_sites == 12
        assert grid.neighbors(0) == (1, 4)
        assert grid.neighbors(5) == (1, 4, 6, 9)

    def test_line_distance(self):
        line = Topology.line(6)
        assert line.distance(0, 5) == 5
        assert line.distance(3, 3) == 0

    def test_grid_distance_is_manhattan(self):
        grid = Topology.grid(4, 4)
        assert grid.distance(0, 15) == 6
        assert grid.manhattan_distance(0, 15) == 6

    def test_fully_connected(self):
        full = Topology.fully_connected(7)
        assert full.is_fully_connected
        assert full.distance(0, 6) == 1

    def test_square_grid_for(self):
        topology = Topology.square_grid_for(10)
        assert topology.num_sites >= 10

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ArchitectureError):
            Topology.grid(0, 3)
        with pytest.raises(ArchitectureError):
            Topology.line(0)

    def test_site_out_of_range(self):
        with pytest.raises(ArchitectureError):
            Topology.line(3).distance(0, 9)

    def test_centroid_site_on_grid(self):
        grid = Topology.grid(3, 3)
        assert grid.centroid_site([0, 2, 6, 8]) == 4

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=2, max_value=5),
           st.integers(min_value=0, max_value=24), st.integers(min_value=0, max_value=24))
    def test_distance_symmetry_property(self, rows, cols, a, b):
        grid = Topology.grid(rows, cols)
        a %= grid.num_sites
        b %= grid.num_sites
        assert grid.distance(a, b) == grid.distance(b, a)


class TestSwapRouter:
    def test_adjacent_needs_no_swaps(self):
        router = SwapRouter(Topology.grid(3, 3))
        assert router.route(0, 1).num_swaps == 0

    def test_route_length_matches_distance(self):
        topology = Topology.grid(4, 4)
        router = SwapRouter(topology)
        route = router.route(0, 15)
        assert route.num_swaps == topology.distance(0, 15) - 1

    def test_swap_distance(self):
        router = SwapRouter(Topology.line(5))
        assert router.swap_distance(0, 4) == 3
        assert router.swap_distance(2, 2) == 0

    def test_route_path_is_connected(self):
        topology = Topology.grid(5, 5)
        router = SwapRouter(topology)
        route = router.route(0, 24)
        for a, b in zip(route.path, route.path[1:]):
            assert topology.are_adjacent(a, b)


class TestLayout:
    def test_place_and_lookup(self):
        layout = Layout(Topology.grid(2, 2))
        layout.place(7, 2)
        assert layout.site_of(7) == 2
        assert layout.virtual_at(2) == 7
        assert layout.virtual_at(0) is None

    def test_double_placement_rejected(self):
        layout = Layout(Topology.grid(2, 2))
        layout.place(0, 0)
        with pytest.raises(ArchitectureError):
            layout.place(0, 1)
        with pytest.raises(ArchitectureError):
            layout.place(1, 0)

    def test_swap_moves_occupants(self):
        layout = Layout(Topology.line(3))
        layout.place(0, 0)
        layout.place(1, 1)
        layout.swap(0, 1)
        assert layout.site_of(0) == 1
        assert layout.site_of(1) == 0

    def test_swap_with_empty_site(self):
        layout = Layout(Topology.line(3))
        layout.place(0, 0)
        layout.swap(0, 2)
        assert layout.site_of(0) == 2
        assert layout.virtual_at(0) is None

    def test_nearest_free_site_prefers_anchor_neighbourhood(self):
        layout = Layout(Topology.grid(4, 4))
        layout.place(0, 5)
        site = layout.nearest_free_site([5])
        assert Topology.grid(4, 4).distance(site, 5) == 1

    def test_exhaustion_raises(self):
        layout = Layout(Topology.line(1))
        layout.place(0, 0)
        with pytest.raises(ResourceExhaustedError):
            layout.nearest_free_site([0])

    def test_nearest_free_sites_ordering(self):
        topology = Topology.grid(5, 5)
        layout = Layout(topology)
        sites = layout.nearest_free_sites([12], limit=5)
        distances = [topology.distance(site, 12) for site in sites]
        assert distances == sorted(distances)

    def test_area_spread(self):
        layout = Layout(Topology.grid(3, 3))
        layout.place(0, 0)
        layout.place(1, 8)
        assert layout.area_spread([0, 1]) > 0
        assert layout.area_spread([0]) == 0.0


class TestBraidTracker:
    def test_manhattan_route_segments(self):
        segments = manhattan_route((0, 0), (0, 3))
        assert len(segments) == 3

    def test_non_conflicting_braids_run_in_parallel(self):
        topology = Topology.grid(4, 4)
        tracker = BraidTracker(topology)
        first = tracker.request(0, 1, earliest_start=0)
        second = tracker.request(14, 15, earliest_start=0)
        assert first.crossings == 0
        assert second.crossings == 0
        assert second.start == 0

    def test_crossing_braids_are_queued(self):
        topology = Topology.grid(3, 3)
        tracker = BraidTracker(topology, braid_duration=4)
        first = tracker.request(0, 2, earliest_start=0)   # along the top row
        second = tracker.request(1, 7, earliest_start=0)  # crosses the first
        assert second.crossings >= 1
        assert second.start >= first.finish

    def test_average_crossings_and_reset(self):
        topology = Topology.grid(3, 3)
        tracker = BraidTracker(topology)
        tracker.request(0, 2, earliest_start=0)
        tracker.request(1, 7, earliest_start=0)
        assert tracker.average_crossings() > 0
        tracker.reset()
        assert tracker.total_braids == 0
        assert tracker.average_crossings() == 0.0
