"""Tests for the gate scheduler and the liveness tracker."""

import pytest

from repro.exceptions import CompilationError
from repro.arch.ft import FTMachine
from repro.arch.machine import IdealMachine
from repro.arch.nisq import NISQMachine
from repro.arch.topology import Topology
from repro.scheduler.asap import GateScheduler
from repro.scheduler.tracker import LivenessTracker


class TestLivenessTracker:
    def test_segment_lifecycle(self):
        tracker = LivenessTracker()
        tracker.allocate(0, time=0)
        tracker.record_gate(0, 2, 5)
        tracker.record_gate(0, 7, 9)
        tracker.reclaim(0, time=9)
        assert tracker.active_quantum_volume() == 7  # from 2 to 9

    def test_heap_time_excluded(self):
        tracker = LivenessTracker()
        tracker.allocate(0, 0)
        tracker.record_gate(0, 0, 2)
        tracker.reclaim(0, 2)
        # Re-allocated much later: the idle gap must not count.
        tracker.allocate(0, 100)
        tracker.record_gate(0, 100, 103)
        tracker.reclaim(0, 103)
        assert tracker.active_quantum_volume() == 5

    def test_double_allocate_is_noop(self):
        tracker = LivenessTracker()
        tracker.allocate(0, 0)
        tracker.allocate(0, 5)
        tracker.record_gate(0, 0, 1)
        tracker.reclaim(0, 1)
        assert len(tracker.segments) == 1

    def test_finalize_closes_open_segments(self):
        tracker = LivenessTracker()
        tracker.allocate(0, 0)
        tracker.record_gate(0, 0, 4)
        tracker.finalize(10)
        assert tracker.active_quantum_volume() == 10

    def test_peak_live(self):
        tracker = LivenessTracker()
        tracker.allocate(0, 0)
        tracker.allocate(1, 0)
        tracker.reclaim(0, 1)
        tracker.allocate(2, 2)
        assert tracker.peak_live == 2

    def test_usage_series_area_equals_aqv(self):
        tracker = LivenessTracker()
        tracker.allocate(0, 0)
        tracker.record_gate(0, 0, 10)
        tracker.allocate(1, 2)
        tracker.record_gate(1, 2, 6)
        tracker.reclaim(1, 6)
        tracker.reclaim(0, 10)
        series = tracker.usage_series()
        area = sum(live * (t1 - t0) for (t0, live), (t1, _)
                   in zip(series, series[1:]))
        assert area == tracker.active_quantum_volume()


class TestGateScheduler:
    def _scheduler(self, machine=None):
        machine = machine or NISQMachine.grid(3, 3)
        scheduler = GateScheduler(machine, record_schedule=True)
        return scheduler

    def test_single_qubit_gate(self):
        scheduler = self._scheduler()
        scheduler.register_qubit(0, 0)
        execution = scheduler.schedule_gate("x", [0])
        assert execution.start == 0
        assert execution.finish == 1
        assert scheduler.gate_count == 1

    def test_adjacent_two_qubit_gate_needs_no_swap(self):
        scheduler = self._scheduler()
        scheduler.register_qubit(0, 0)
        scheduler.register_qubit(1, 1)
        execution = scheduler.schedule_gate("cx", [0, 1])
        assert execution.swaps == 0
        assert scheduler.swap_count == 0

    def test_distant_gate_inserts_swaps_and_updates_layout(self):
        scheduler = self._scheduler()
        scheduler.register_qubit(0, 0)
        scheduler.register_qubit(1, 8)  # opposite corner of the 3x3 grid
        execution = scheduler.schedule_gate("cx", [0, 1])
        assert execution.swaps >= 3
        assert scheduler.swap_count == execution.swaps
        # The moved qubit must now be adjacent to its partner.
        topology = scheduler.machine.topology
        assert topology.are_adjacent(scheduler.layout.site_of(0),
                                     scheduler.layout.site_of(1))

    def test_dependent_gates_serialize(self):
        scheduler = self._scheduler()
        scheduler.register_qubit(0, 0)
        scheduler.register_qubit(1, 1)
        first = scheduler.schedule_gate("cx", [0, 1])
        second = scheduler.schedule_gate("cx", [0, 1])
        assert second.start >= first.finish

    def test_independent_gates_run_in_parallel(self):
        scheduler = self._scheduler()
        for virtual, site in enumerate((0, 1, 7, 8)):
            scheduler.register_qubit(virtual, site)
        first = scheduler.schedule_gate("cx", [0, 1])
        second = scheduler.schedule_gate("cx", [2, 3])
        assert second.start == first.start

    def test_unplaced_qubit_rejected(self):
        scheduler = self._scheduler()
        with pytest.raises(CompilationError):
            scheduler.schedule_gate("x", [3])

    def test_ideal_machine_never_swaps(self):
        scheduler = self._scheduler(IdealMachine(9))
        scheduler.register_qubit(0, 0)
        scheduler.register_qubit(1, 8)
        execution = scheduler.schedule_gate("cx", [0, 1])
        assert execution.swaps == 0
        assert execution.comm_cost == 0

    def test_ft_machine_charges_crossings_not_swaps(self):
        machine = FTMachine.grid(4, 4)
        scheduler = GateScheduler(machine, record_schedule=True)
        for virtual, site in enumerate((0, 3, 12, 15)):
            scheduler.register_qubit(virtual, site)
        scheduler.schedule_gate("cx", [0, 1])
        execution = scheduler.schedule_gate("cx", [2, 3])
        assert scheduler.swap_count == 0
        assert execution.swaps == 0

    def test_events_recorded(self):
        scheduler = self._scheduler()
        scheduler.register_qubit(0, 0)
        scheduler.register_qubit(1, 8)
        scheduler.schedule_gate("cx", [0, 1])
        names = [event.name for event in scheduler.events]
        assert "cx" in names
        assert "swap" in names

    def test_average_comm_cost(self):
        scheduler = self._scheduler()
        scheduler.register_qubit(0, 0)
        scheduler.register_qubit(1, 8)
        scheduler.schedule_gate("cx", [0, 1])
        assert scheduler.average_comm_cost() > 0
