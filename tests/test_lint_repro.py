"""Tests for ``tools/lint_repro.py``: the concurrency/timing lint.

Seeds each violation class into a temp tree and asserts the matching
rule fires (and that the documented pragmas suppress it), then asserts
the real repo lints clean — the same gate CI runs.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "lint_repro", ROOT / "tools" / "lint_repro.py")
lint_repro = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint_repro)


def _lint_source(tmp_path: Path, source: str,
                 relative: str = "queue/sample.py"):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return lint_repro.lint_file(path, tmp_path)


def _rules(findings):
    return [finding.rule for finding in findings]


def test_wall_clock_flagged_in_monotonic_layers(tmp_path):
    findings = _lint_source(tmp_path, "import time\nnow = time.time()\n")
    assert _rules(findings) == ["LR001"]


def test_wall_clock_pragma_suppresses(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time\nstamp = time.time()  # lint: wall-clock\n")
    assert findings == []


def test_wall_clock_ignored_outside_layers(tmp_path):
    findings = _lint_source(tmp_path, "import time\nnow = time.time()\n",
                            relative="core/sample.py")
    assert findings == []


def test_bare_except_flagged(tmp_path):
    source = "try:\n    pass\nexcept:\n    pass\n"
    findings = _lint_source(tmp_path, source, relative="core/sample.py")
    assert _rules(findings) == ["LR002"]


def test_thread_without_daemon_flagged_and_pragma(tmp_path):
    source = ("import threading\n"
              "a = threading.Thread(target=print)\n"
              "b = threading.Thread(target=print)  # lint: joined-thread\n"
              "c = threading.Thread(target=print, daemon=True)\n")
    findings = _lint_source(tmp_path, source, relative="core/sample.py")
    assert _rules(findings) == ["LR003"]
    assert findings[0].line == 2


def test_lock_guarded_attribute_mutated_bare(tmp_path):
    source = (
        "import threading\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.hits = 0\n"          # constructor: exempt
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self.hits += 1\n"     # guarded
        "    def reset(self):\n"
        "        self.hits = 0\n"          # bare: LR004
        "    def reset_quietly(self):\n"
        "        self.hits = 0  # lint: unlocked\n"
    )
    findings = _lint_source(tmp_path, source, relative="core/sample.py")
    assert _rules(findings) == ["LR004"]
    assert findings[0].line == 10


def test_lock_free_class_is_not_checked(tmp_path):
    source = ("class Plain:\n"
              "    def __init__(self):\n"
              "        self.hits = 0\n"
              "    def bump(self):\n"
              "        self.hits += 1\n")
    findings = _lint_source(tmp_path, source, relative="core/sample.py")
    assert findings == []


def test_telemetry_clock_flagged_in_telemetry_layer(tmp_path):
    findings = _lint_source(tmp_path, "import time\nnow = time.time()\n",
                            relative="telemetry/sample.py")
    assert _rules(findings) == ["LR005"]


def test_telemetry_clock_sees_through_module_alias(tmp_path):
    # The compiler's phase timers import `time as _time`; the rule must
    # catch the aliased wall-clock read, and the file is selected by
    # exact path, not layer directory.
    findings = _lint_source(
        tmp_path,
        "import time as _time\nstarted = _time.time()\n",
        relative="core/compiler.py")
    assert _rules(findings) == ["LR005"]


def test_telemetry_clock_sees_from_import(tmp_path):
    findings = _lint_source(
        tmp_path,
        "from time import time as now\nstamp = now()\n",
        relative="telemetry/sample.py")
    assert _rules(findings) == ["LR005"]


def test_telemetry_clock_allows_monotonic_and_pragma(tmp_path):
    source = ("import time\n"
              "a = time.monotonic()\n"
              "b = time.perf_counter()\n"
              "c = time.time()  # lint: wall-clock\n")
    findings = _lint_source(tmp_path, source, relative="telemetry/sample.py")
    assert findings == []


def test_telemetry_clock_ignored_outside_its_files(tmp_path):
    findings = _lint_source(tmp_path, "import time\nnow = time.time()\n",
                            relative="core/other.py")
    assert findings == []


def test_manual_span_start_flagged(tmp_path):
    source = ("from repro.telemetry import Span\n"
              "span = Span('job')\n"
              "span.start()\n")
    findings = _lint_source(tmp_path, source, relative="core/sample.py")
    assert _rules(findings) == ["LR006"]
    assert findings[0].line == 3


def test_inline_span_start_flagged(tmp_path):
    # Span(...).start() discards the only reference — nothing can ever
    # finish it, pragma or not the diagnostic must fire.
    source = ("from repro.telemetry import Span\n"
              "Span('job').start()\n")
    findings = _lint_source(tmp_path, source, relative="core/sample.py")
    assert _rules(findings) == ["LR006"]


def test_span_started_in_try_finally_is_clean(tmp_path):
    source = ("from repro.telemetry import Span\n"
              "span = Span('job')\n"
              "try:\n"
              "    span.start()\n"
              "    work()\n"
              "finally:\n"
              "    span.finish()\n")
    findings = _lint_source(tmp_path, source, relative="core/sample.py")
    assert findings == []


def test_span_context_manager_is_clean(tmp_path):
    source = ("from repro.telemetry import Span\n"
              "with Span('job') as span:\n"
              "    work(span)\n")
    findings = _lint_source(tmp_path, source, relative="core/sample.py")
    assert findings == []


def test_manual_span_pragma_suppresses(tmp_path):
    source = ("from repro.telemetry import Span\n"
              "span = Span('job')\n"
              "span.start()  # lint: manual-span\n")
    findings = _lint_source(tmp_path, source, relative="core/sample.py")
    assert findings == []


def test_unrelated_start_calls_not_flagged(tmp_path):
    # .start() on non-Span objects (threads, consumers) is out of scope.
    source = ("import threading\n"
              "thread = threading.Thread(target=print, daemon=True)\n"
              "thread.start()\n")
    findings = _lint_source(tmp_path, source, relative="core/sample.py")
    assert findings == []


def test_lint_off_pragma_disables_all_rules(tmp_path):
    findings = _lint_source(tmp_path,
                            "import time\nnow = time.time()  # lint: off\n")
    assert findings == []


def test_repo_lints_clean():
    """The gate CI runs: the shipped tree has no findings."""
    findings = lint_repro.lint_paths(
        [ROOT / "src" / "repro", ROOT / "tools"], ROOT)
    assert findings == [], [finding.describe() for finding in findings]
