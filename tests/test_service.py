"""Tests for repro.service: disk cache, failure isolation, HTTP endpoint."""

import json
import threading

import pytest

from repro.exceptions import (
    ExperimentError,
    ResourceExhaustedError,
    ServiceError,
)
from repro.api import (
    CompileJob,
    MachineSpec,
    ParallelExecutor,
    SerialExecutor,
    Session,
    SweepSpec,
    config_from_dict,
    config_to_dict,
)
from repro.core.compiler import CompilerConfig, preset
from repro.core.result import CompilationResult, JobFailure
from repro.service import (
    CompilationService,
    DiskCache,
    ServiceClient,
    make_server,
)

GRID = MachineSpec.nisq_grid(5, 5)
RD53 = CompileJob.for_benchmark("RD53", GRID, "square")
RD53_LAZY = CompileJob.for_benchmark("RD53", GRID, "lazy")
#: RD53 cannot fit on two qubits; compiles to a structured failure.
IMPOSSIBLE = CompileJob.for_benchmark("RD53", MachineSpec.nisq(2), "square")


# ----------------------------------------------------------------------
# Descriptor serialization
# ----------------------------------------------------------------------
class TestDescriptors:
    def test_machine_spec_round_trip(self):
        for spec in (GRID, MachineSpec.nisq_full(9), MachineSpec.ft(16),
                     MachineSpec.ideal(8),
                     MachineSpec.nisq_autosize(start_qubits=16)):
            assert MachineSpec.from_dict(spec.to_dict()) == spec

    def test_machine_spec_rejects_unknown_keys(self):
        with pytest.raises(ExperimentError):
            MachineSpec.from_dict({"kind": "nisq", "qbits": 9})

    def test_config_round_trip(self):
        config = preset("square", decompose_toffoli=True)
        assert config_from_dict(config_to_dict(config)) == config
        with pytest.raises(ExperimentError):
            config_from_dict({"allocation": "laa", "reclamatoin": "cer"})

    def test_job_round_trip_preserves_fingerprint(self):
        job = CompileJob.for_benchmark("mul32", GRID, "lazy",
                                       overrides={"width": 8})
        rebuilt = CompileJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert rebuilt == job
        assert rebuilt.fingerprint() == job.fingerprint()

    def test_job_descriptor_shorthand(self):
        job = CompileJob.from_dict({
            "benchmark": "rd53",
            "policy": "square",
            "config": {"decompose_toffoli": True},
            "machine": {"kind": "nisq", "rows": 5, "cols": 5},
        })
        assert job.benchmark == "RD53"
        assert job.config.decompose_toffoli
        assert job.config.policy_name == "square"
        assert job.machine == GRID

    def test_job_descriptor_defaults_to_autosize_square(self):
        job = CompileJob.from_dict({"benchmark": "RD53"})
        assert job.machine.autosize
        assert job.config.policy_name == "square"

    def test_job_descriptor_rejects_bad_shapes(self):
        with pytest.raises(ExperimentError):
            CompileJob.from_dict({})
        with pytest.raises(ExperimentError):
            CompileJob.from_dict({"benchmark": "RD53", "mahcine": {}})

    def test_program_jobs_do_not_serialize(self):
        from tests.conftest import build_two_level_program

        job = CompileJob(program=build_two_level_program(),
                         machine=GRID)
        with pytest.raises(ExperimentError):
            job.to_dict()

    def test_sweep_spec_round_trip(self):
        spec = (SweepSpec()
                .with_benchmarks("RD53", "ADDER4")
                .with_machines(GRID, MachineSpec.nisq_full(9))
                .with_policies("lazy", CompilerConfig(allocation="lifo",
                                                      reclamation="lazy",
                                                      label="custom"))
                .with_scales("quick")
                .with_config(decompose_toffoli=True))
        rebuilt = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert [job.fingerprint() for job in rebuilt.jobs()] == \
               [job.fingerprint() for job in spec.jobs()]

    def test_sweep_spec_rejects_unknown_keys(self):
        with pytest.raises(ExperimentError):
            SweepSpec.from_dict({"benchmark": ["RD53"]})


# ----------------------------------------------------------------------
# JobFailure
# ----------------------------------------------------------------------
class TestJobFailure:
    def test_round_trip_and_exception(self):
        failure = JobFailure(program_name="RD53", machine_name="nisq-2",
                             policy_name="square",
                             error_type="ResourceExhaustedError",
                             message="no space")
        rebuilt = JobFailure.from_dict(json.loads(json.dumps(
            failure.to_dict())))
        assert rebuilt == failure
        error = rebuilt.to_exception()
        assert isinstance(error, ResourceExhaustedError)
        for label in ("RD53", "square", "nisq-2", "no space"):
            assert label in str(error)

    def test_unknown_error_type_degrades_to_experiment_error(self):
        failure = JobFailure(program_name="x", machine_name="m",
                             policy_name="p", error_type="WeirdCustomError",
                             message="boom")
        assert isinstance(failure.to_exception(), ExperimentError)


# ----------------------------------------------------------------------
# Failure isolation
# ----------------------------------------------------------------------
class TestFailureIsolation:
    @pytest.mark.parametrize("executor", [SerialExecutor(),
                                          ParallelExecutor(jobs=2)])
    def test_batch_survives_impossible_job(self, executor):
        session = Session(executor=executor, isolate_failures=True)
        sweep = session.run([RD53, IMPOSSIBLE, RD53_LAZY])
        assert [entry.ok for entry in sweep] == [True, False, True]
        assert not sweep.ok
        failed = sweep.failures()[0]
        assert failed.error.error_type == "ResourceExhaustedError"
        assert failed.error.program_name == "RD53"
        assert failed.result is None
        # The healthy jobs still produced real results.
        assert sweep[0].result.gate_count > 0
        assert sweep[2].result.gate_count > 0

    def test_rows_stay_uniform_with_failures(self):
        session = Session(isolate_failures=True)
        rows = session.run([RD53, IMPOSSIBLE]).rows()
        assert [set(row) for row in rows] == [set(rows[0])] * 2
        assert rows[0]["error"] == ""
        assert "ResourceExhaustedError" in rows[1]["error"]
        assert rows[1]["gates"] == ""

    def test_failures_are_not_cached(self):
        session = Session(isolate_failures=True)
        session.run([IMPOSSIBLE])
        assert session.cache_size == 0

    def test_without_isolation_batch_raises(self):
        with pytest.raises(ResourceExhaustedError):
            Session().run([RD53, IMPOSSIBLE])

    def test_submit_raises_even_when_isolating(self):
        session = Session(isolate_failures=True)
        with pytest.raises(ResourceExhaustedError):
            session.submit(IMPOSSIBLE)

    def test_entry_needs_result_or_error(self):
        from repro.api import SweepEntry

        with pytest.raises(ExperimentError):
            SweepEntry(job=RD53, result=None, error=None)


# ----------------------------------------------------------------------
# DiskCache
# ----------------------------------------------------------------------
class TestDiskCache:
    def test_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        result = Session().submit(RD53)
        fingerprint = RD53.fingerprint()
        assert cache.get(fingerprint) is None
        assert cache.misses == 1
        cache.put(fingerprint, result, job=RD53)
        assert fingerprint in cache
        assert len(cache) == 1
        restored = cache.get(fingerprint)
        assert restored == result
        assert cache.hits == 1
        assert cache.entries()[fingerprint]["benchmark"] == "RD53"

    def test_corrupted_payload_counts_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = Session().submit(RD53)
        fingerprint = RD53.fingerprint()
        cache.put(fingerprint, result)
        (cache.results_dir / f"{fingerprint}.json").write_text("{not json")
        assert cache.get(fingerprint) is None
        assert cache.corrupt == 1
        # A rewrite heals the entry.
        cache.put(fingerprint, result)
        assert cache.get(fingerprint) == result

    def test_mislabelled_payload_rejected(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = Session().submit(RD53)
        cache.put(RD53.fingerprint(), result)
        # Rename the payload under a different fingerprint: the content
        # no longer matches its key, so it must not be served.
        source = cache.results_dir / f"{RD53.fingerprint()}.json"
        target = cache.results_dir / f"{'0' * 64}.json"
        source.rename(target)
        assert cache.get("0" * 64) is None
        assert cache.corrupt == 1

    def test_corrupt_index_is_rebuilt(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = Session().submit(RD53)
        cache.put(RD53.fingerprint(), result, job=RD53)
        cache.index_path.write_text("garbage")
        reopened = DiskCache(tmp_path)
        assert reopened.entries()[RD53.fingerprint()]["policy"] == "square"
        assert reopened.get(RD53.fingerprint()) == result

    def test_no_temp_file_litter(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(RD53.fingerprint(), Session().submit(RD53), job=RD53)
        leftovers = [path for path in cache.root.rglob("*.tmp")]
        assert leftovers == []

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(RD53.fingerprint(), Session().submit(RD53))
        cache.clear()
        assert len(cache) == 0
        assert cache.entries() == {}


class TestSessionDiskTier:
    def test_restart_serves_from_disk_with_identical_rows(self, tmp_path):
        spec = (SweepSpec()
                .with_benchmarks("RD53", "6SYM")
                .with_machines(GRID)
                .with_policies("lazy", "square"))
        cold_session = Session(cache_dir=tmp_path)
        cold = cold_session.run(spec)
        assert cold_session.disk_hits == 0
        assert cold_session.disk_cache.writes == 4

        warm_session = Session(cache_dir=tmp_path)  # "process restart"
        warm = warm_session.run(spec)
        assert warm_session.disk_hits == 4
        assert warm.cache_hits == 4
        # Byte-identical export, cold vs warm.
        assert cold.to_json() == warm.to_json()
        assert cold.to_csv() == warm.to_csv()

    def test_memory_tier_shields_disk(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        session.submit(RD53)
        session.submit(RD53)
        assert session.disk_hits == 0  # second hit came from memory
        assert session.disk_cache.writes == 1

    def test_disk_cache_and_cache_dir_conflict(self, tmp_path):
        with pytest.raises(ExperimentError):
            Session(disk_cache=DiskCache(tmp_path), cache_dir=tmp_path)

    def test_stats_include_disk(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        session.submit(RD53)
        stats = session.stats()
        assert stats["disk_cache"]["writes"] == 1
        assert stats["disk_cache"]["size"] == 1


# ----------------------------------------------------------------------
# Service core + HTTP endpoint
# ----------------------------------------------------------------------
class TestCompilationService:
    def test_compile_and_failure_payloads(self, tmp_path):
        service = CompilationService(cache_dir=tmp_path)
        response = service.compile({"job": RD53.to_dict()})
        assert response["ok"] and not response["cached"]
        assert response["result"]["gate_count"] > 0
        assert response["row"]["benchmark"] == "RD53"

        again = service.compile(RD53.to_dict())  # bare descriptor form
        assert again["cached"] and not again["disk_hit"]

        failed = service.compile({"job": IMPOSSIBLE.to_dict()})
        assert not failed["ok"]
        assert failed["error"]["error_type"] == "ResourceExhaustedError"
        assert service.job_failures == 1

    def test_sweep_payload(self):
        service = CompilationService()
        spec = (SweepSpec()
                .with_benchmarks("RD53")
                .with_machines(GRID)
                .with_policies("lazy", "square"))
        response = service.sweep({"spec": spec.to_dict()})
        assert response["ok"] and response["count"] == 2
        assert [entry["policy"] for entry in response["entries"]] == \
               ["lazy", "square"]
        assert response["rows"][0]["gates"] > 0


@pytest.fixture(scope="module")
def http_service(tmp_path_factory):
    """A live threaded HTTP server + client over a fresh cache dir."""
    cache_dir = tmp_path_factory.mktemp("service-cache")
    server = make_server("127.0.0.1", 0, cache_dir=str(cache_dir))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), cache_dir
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestHTTPEndpoint:
    def test_health_stats_registry(self, http_service):
        client, _ = http_service
        assert client.health()["status"] == "ok"
        registry = client.registry()
        assert "RD53" in registry["benchmarks"]
        assert "square" in registry["policies"]
        stats = client.stats()
        assert "session" in stats and "service" in stats

    def test_compile_over_http(self, http_service):
        client, _ = http_service
        result = client.submit(RD53)
        assert result.gate_count > 0
        response = client.compile_job(RD53)
        assert response["cached"]

    def test_compile_convenience(self, http_service):
        client, _ = http_service
        result = client.compile("RD53", machine=GRID, policy="lazy")
        assert result.policy_name == "lazy"

    def test_remote_matches_local(self, http_service):
        client, _ = http_service
        remote = client.submit(RD53_LAZY)
        local = Session().submit(RD53_LAZY)
        assert remote.summary() == local.summary()

    def test_failure_reraises_original_type(self, http_service):
        client, _ = http_service
        with pytest.raises(ResourceExhaustedError):
            client.submit(IMPOSSIBLE)

    def test_sweep_isolates_impossible_job(self, http_service):
        client, _ = http_service
        sweep = client.run([RD53, IMPOSSIBLE, RD53_LAZY])
        assert [entry.ok for entry in sweep] == [True, False, True]
        assert sweep[0].result.summary() == \
               Session().submit(RD53).summary()
        assert sweep.failures()[0].error.error_type == \
               "ResourceExhaustedError"

    def test_sweep_spec_over_http(self, http_service):
        client, _ = http_service
        spec = (SweepSpec()
                .with_benchmarks("RD53")
                .with_machines(GRID)
                .with_policies("lazy", "square"))
        sweep = client.run(spec)
        assert len(sweep) == 2
        assert sweep.get(policy="square").policy_name == "square"

    def test_bad_requests_are_service_errors(self, http_service):
        client, _ = http_service
        with pytest.raises(ServiceError) as exc_info:
            client.compile_job({"benchmark": "RD53", "mahcine": {}})
        assert "400" in str(exc_info.value)
        with pytest.raises(ServiceError):
            client._get("/nonsense")

    def test_unreachable_service(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError):
            client.health()

    def test_warm_cache_survives_server_restart(self, http_service):
        client, cache_dir = http_service
        job = CompileJob.for_benchmark("ADDER4", GRID, "square")
        first = client.compile_job(job)
        assert first["ok"]

        # A brand-new server over the same cache dir: in-memory memo is
        # empty, so the hit must come from disk — and be identical.
        restarted = make_server("127.0.0.1", 0, cache_dir=str(cache_dir))
        thread = threading.Thread(target=restarted.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            host, port = restarted.server_address[:2]
            warm = ServiceClient(f"http://{host}:{port}").compile_job(job)
            assert warm["ok"] and warm["cached"] and warm["disk_hit"]
            assert warm["result"] == first["result"]
        finally:
            restarted.shutdown()
            restarted.server_close()
            thread.join(timeout=5)


class TestServeCLI:
    def test_compile_and_sweep_exports_share_schema(self, tmp_path):
        from repro.experiments.__main__ import main

        compile_path = tmp_path / "compile.json"
        sweep_path = tmp_path / "sweep.json"
        cache = str(tmp_path / "cache")
        assert main(["compile", "RD53", "--policies", "lazy", "square",
                     "--grid", "5", "5", "--scale", "quick",
                     "--cache-dir", cache,
                     "--export", str(compile_path)]) == 0
        assert main(["sweep", "RD53", "--policies", "lazy", "square",
                     "--grid", "5", "5", "--scale", "quick",
                     "--cache-dir", cache,
                     "--export", str(sweep_path)]) == 0
        # Same schema, same values -> byte-identical export files.
        assert compile_path.read_text() == sweep_path.read_text()

    def test_serve_rejects_experiment_flags(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["serve", "--export", "rows.json"])
        with pytest.raises(SystemExit):
            main(["table3", "--port", "9999"])


class TestReviewHardening:
    """Regression tests for review findings on the service layer."""

    def test_get_and_suite_raise_for_failed_entries(self):
        session = Session(isolate_failures=True)
        sweep = session.run([IMPOSSIBLE, RD53_LAZY])
        with pytest.raises(ResourceExhaustedError):
            sweep.get(policy="square")
        with pytest.raises(ResourceExhaustedError):
            sweep.suite(benchmark="RD53")
        # Scoping past the failure still works.
        assert sweep.filter(policy="lazy")[0].result.gate_count > 0

    def test_duplicate_failures_are_never_cached(self):
        session = Session(isolate_failures=True)
        sweep = session.run([IMPOSSIBLE, RD53, IMPOSSIBLE])
        assert [entry.cached for entry in sweep] == [False, False, False]
        assert session.cache_hits == 0
        assert session.cache_misses == 3

    def test_failed_batch_still_caches_completed_work(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        with pytest.raises(ResourceExhaustedError):
            session.run([RD53, IMPOSSIBLE, RD53_LAZY])
        # The two healthy jobs were cached in memory and on disk before
        # the failure propagated, so the retry resumes warm.
        assert session.cache_size == 2
        assert session.disk_cache.writes == 2
        restarted = Session(cache_dir=tmp_path)
        sweep = restarted.run([RD53, RD53_LAZY])
        assert restarted.disk_hits == 2
        assert sweep.cache_hits == 2

    def test_stale_index_is_rebuilt_on_reopen(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(RD53.fingerprint(), Session().submit(RD53), job=RD53)
        # put() defers the index write; a "crashed" process never flushed.
        reopened = DiskCache(tmp_path)
        assert reopened.entries()[RD53.fingerprint()]["benchmark"] == "RD53"
        cache.flush_index()
        flushed = DiskCache(tmp_path)
        assert flushed.entries()[RD53.fingerprint()]["policy"] == "square"

    def test_serve_rejects_machine_flags(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["serve", "--grid", "5", "5"])
        with pytest.raises(SystemExit):
            main(["serve", "--machine", "ft"])
