"""Tests for repro.queue (jobs, queue, workers, manager) and the async
service path built on it: /jobs endpoints, back-pressure, cancellation,
disk-cache eviction, client retry, and session-level concurrency."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.exceptions import (
    BackPressureError,
    ResourceExhaustedError,
    ServiceError,
    UnknownJobError,
)
from repro.api import (
    CompileJob,
    MachineSpec,
    SerialExecutor,
    Session,
    SweepSpec,
)
from repro.queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobManager,
    JobQueue,
    QueuedJob,
    WorkerPool,
)
from repro.service import (
    CompilationService,
    DiskCache,
    ServiceClient,
    make_server,
)

GRID = MachineSpec.nisq_grid(5, 5)
RD53 = CompileJob.for_benchmark("RD53", GRID, "square")
IMPOSSIBLE = CompileJob.for_benchmark("RD53", MachineSpec.nisq(2), "square")


def wait_until(predicate, timeout=5.0, interval=0.005):
    """Poll ``predicate`` to True within ``timeout`` or fail the test."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    pytest.fail("condition not reached within timeout")


def slow_down_sweeps(service, seconds):
    """Make the service's sweep jobs take at least ``seconds`` to run.

    Wraps the manager's runner (the reference its workers actually
    call), keyed on the job kind — sweeps execute incrementally through
    the session now, so slowing ``session.run`` batches would no longer
    catch them.
    """
    original = service.manager._runner

    def slow_runner(job):
        if job.kind == "sweep":
            time.sleep(seconds)
        return original(job)

    service.manager._runner = slow_runner
    return service


# ----------------------------------------------------------------------
# QueuedJob lifecycle
# ----------------------------------------------------------------------
class TestQueuedJob:
    def test_lifecycle_and_timestamps(self):
        job = QueuedJob("job-000001", "compile", {"benchmark": "RD53"},
                        priority=3)
        assert job.state == QUEUED and not job.is_terminal
        assert job.started_at is None and job.finished_at is None
        job.transition(RUNNING)
        assert job.started_at is not None
        job.transition(DONE)
        assert job.is_terminal and job.finished_at is not None
        assert job.wait(0.0)  # event already set
        assert job.wait_seconds >= 0 and job.run_seconds >= 0

    def test_illegal_transitions_rejected(self):
        job = QueuedJob("job-000001", "compile", {})
        with pytest.raises(ServiceError):
            job.transition(DONE)  # QUEUED cannot jump to DONE
        job.transition(CANCELLED)
        for state in (RUNNING, DONE, FAILED):
            with pytest.raises(ServiceError):
                job.transition(state)  # terminal states are final
        with pytest.raises(ServiceError):
            job.transition("NONSENSE")

    def test_to_dict_round_trips_through_json(self):
        job = QueuedJob("job-000007", "sweep", {"spec": {}}, priority=1)
        job.transition(RUNNING)
        job.response = {"ok": True}
        job.transition(DONE)
        record = json.loads(json.dumps(job.to_dict()))
        assert record["job_id"] == "job-000007"
        assert record["state"] == DONE
        assert record["response"] == {"ok": True}
        assert record["priority"] == 1


# ----------------------------------------------------------------------
# JobQueue
# ----------------------------------------------------------------------
def _job(job_id, priority=0):
    return QueuedJob(job_id, "compile", {}, priority=priority)


class TestJobQueue:
    def test_priority_order_with_fifo_ties(self):
        queue = JobQueue(capacity=8)
        queue.push(_job("a", priority=0))
        queue.push(_job("b", priority=5))
        queue.push(_job("c", priority=0))
        queue.push(_job("d", priority=5))
        order = [queue.pop(timeout=0.1).job_id for _ in range(4)]
        assert order == ["b", "d", "a", "c"]

    def test_back_pressure_is_structured(self):
        queue = JobQueue(capacity=2)
        queue.push(_job("a"))
        queue.push(_job("b"))
        with pytest.raises(BackPressureError) as exc_info:
            queue.push(_job("c"))
        assert exc_info.value.depth == 2
        assert exc_info.value.capacity == 2
        assert queue.rejected == 1
        assert len(queue) == 2  # the rejected job left no trace

    def test_discard_removes_waiting_job(self):
        queue = JobQueue(capacity=4)
        queue.push(_job("a"))
        queue.push(_job("b"))
        assert queue.discard("a")
        assert not queue.discard("a")  # already gone
        assert queue.pop(timeout=0.1).job_id == "b"

    def test_pop_timeout_returns_none(self):
        assert JobQueue(capacity=1).pop(timeout=0.01) is None

    def test_close_drain_keeps_backlog(self):
        queue = JobQueue(capacity=4)
        queue.push(_job("a"))
        assert queue.close(drain=True) == []
        assert queue.pop(timeout=0.1).job_id == "a"
        assert queue.pop(timeout=0.1) is None  # closed and drained
        with pytest.raises(ServiceError):
            queue.push(_job("b"))

    def test_close_without_drain_returns_dropped(self):
        queue = JobQueue(capacity=4)
        queue.push(_job("a"))
        dropped = queue.close(drain=False)
        assert [job.job_id for job in dropped] == ["a"]
        assert queue.pop(timeout=0.1) is None


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_drains_and_shuts_down_cleanly(self):
        queue = JobQueue(capacity=16)
        handled = []
        lock = threading.Lock()

        def handler(job):
            with lock:
                handled.append(job.job_id)

        pool = WorkerPool(handler, queue, workers=3)
        assert pool.workers == 3 and pool.alive == 3
        for index in range(10):
            queue.push(_job(f"job-{index}"))
        wait_until(lambda: len(handled) == 10)
        assert pool.close()
        assert pool.alive == 0
        assert sorted(handled) == sorted(f"job-{i}" for i in range(10))

    def test_rejects_zero_workers(self):
        with pytest.raises(ServiceError):
            WorkerPool(lambda job: None, JobQueue(capacity=1), workers=0)


# ----------------------------------------------------------------------
# JobManager
# ----------------------------------------------------------------------
class TestJobManager:
    def test_submit_wait_result(self):
        manager = JobManager(lambda job: {"echo": job.payload},
                             workers=2, queue_size=8)
        try:
            ticket = manager.submit("compile", {"benchmark": "RD53"})
            assert ticket.job_id == "job-000001"
            job = manager.wait(ticket.job_id, timeout=5)
            assert job.state == DONE
            assert manager.result(ticket.job_id) == \
                   {"echo": {"benchmark": "RD53"}}
            assert manager.status(ticket.job_id)["state"] == DONE
        finally:
            manager.close()

    def test_failed_job_keeps_original_exception_type(self):
        def runner(job):
            raise ResourceExhaustedError("no qubits")

        manager = JobManager(runner, workers=1, queue_size=4)
        try:
            ticket = manager.submit(
                "compile", {"job": {"benchmark": "RD53",
                                    "policy": "square"}})
            manager.wait(ticket.job_id, timeout=5)
            assert ticket.state == FAILED
            assert ticket.error["error_type"] == "ResourceExhaustedError"
            # The failure record carries the submitted job's coordinates.
            assert ticket.error["program_name"] == "RD53"
            assert ticket.error["policy_name"] == "square"
            with pytest.raises(ResourceExhaustedError):
                manager.result(ticket.job_id)
        finally:
            manager.close()

    def test_cancel_of_queued_job_never_runs(self):
        gate = threading.Event()
        ran = []

        def runner(job):
            gate.wait(10)
            ran.append(job.job_id)
            return {}

        manager = JobManager(runner, workers=1, queue_size=8)
        try:
            first = manager.submit("compile", {})
            wait_until(lambda: first.state == RUNNING)
            queued = manager.submit("compile", {})
            job, cancelled = manager.cancel(queued.job_id)
            assert cancelled and job.state == CANCELLED
            # Cancelling again (or after the fact) is refused, not an error.
            assert manager.cancel(queued.job_id) == (job, False)
            gate.set()
            manager.wait(first.job_id, timeout=5)
            manager.close(drain=True)
            assert ran == [first.job_id]
        finally:
            gate.set()
            manager.close()

    def test_cancel_of_running_job_refused(self):
        gate = threading.Event()

        def runner(job):
            gate.wait(10)
            return {}

        manager = JobManager(runner, workers=1, queue_size=4)
        try:
            ticket = manager.submit("compile", {})
            wait_until(lambda: ticket.state == RUNNING)
            job, cancelled = manager.cancel(ticket.job_id)
            assert not cancelled and job.state == RUNNING
        finally:
            gate.set()
            manager.close()

    def test_priority_orders_execution(self):
        gate = threading.Event()
        ran = []

        def runner(job):
            gate.wait(10)
            ran.append(job.job_id)
            return {}

        manager = JobManager(runner, workers=1, queue_size=8)
        try:
            blocker = manager.submit("compile", {})
            wait_until(lambda: blocker.state == RUNNING)
            low = manager.submit("compile", {}, priority=0)
            high = manager.submit("compile", {}, priority=5)
            gate.set()
            manager.wait(low.job_id, timeout=5)
            assert ran == [blocker.job_id, high.job_id, low.job_id]
        finally:
            gate.set()
            manager.close()

    def test_unknown_job_id_raises(self):
        manager = JobManager(lambda job: {}, workers=1, queue_size=2)
        try:
            with pytest.raises(UnknownJobError):
                manager.get("job-999999")
            with pytest.raises(UnknownJobError):
                manager.cancel("job-999999")
        finally:
            manager.close()

    def test_retention_gc_drops_oldest_finished(self):
        manager = JobManager(lambda job: {}, workers=2, queue_size=16,
                             retention=2)
        try:
            tickets = [manager.submit("compile", {}) for _ in range(5)]
            for ticket in tickets:
                manager.wait(ticket.job_id, timeout=5)
            assert manager.gc() >= 0  # prune now that all finished
            assert len(manager.jobs()) == 2
            with pytest.raises(UnknownJobError):
                manager.status(tickets[0].job_id)
            # The two newest records survive.
            assert manager.status(tickets[-1].job_id)["state"] == DONE
        finally:
            manager.close()

    def test_list_filter_and_stats(self):
        manager = JobManager(lambda job: {}, workers=1, queue_size=4)
        try:
            ticket = manager.submit("compile", {})
            manager.wait(ticket.job_id, timeout=5)
            assert [j.job_id for j in manager.jobs(state=DONE)] == \
                   [ticket.job_id]
            assert manager.jobs(state=QUEUED) == []
            with pytest.raises(ServiceError):
                manager.jobs(state="WEIRD")
            stats = manager.stats()
            assert stats["submitted"] == 1 and stats["completed"] == 1
            assert stats["states"][DONE] == 1
            assert stats["queue"]["capacity"] == 4
            assert stats["pool"]["workers"] == 1
        finally:
            manager.close()

    def test_close_without_drain_cancels_backlog(self):
        gate = threading.Event()

        def runner(job):
            gate.wait(10)
            return {}

        manager = JobManager(runner, workers=1, queue_size=8)
        running = manager.submit("compile", {})
        wait_until(lambda: running.state == RUNNING)
        backlog = manager.submit("compile", {})
        gate.set()
        assert manager.close(drain=False)
        assert backlog.state == CANCELLED
        with pytest.raises(ServiceError):
            manager.submit("compile", {})  # closed queue rejects


# ----------------------------------------------------------------------
# Session concurrency: single-flight across worker threads
# ----------------------------------------------------------------------
class CountingExecutor(SerialExecutor):
    """Serial executor that records every job it actually compiles."""

    def __init__(self):
        self.lock = threading.Lock()
        self.executed = []

    def run_isolated(self, jobs):
        with self.lock:
            self.executed.extend(jobs)
        return SerialExecutor.run_isolated(self, jobs)


class TestSessionConcurrency:
    def test_overlapping_sweeps_compile_each_job_once(self):
        executor = CountingExecutor()
        session = Session(executor=executor)
        spec = (SweepSpec()
                .with_benchmarks("RD53", "6SYM")
                .with_machines(GRID)
                .with_policies("lazy", "square"))
        unique = len({job.fingerprint() for job in spec.jobs()})
        results = []
        errors = []

        def worker():
            try:
                results.append(session.run(spec, isolate_failures=True))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(results) == 6
        # The crux: six overlapping sweeps, each fingerprint compiled once.
        assert len(executor.executed) == unique
        reference = results[0].rows()
        for sweep in results[1:]:
            assert sweep.rows() == reference

    def test_concurrent_failures_propagate_to_waiters(self):
        session = Session(isolate_failures=True)
        outcomes = []
        lock = threading.Lock()

        def worker():
            sweep = session.run([IMPOSSIBLE])
            with lock:
                outcomes.append(sweep[0].ok)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert outcomes == [False, False, False, False]

    def test_disk_tier_hit_marks_entry(self, tmp_path):
        Session(cache_dir=tmp_path).submit(RD53)
        warm = Session(cache_dir=tmp_path)
        entry = warm.run([RD53])[0]
        assert entry.cached and entry.disk_hit
        again = warm.run([RD53])[0]
        assert again.cached and not again.disk_hit  # memory shields disk

    def test_remote_sweep_entries_carry_disk_hit(self, tmp_path):
        Session(cache_dir=tmp_path).submit(RD53)
        server = make_server("127.0.0.1", 0, cache_dir=str(tmp_path))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            client = ServiceClient(f"http://{host}:{port}")
            sweep = client.run([RD53])
            assert sweep[0].cached and sweep[0].disk_hit
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# DiskCache eviction + index locking
# ----------------------------------------------------------------------
class TestDiskCacheEviction:
    def _sized_cache(self, tmp_path, entries=2.5):
        """A cache whose cap holds ~``entries`` RD53-sized payloads."""
        result = Session().submit(RD53)
        probe = DiskCache(tmp_path / "probe")
        probe.put("f" * 8, result, job=RD53)
        size = probe.total_bytes()
        cache = DiskCache(tmp_path / "capped",
                          max_bytes=int(size * entries))
        return cache, result, size

    def test_lru_eviction_on_write(self, tmp_path):
        cache, result, size = self._sized_cache(tmp_path, entries=2.5)
        import os
        cache.put("a" * 8, result)
        cache.put("b" * 8, result)
        assert cache.evictions == 0
        # Make "a" the most recently used despite being written first.
        os.utime(cache._result_path("b" * 8), (1000, 1000))
        cache.put("c" * 8, result)  # over cap -> evict LRU ("b")
        assert cache.evictions == 1
        assert "b" * 8 not in cache
        assert "a" * 8 in cache and "c" * 8 in cache
        assert cache.total_bytes() <= cache.max_bytes

    def test_get_bumps_recency(self, tmp_path):
        cache, result, size = self._sized_cache(tmp_path, entries=2.5)
        import os
        cache.put("a" * 8, result)
        cache.put("b" * 8, result)
        # Age both, then touch "a" via a read hit.
        os.utime(cache._result_path("a" * 8), (1000, 1000))
        os.utime(cache._result_path("b" * 8), (2000, 2000))
        assert cache.get("a" * 8) == result
        cache.put("c" * 8, result)
        assert "a" * 8 in cache  # read hit saved it
        assert "b" * 8 not in cache

    def test_new_entry_never_self_evicts(self, tmp_path):
        result = Session().submit(RD53)
        cache = DiskCache(tmp_path, max_bytes=1)  # absurdly small cap
        cache.put("a" * 8, result)
        assert "a" * 8 in cache  # kept despite exceeding the cap alone
        cache.put("b" * 8, result)
        assert "b" * 8 in cache and "a" * 8 not in cache
        assert cache.evictions == 1

    def test_eviction_updates_index_and_stats(self, tmp_path):
        cache, result, _ = self._sized_cache(tmp_path, entries=1.5)
        cache.put("a" * 8, result, job=RD53)
        time.sleep(0.02)  # distinct mtimes
        cache.put("b" * 8, result, job=RD53)
        assert cache.evictions == 1
        assert set(cache.entries()) == {"b" * 8}
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["max_bytes"] == cache.max_bytes
        assert stats["bytes"] <= cache.max_bytes
        cache.flush_index()
        reopened = DiskCache(cache.root, max_bytes=cache.max_bytes)
        assert set(reopened.entries()) == {"b" * 8}

    def test_uncapped_cache_never_evicts(self, tmp_path):
        result = Session().submit(RD53)
        cache = DiskCache(tmp_path)
        for index in range(4):
            cache.put(f"{index}" * 8, result)
        assert cache.evictions == 0 and len(cache) == 4
        with pytest.raises(ValueError):
            DiskCache(tmp_path, max_bytes=0)

    def test_index_lock_file_used(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("a" * 8, Session().submit(RD53))
        cache.flush_index()
        # On POSIX (where CI runs) the advisory lock file must exist and
        # the index must still round-trip through the locked rewrite.
        assert cache.lock_path.exists()
        assert DiskCache(tmp_path).fingerprints() == ["a" * 8]

    def test_two_writers_merge_index_entries(self, tmp_path):
        """Two caches over one directory: neither flush clobbers the
        other's index entries (the multi-writer satellite fix)."""
        result = Session().submit(RD53)
        writer_a = DiskCache(tmp_path)
        writer_b = DiskCache(tmp_path)
        writer_a.put("a" * 8, result, job=RD53)
        writer_b.put("b" * 8, result, job=RD53)
        writer_a.flush_index()
        writer_b.flush_index()  # must not drop writer_a's entry
        reopened = DiskCache(tmp_path)
        assert set(reopened.entries()) == {"a" * 8, "b" * 8}

    def test_merge_does_not_resurrect_evicted_entries(self, tmp_path):
        cache, result, _ = self._sized_cache(tmp_path, entries=1.5)
        cache.put("a" * 8, result, job=RD53)
        cache.flush_index()
        time.sleep(0.02)
        cache.put("b" * 8, result, job=RD53)  # evicts "a"
        cache.flush_index()
        assert set(DiskCache(cache.root).entries()) == {"b" * 8}


# ----------------------------------------------------------------------
# Async HTTP endpoints
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def async_service(tmp_path_factory):
    """A live threaded HTTP server (2 workers) + client."""
    cache_dir = tmp_path_factory.mktemp("queue-service-cache")
    server = make_server("127.0.0.1", 0, cache_dir=str(cache_dir),
                         workers=2, queue_size=16)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestAsyncHTTP:
    def test_submit_poll_wait_done(self, async_service):
        client = async_service
        started = time.perf_counter()
        job_id = client.submit_async(RD53)
        submit_elapsed = time.perf_counter() - started
        assert submit_elapsed < 1.0  # ticket returns without compiling
        record = client.wait_for(job_id, timeout=60)
        assert record["state"] == "DONE"
        assert record["response"]["ok"]
        assert record["response"]["result"]["gate_count"] > 0
        assert record["wait_seconds"] >= 0
        assert record["run_seconds"] >= 0

    def test_async_matches_sync_byte_for_byte(self, async_service):
        client = async_service
        spec = (SweepSpec()
                .with_benchmarks("RD53")
                .with_machines(GRID)
                .with_policies("lazy", "square"))
        sync_response = client._post("/sweep", {"spec": spec.to_dict()})
        job_id = client.submit_async(spec)
        async_response = client.result_of(job_id, timeout=60)
        assert json.dumps(async_response["rows"], sort_keys=True) == \
               json.dumps(sync_response["rows"], sort_keys=True)
        assert [e["result"] for e in async_response["entries"]] == \
               [e["result"] for e in sync_response["entries"]]

    def test_failed_async_job_reports_error(self, async_service):
        client = async_service
        job_id = client.submit_async(IMPOSSIBLE)
        record = client.wait_for(job_id, timeout=60)
        # Failure isolation: the *job* failed but the queue job is DONE
        # with a structured error entry in the response.
        assert record["state"] == "DONE"
        assert not record["response"]["ok"]
        assert record["response"]["error"]["error_type"] == \
               "ResourceExhaustedError"

    def test_unknown_job_id_is_404(self, async_service):
        client = async_service
        with pytest.raises(UnknownJobError) as exc_info:
            client.poll("job-424242")
        assert "404" in str(exc_info.value)
        with pytest.raises(UnknownJobError):
            client.cancel("job-424242")

    def test_job_listing(self, async_service):
        client = async_service
        job_id = client.submit_async(RD53)
        client.wait_for(job_id, timeout=60)
        records = client.jobs()
        assert any(record["job_id"] == job_id for record in records)
        assert all(record["state"] == "DONE"
                   for record in client.jobs(state="DONE"))
        with pytest.raises(ServiceError):
            client.jobs(state="NONSENSE")

    def test_stats_expose_queue_and_workers(self, async_service):
        client = async_service
        stats = client.stats()
        service = stats["service"]
        assert service["queue_capacity"] == 16
        assert service["workers"] == 2
        assert 0.0 <= service["worker_utilization"] <= 1.0
        assert stats["queue"]["pool"]["alive"] == 2
        assert "disk_cache" in stats["session"]
        assert "evictions" in stats["session"]["disk_cache"]

    def test_malformed_submission_is_400(self, async_service):
        client = async_service
        with pytest.raises(ServiceError) as exc_info:
            client.submit_async({"job": {"benchmark": "RD53",
                                         "mahcine": {}}})
        assert "400" in str(exc_info.value)
        with pytest.raises(ServiceError):
            client._post("/jobs", {"job": RD53.to_dict(),
                                   "priority": "high"})


@pytest.fixture()
def saturated_service(tmp_path):
    """workers=1, queue_size=1 server whose sweeps are slowed, so the
    worker is deterministically busy while tests probe the queue."""
    session = Session(cache_dir=tmp_path)
    service = slow_down_sweeps(
        CompilationService(session=session, workers=1, queue_size=1), 0.8)
    server = make_server("127.0.0.1", 0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


SLOW_SPEC = (SweepSpec()
             .with_benchmarks("RD53")
             .with_machines(GRID)
             .with_policies("lazy", "square"))


class TestBackPressureHTTP:
    def test_queue_full_is_503_and_cancel_frees_a_slot(self,
                                                      saturated_service):
        client = saturated_service
        running = client.submit_async(SLOW_SPEC)   # occupies the worker
        wait_until(lambda: client.poll(running)["state"] == "RUNNING")
        queued = client.submit_async(SLOW_SPEC)    # fills the queue
        with pytest.raises(BackPressureError) as exc_info:
            client.submit_async(SLOW_SPEC)         # 503
        assert exc_info.value.depth == 1
        assert exc_info.value.capacity == 1
        assert "503" in str(exc_info.value)

        # Cancel the queued job: it never runs, and the slot frees up.
        record = client.cancel(queued)
        assert record["cancelled"] and record["state"] == "CANCELLED"
        replacement = client.submit_async(RD53)
        final = client.wait_for(replacement, timeout=60)
        assert final["response"]["ok"]
        assert client.poll(queued)["state"] == "CANCELLED"
        assert client.poll(queued).get("started_at") is None

    def test_small_compile_overtakes_running_sweep(self, saturated_service):
        client = saturated_service
        sweep_id = client.submit_async(SLOW_SPEC)
        wait_until(lambda: client.poll(sweep_id)["state"] == "RUNNING")
        # Synchronous /compile completes while the sweep still runs:
        # with one worker busy this rides the queue... so use the sweep
        # states to prove the ticket returned fast instead.
        started = time.perf_counter()
        compile_id = client.submit_async(RD53)
        assert time.perf_counter() - started < 0.5
        assert client.poll(sweep_id)["state"] == "RUNNING"
        record = client.wait_for(compile_id, timeout=60)
        assert record["response"]["ok"]


class TestConcurrentCompileNotSerialized:
    def test_compiles_complete_while_sweep_runs(self, tmp_path):
        """With 2+ workers a long sweep occupies one worker while
        /compile requests land on the other — the acceptance criterion
        that PR 2's single lock could not meet."""
        session = Session(cache_dir=tmp_path)
        service = slow_down_sweeps(
            CompilationService(session=session, workers=2, queue_size=8),
            1.5)
        server = make_server("127.0.0.1", 0, service=service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            sweep_id = client.submit_async(SLOW_SPEC)
            wait_until(lambda: client.poll(sweep_id)["state"] == "RUNNING")
            response = client.compile_job(RD53)  # synchronous path
            assert response["ok"]
            # The compile finished while the sweep was still running.
            assert client.poll(sweep_id)["state"] == "RUNNING"
            assert client.wait_for(sweep_id, timeout=60)["state"] == "DONE"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Client retry with backoff
# ----------------------------------------------------------------------
class TestClientRetry:
    def test_get_retries_connection_refused(self, async_service,
                                            monkeypatch):
        client = ServiceClient(async_service.base_url, retries=3,
                               backoff=0.001)
        real_urlopen = urllib.request.urlopen
        calls = {"count": 0}

        def flaky(request, timeout=None):
            calls["count"] += 1
            if calls["count"] <= 2:
                raise urllib.error.URLError(
                    ConnectionRefusedError(111, "Connection refused"))
            return real_urlopen(request, timeout=timeout)

        monkeypatch.setattr(urllib.request, "urlopen", flaky)
        assert client.health()["status"] == "ok"
        assert calls["count"] == 3  # two refusals + one success

    def test_post_is_never_retried(self, async_service, monkeypatch):
        client = ServiceClient(async_service.base_url, retries=5,
                               backoff=0.001)
        calls = {"count": 0}

        def refused(request, timeout=None):
            calls["count"] += 1
            raise urllib.error.URLError(
                ConnectionRefusedError(111, "Connection refused"))

        monkeypatch.setattr(urllib.request, "urlopen", refused)
        with pytest.raises(ServiceError):
            client.compile_job(RD53)
        assert calls["count"] == 1  # a submission must not double

    def test_retries_exhausted_raise_service_error(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9", retries=2,
                               backoff=0.001)
        calls = {"count": 0}

        def refused(request, timeout=None):
            calls["count"] += 1
            raise urllib.error.URLError(
                ConnectionRefusedError(111, "Connection refused"))

        monkeypatch.setattr(urllib.request, "urlopen", refused)
        with pytest.raises(ServiceError):
            client.health()
        assert calls["count"] == 3  # initial try + 2 retries

    def test_non_transient_get_errors_do_not_retry(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9", retries=5,
                               backoff=0.001)
        calls = {"count": 0}

        def unreachable(request, timeout=None):
            calls["count"] += 1
            raise urllib.error.URLError(OSError("no route to host"))

        monkeypatch.setattr(urllib.request, "urlopen", unreachable)
        with pytest.raises(ServiceError):
            client.health()
        assert calls["count"] == 1


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestServeCLIFlags:
    def test_queue_flags_rejected_outside_serve(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table3", "--workers", "4"])
        with pytest.raises(SystemExit):
            main(["sweep", "RD53", "--queue-size", "8"])
        with pytest.raises(SystemExit):
            main(["compile", "RD53", "--cache-max-bytes", "1000"])
