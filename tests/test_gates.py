"""Unit tests for the gate set definitions."""

import pytest

from repro.exceptions import UnknownGateError
from repro.ir.gates import (
    CLASSICAL_GATES,
    GATE_SPECS,
    Gate,
    gate_spec,
    inverse_gate_name,
    is_classical_gate,
    make_gate,
)


class TestGateSpecs:
    def test_every_spec_has_matching_name(self):
        for name, spec in GATE_SPECS.items():
            assert spec.name == name

    def test_classical_gate_set(self):
        assert CLASSICAL_GATES == {"x", "cx", "ccx", "swap"}

    def test_unknown_gate_raises(self):
        with pytest.raises(UnknownGateError):
            gate_spec("frobnicate")

    def test_inverse_pairs(self):
        assert inverse_gate_name("t") == "tdg"
        assert inverse_gate_name("tdg") == "t"
        assert inverse_gate_name("s") == "sdg"
        assert inverse_gate_name("cx") == "cx"
        assert inverse_gate_name("ccx") == "ccx"

    def test_measure_has_no_inverse(self):
        with pytest.raises(ValueError):
            inverse_gate_name("measure")

    def test_is_classical(self):
        assert is_classical_gate("ccx")
        assert not is_classical_gate("h")


class TestGate:
    def test_make_gate_valid(self):
        gate = make_gate("cx", (0, 1))
        assert gate.num_qubits == 2
        assert gate.is_classical
        assert gate.is_unitary

    def test_wrong_arity_rejected(self):
        with pytest.raises(UnknownGateError):
            make_gate("cx", (0,))

    def test_duplicate_operands_rejected(self):
        with pytest.raises(UnknownGateError):
            make_gate("cx", (3, 3))

    def test_inverse_gate_acts_on_same_qubits(self):
        gate = make_gate("t", (2,))
        assert gate.inverse() == Gate("tdg", (2,))

    def test_remap(self):
        gate = make_gate("ccx", (0, 1, 2))
        remapped = gate.remap({0: 5, 1: 6, 2: 7})
        assert remapped.qubits == (5, 6, 7)

    def test_str(self):
        assert str(make_gate("cx", (0, 1))) == "cx q0 q1"

    def test_duration_positive(self):
        for name in GATE_SPECS:
            if name == "barrier":
                continue
            assert make_gate(name, tuple(range(GATE_SPECS[name].num_qubits))).duration >= 1
