"""Tests for the analysis helpers (metrics, usage curves, report tables)."""

import pytest

from repro.analysis.liveness import UsageCurve, ascii_plot, usage_curve
from repro.analysis.metrics import (
    PolicyComparison,
    arithmetic_mean,
    average_reduction,
    geometric_mean,
    improvement_factor,
    normalized_aqv,
)
from repro.analysis.report import format_comparison, format_table
from repro.arch.nisq import NISQMachine
from repro.core.compiler import compile_program
from repro.workloads import rd53


@pytest.fixture(scope="module")
def rd53_results():
    program = rd53()
    results = {}
    for policy in ("lazy", "eager", "square"):
        machine = NISQMachine.grid(5, 5)
        results[policy] = compile_program(program, machine, policy=policy)
    return results


class TestMetrics:
    def test_normalized_aqv_baseline_is_one(self, rd53_results):
        normalized = normalized_aqv(rd53_results, baseline="lazy")
        assert normalized["lazy"] == pytest.approx(1.0)
        assert all(value > 0 for value in normalized.values())

    def test_missing_baseline_rejected(self, rd53_results):
        with pytest.raises(KeyError):
            normalized_aqv(rd53_results, baseline="none")

    def test_improvement_factor(self):
        assert improvement_factor(10.0, 5.0) == pytest.approx(2.0)
        assert improvement_factor(10.0, 0.0) == float("inf")

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_policy_comparison(self, rd53_results):
        comparison = PolicyComparison("RD53", rd53_results)
        assert comparison.aqv("lazy") == rd53_results["lazy"].active_quantum_volume
        rows = comparison.table_row()
        assert len(rows) == 3
        assert average_reduction([comparison], "square") > 0


class TestUsageCurves:
    def test_area_equals_aqv(self, rd53_results):
        result = rd53_results["square"]
        curve = usage_curve(result)
        assert curve.area() == result.active_quantum_volume

    def test_peak_and_value_at(self):
        curve = UsageCurve("demo", ((0, 0), (5, 3), (10, 1), (20, 0)))
        assert curve.peak == 3
        assert curve.value_at(7) == 3
        assert curve.value_at(15) == 1
        assert curve.end_time == 20

    def test_resampled_length(self):
        curve = UsageCurve("demo", ((0, 0), (10, 2), (20, 0)))
        samples = curve.resampled(11)
        assert len(samples) == 11

    def test_ascii_plot_contains_legend(self, rd53_results):
        curves = [usage_curve(result, label=policy)
                  for policy, result in rd53_results.items()]
        art = ascii_plot(curves)
        assert "lazy" in art
        assert "square" in art

    def test_ascii_plot_empty(self):
        assert ascii_plot([]) == "(no curves)"


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 22.25}]
        table = format_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_comparison_has_title(self):
        text = format_comparison("My Title", [{"a": 1}])
        assert text.startswith("My Title")
        assert "=" in text
