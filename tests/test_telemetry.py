"""Tests for ``repro.telemetry``: metrics core, timing, tracing, and
the service/cluster instrumentation built on them.

The exposition checks here parse the rendered text with an
*independent* minimal Prometheus parser (below) rather than the
module's own :func:`~repro.telemetry.parse_exposition`, so the renderer
is never validated against itself.
"""

from __future__ import annotations

import re
import threading

import pytest

from repro.api import CompileJob, MachineSpec, Session, SweepSpec
from repro.cluster import ClusterCoordinator, ClusterTopology
from repro.exceptions import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import CompilationService, make_server
from repro.telemetry import (
    DEFAULT_BUCKETS,
    EwmaRate,
    MetricsRegistry,
    PhaseTimer,
    TRACE_HEADER,
    coerce_trace_id,
    format_value,
    half_life_decay,
    merge_expositions,
    new_trace_id,
    valid_trace_id,
)

# ----------------------------------------------------------------------
# Independent exposition parser (deliberately not repro.telemetry's own)
# ----------------------------------------------------------------------

_HELP = re.compile(r"^# HELP (\S+) (.*)$")
_TYPE = re.compile(r"^# TYPE (\S+) (counter|gauge|histogram|untyped)$")
_SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")
_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_ESCAPES = {"\\\\": "\\", '\\"': '"', "\\n": "\n"}


def _unescape(value: str) -> str:
    return re.sub(r'\\(\\|"|n)',
                  lambda match: _ESCAPES["\\" + match.group(1)], value)


def parse(text: str):
    """``{family: {"help", "type", "samples": [(name, labels, value)]}}``
    where ``labels`` is a dict and ``value`` a float."""
    families, current = {}, None
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        match = _HELP.match(line)
        if match:
            current = families.setdefault(
                match.group(1), {"help": "", "type": None, "samples": []})
            current["help"] = match.group(2)
            current["name"] = match.group(1)
            continue
        match = _TYPE.match(line)
        if match:
            current = families.setdefault(
                match.group(1), {"help": "", "type": None, "samples": []})
            current["type"] = match.group(2)
            current["name"] = match.group(1)
            continue
        match = _SAMPLE.match(line)
        assert match, f"unparseable line: {line!r}"
        name, labels, value = match.groups()
        assert current is not None and name.startswith(current["name"]), \
            f"sample {name!r} outside its family block"
        pairs = {key: _unescape(raw)
                 for key, raw in _PAIR.findall(labels or "")}
        number = float("inf") if value == "+Inf" else float(value)
        current["samples"].append((name, pairs, number))
    return families


def histogram_series(family):
    """Group one histogram family's samples by their non-``le`` labels:
    ``{key: {"buckets": [(le, count)], "sum": x, "count": n}}``."""
    series = {}
    for name, labels, value in family["samples"]:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        entry = series.setdefault(key, {"buckets": [], "sum": None,
                                        "count": None})
        if name.endswith("_bucket"):
            entry["buckets"].append((float("inf")
                                     if labels["le"] == "+Inf"
                                     else float(labels["le"]), value))
        elif name.endswith("_sum"):
            entry["sum"] = value
        elif name.endswith("_count"):
            entry["count"] = value
    return series


def check_histogram(family):
    """Bucket monotonicity + _sum/_count consistency for every series."""
    for key, entry in histogram_series(family).items():
        edges = [edge for edge, _ in entry["buckets"]]
        counts = [count for _, count in entry["buckets"]]
        assert edges == sorted(edges), (family["name"], key)
        assert edges[-1] == float("inf"), (family["name"], key)
        assert counts == sorted(counts), \
            f"{family['name']}{key}: buckets not cumulative"
        assert entry["count"] == counts[-1], (family["name"], key)
        assert entry["sum"] is not None


# ----------------------------------------------------------------------
# Metrics core
# ----------------------------------------------------------------------

class TestFormatValue:
    def test_integral_values_render_without_fraction(self):
        assert format_value(3.0) == "3"
        assert format_value(0) == "0"

    def test_floats_round_trip(self):
        assert float(format_value(0.1)) == 0.1
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"


class TestCounter:
    def test_inc_and_negative_rejected(self):
        counter = MetricsRegistry().counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_samples_monotonically(self):
        # Sampling an authoritative counter that restarted lower must
        # clamp, not go backwards (Prometheus rate() would see a reset).
        counter = MetricsRegistry().counter("c_total", "help")
        counter.set(10)
        counter.set(4)
        assert counter.value == 10
        counter.set(12)
        assert counter.value == 12


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 3


class TestHistogram:
    def test_observe_and_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram("h_seconds", "help")
        for value in (0.0007, 0.0007, 0.3, 999.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(0.0007 * 2 + 0.3 + 999.0)
        buckets = dict(histogram.buckets())
        assert buckets[0.001] == 2          # both sub-ms observations
        assert buckets[0.25] == 2           # 0.3 lands above
        assert buckets[0.5] == 3
        assert buckets[float("inf")] == 4   # 999 only in +Inf

    def test_default_edges_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_shape_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", labelnames=("tenant",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("2bad")
        with pytest.raises(ValueError):
            registry.counter("ok", labelnames=("le",))
        with pytest.raises(ValueError):
            registry.counter("ok", labelnames=("bad-label",))

    def test_labels_require_exact_names(self):
        family = MetricsRegistry().counter("x_total",
                                           labelnames=("tenant",))
        with pytest.raises(ValueError):
            family.labels(wrong="a")
        with pytest.raises(ValueError):
            family.inc()  # labeled family has no solo child
        family.labels(tenant="a").inc()
        assert family.labels(tenant="a").value == 1


# ----------------------------------------------------------------------
# Exposition round-trip through the independent parser
# ----------------------------------------------------------------------

def _populated_registry(order="forward"):
    registry = MetricsRegistry()
    names = ["alpha_total", "beta", "gamma_seconds"]
    if order == "reverse":
        names = names[::-1]
    for name in names:
        if name == "alpha_total":
            family = registry.counter(name, "a counter",
                                      labelnames=("tenant",))
            family.labels(tenant="acme").inc(3)
            family.labels(tenant='we"ird\\tenant\n').inc()
        elif name == "beta":
            registry.gauge(name, "a gauge").set(-2.5)
        else:
            family = registry.histogram(name, "a histogram",
                                        labelnames=("phase",))
            for value in (0.002, 0.2, 20.0):
                family.labels(phase="allocation").observe(value)
            family.labels(phase="validate").observe(0.004)
    return registry


class TestExpositionRoundTrip:
    def test_every_family_round_trips(self):
        text = _populated_registry().render()
        families = parse(text)
        assert set(families) == {"alpha_total", "beta", "gamma_seconds"}
        assert families["alpha_total"]["type"] == "counter"
        assert families["beta"]["type"] == "gauge"
        assert families["gamma_seconds"]["type"] == "histogram"
        for family in families.values():
            assert family["help"]

        by_tenant = {labels["tenant"]: value for _, labels, value
                     in families["alpha_total"]["samples"]}
        assert by_tenant == {"acme": 3, 'we"ird\\tenant\n': 1}
        assert families["beta"]["samples"] == [("beta", {}, -2.5)]
        check_histogram(families["gamma_seconds"])
        series = histogram_series(families["gamma_seconds"])
        allocation = series[(("phase", "allocation"),)]
        assert allocation["count"] == 3
        assert allocation["sum"] == pytest.approx(20.202)

    def test_render_is_deterministic_and_order_independent(self):
        first = _populated_registry("forward").render()
        second = _populated_registry("reverse").render()
        assert first == second
        assert first == _populated_registry("forward").render()


# ----------------------------------------------------------------------
# Timing primitives
# ----------------------------------------------------------------------

class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestPhaseTimer:
    def test_exclusive_attribution(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        timer.push("outer")
        clock.advance(1.0)
        timer.push("inner")          # pauses outer
        clock.advance(0.25)
        timer.pop()
        clock.advance(2.0)
        timer.pop()
        assert timer.seconds == pytest.approx({"outer": 3.0,
                                               "inner": 0.25})
        assert timer.depth == 0

    def test_repeated_phase_accumulates(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        for _ in range(2):
            timer.push("phase")
            clock.advance(0.5)
            timer.pop()
        assert timer.seconds == pytest.approx({"phase": 1.0})


class TestEwmaRate:
    def test_frozen_clock_is_exact(self):
        clock = FakeClock()
        rate = EwmaRate(half_life=30.0, clock=clock)
        for _ in range(30):
            rate.mark()
        assert rate.total == 30
        assert rate.rate() == rate.rate()  # no decay without time

    def test_decays_by_half_each_half_life(self):
        clock = FakeClock()
        rate = EwmaRate(half_life=10.0, clock=clock)
        rate.mark(100)
        before = rate.rate()
        clock.advance(10.0)
        assert rate.rate() == pytest.approx(before / 2)
        clock.advance(1000.0)
        assert rate.rate() == pytest.approx(0.0, abs=1e-12)

    def test_half_life_must_be_positive(self):
        with pytest.raises(ValueError):
            EwmaRate(half_life=0)


class TestHalfLifeDecay:
    def test_boundaries(self):
        assert half_life_decay(0.0, 30.0) == 1.0
        assert half_life_decay(-5.0, 30.0) == 1.0
        assert half_life_decay(30.0, 30.0) == pytest.approx(0.5)
        assert half_life_decay(60.0, 30.0) == pytest.approx(0.25)


class TestTraceIds:
    def test_mint_and_validate(self):
        trace = new_trace_id()
        assert valid_trace_id(trace)
        assert new_trace_id() != trace
        assert not valid_trace_id("")
        assert not valid_trace_id("has spaces")
        assert not valid_trace_id(None)
        assert not valid_trace_id("x" * 65)

    def test_coerce_keeps_good_and_replaces_bad(self):
        assert coerce_trace_id("abc-123") == "abc-123"
        assert valid_trace_id(coerce_trace_id(None))
        assert valid_trace_id(coerce_trace_id("bad id!"))


# ----------------------------------------------------------------------
# Compile-phase timing semantics
# ----------------------------------------------------------------------

def _compile_once():
    session = Session()
    job = CompileJob.for_benchmark("RD53", MachineSpec.nisq_autosize())
    return session.run([job])[0].result


class TestPhaseSeconds:
    def test_phases_recorded_and_excluded_from_identity(self):
        import dataclasses

        first = _compile_once()
        second = _compile_once()
        assert set(first.phase_seconds) >= {"validate", "allocation"}
        assert all(value >= 0 for value in first.phase_seconds.values())
        # Phase telemetry never leaks into result identity or
        # serialization (compile_seconds predates phase timing and is
        # normalized out here).
        assert first.phase_seconds != second.phase_seconds
        assert first == dataclasses.replace(
            second, compile_seconds=first.compile_seconds)
        assert "phase_seconds" not in first.to_dict()

    def test_session_observes_fresh_compiles_only(self):
        registry = MetricsRegistry()
        session = Session(metrics=registry)
        job = CompileJob.for_benchmark("RD53", MachineSpec.nisq_autosize())
        session.run([job])
        phase = registry.get("repro_compile_phase_seconds")
        total = registry.get("repro_compile_seconds")
        assert phase is not None and total is not None
        fresh_count = total.count
        assert fresh_count == 1
        session.run([job])  # cache hit: no new observation
        assert total.count == fresh_count


# ----------------------------------------------------------------------
# Service: frozen-clock scrapes, /stats agreement, tracing
# ----------------------------------------------------------------------

MANDATORY_FAMILIES = (
    "repro_uptime_seconds", "repro_requests_total", "repro_jobs_run_total",
    "repro_queue_depth", "repro_queue_capacity", "repro_queue_pushed_total",
    "repro_workers", "repro_workers_busy",
    "repro_cache_hits_total", "repro_cache_misses_total",
    "repro_entries_per_second",
)


class TestServiceMetrics:
    def test_frozen_clock_scrapes_are_byte_identical(self):
        service = CompilationService(session=Session(), workers=1,
                                     clock=lambda: 1000.0)
        try:
            first = service.metrics_text()
            second = service.metrics_text()
        finally:
            service.close()
        assert first == second
        families = parse(first)
        for name in MANDATORY_FAMILIES:
            assert name in families, name

    def test_scrape_does_not_count_as_a_request(self):
        service = CompilationService(session=Session(), workers=1)
        try:
            before = service._collect()["service"]["requests"]
            service.metrics_text()
            after = service._collect()["service"]["requests"]
        finally:
            service.close()
        assert after == before

    def test_stats_and_metrics_agree_after_work(self):
        service = CompilationService(session=Session(), workers=1)
        try:
            job = CompileJob.for_benchmark("RD53",
                                           MachineSpec.nisq_autosize())
            service.compile({"job": job.to_dict()})
            text = service.metrics_text()
            snapshot = service.stats()
        finally:
            service.close()
        families = parse(text)

        def value(name, **labels):
            for _, pairs, number in families[name]["samples"]:
                if pairs == labels:
                    return number
            raise AssertionError((name, labels))

        assert value("repro_jobs_run_total") \
            == snapshot["service"]["jobs_run"]
        assert value("repro_queue_pushed_total") \
            == snapshot["queue"]["queue"]["pushed"]
        assert value("repro_cache_misses_total", tier="memory") \
            == snapshot["session"]["cache_misses"]
        check_histogram(families["repro_compile_phase_seconds"])
        phases = {labels.get("phase") for _, labels, _ in
                  families["repro_compile_phase_seconds"]["samples"]}
        assert "allocation" in phases

    def test_per_tenant_families_labeled(self):
        service = CompilationService(session=Session(), workers=1)
        try:
            job = CompileJob.for_benchmark("RD53",
                                           MachineSpec.nisq_autosize())
            tenant = service.authenticate(None)  # the anonymous tenant
            service.compile({"job": job.to_dict()}, tenant=tenant)
            families = parse(service.metrics_text())
        finally:
            service.close()
        submitted = {labels["tenant"]: value for _, labels, value
                     in families["repro_tenant_submitted_total"]["samples"]}
        completed = {labels["tenant"]: value for _, labels, value
                     in families["repro_tenant_completed_total"]["samples"]}
        assert submitted.get(tenant.name) == 1
        assert completed.get(tenant.name) == 1
        burst = {labels["tenant"] for _, labels, _ in
                 families["repro_tenant_burst_score"]["samples"]}
        assert tenant.name in burst


@pytest.fixture()
def live_server(tmp_path):
    server = make_server("127.0.0.1", 0, cache_dir=str(tmp_path / "cache"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestHTTPMetricsAndTracing:
    def test_metrics_endpoint_serves_exposition(self, live_server):
        _, url = live_server
        client = ServiceClient(url)
        text = client.metrics_text()
        families = parse(text)
        for name in MANDATORY_FAMILIES:
            assert name in families, name

    def test_client_trace_id_lands_on_job_records(self, live_server):
        server, url = live_server
        client = ServiceClient(url)
        assert valid_trace_id(client.trace_id)
        job = CompileJob.for_benchmark("RD53", MachineSpec.nisq_autosize())
        job_id = client.submit_async(job)
        client.wait_for(job_id)
        record = client.poll(job_id)
        assert record["trace_id"] == client.trace_id
        queued = {j.job_id: j for j in server.service.manager.jobs()}
        assert queued[job_id].trace_id == client.trace_id

    def test_response_echoes_trace_header(self, live_server):
        _, url = live_server
        import urllib.request

        request = urllib.request.Request(f"{url}/health",
                                         headers={TRACE_HEADER: "t-123"})
        with urllib.request.urlopen(request) as response:
            assert response.headers[TRACE_HEADER] == "t-123"

    def test_malformed_inbound_trace_is_replaced(self, live_server):
        _, url = live_server
        import urllib.request

        request = urllib.request.Request(
            f"{url}/health", headers={TRACE_HEADER: "bad trace!"})
        with urllib.request.urlopen(request) as response:
            echoed = response.headers[TRACE_HEADER]
        assert echoed != "bad trace!"
        assert valid_trace_id(echoed)


# ----------------------------------------------------------------------
# Cluster: shared trace across shards, fleet metrics merge
# ----------------------------------------------------------------------

class TestClusterTracing:
    def test_one_trace_id_on_every_shard(self, tmp_path):
        servers = [make_server("127.0.0.1", 0,
                               cache_dir=str(tmp_path / f"c{i}"))
                   for i in range(2)]
        threads = []
        urls = []
        try:
            for server in servers:
                thread = threading.Thread(target=server.serve_forever,
                                          daemon=True)
                thread.start()
                threads.append(thread)
                host, port = server.server_address[:2]
                urls.append(f"http://{host}:{port}")
            coordinator = ClusterCoordinator(urls)
            trace = coordinator.topology.get(urls[0]).client.trace_id
            # The topology mints one id for the whole fleet.
            assert coordinator.topology.get(urls[1]).client.trace_id \
                == trace
            spec = SweepSpec(benchmarks=("RD53", "6SYM", "2OF5", "ADDER4"))
            result = coordinator.run(spec)
            assert len(result) == len(spec)
            for server, url in zip(servers, urls):
                jobs = server.service.manager.jobs()
                assert jobs, f"no jobs sharded to {url}"
                assert all(job.trace_id == trace for job in jobs), url
        finally:
            for server in servers:
                server.shutdown()
                server.server_close()
            for thread in threads:
                thread.join(timeout=5)


class _FakeMetricsClient:
    def __init__(self, text):
        self._text = text

    def metrics_text(self):
        if self._text is None:
            raise ServiceError("down")
        return self._text


def _fake_topology(texts):
    clients = {url: _FakeMetricsClient(text)
               for url, text in texts.items()}
    return ClusterTopology(list(texts),
                           client_factory=lambda url: clients[url])


class TestFleetMetrics:
    def test_merge_adds_worker_labels_and_keeps_bucket_order(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "h")
        histogram.observe(0.002)
        text = registry.render()
        merged = merge_expositions({"b": text, "a": text})
        families = parse(merged)
        check_histogram(families["h_seconds"])
        workers = {labels["worker"] for _, labels, _
                   in families["h_seconds"]["samples"]}
        assert workers == {"a", "b"}
        # Deterministic regardless of dict insertion order.
        assert merged == merge_expositions({"a": text, "b": text})

    def test_fleet_metrics_marks_dead_workers(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs").inc(7)
        topology = _fake_topology({"http://up:1": registry.render(),
                                   "http://down:2": None})
        families = parse(topology.fleet_metrics())
        up = {labels["worker"]: value for _, labels, value
              in families["repro_worker_up"]["samples"]}
        assert up == {"http://up:1": 1.0, "http://down:2": 0.0}
        jobs = {labels["worker"]: value for _, labels, value
                in families["jobs_total"]["samples"]}
        assert jobs == {"http://up:1": 7.0}
