"""Tests for repro.telemetry.events: the structured event log.

Unit-level: the frozen LogEvent record, the bounded EventLog ring
(suppression, drops, sinks, filters, span-context correlation), the
rotating JSONL sink and its torn-tail-tolerant reader, and the
waterfall/event interleave determinism.  End to end: a live server's
``GET /logs`` filter combinations, and a fleet merge that dedups on
``(worker, event_id)``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import CompileJob, MachineSpec
from repro.exceptions import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import make_server
from repro.telemetry import (
    EventLog,
    JsonlSink,
    LogEvent,
    SpanRecorder,
    format_event,
    read_events,
    render_waterfall,
)

GRID = MachineSpec.nisq_grid(5, 5)


# ----------------------------------------------------------------------
# LogEvent basics
# ----------------------------------------------------------------------
class TestLogEvent:
    def test_is_frozen(self):
        event = LogEvent("INFO", "hello")
        with pytest.raises(AttributeError):
            event.message = "rewritten"

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            LogEvent("LOUD", "hello")

    def test_round_trips_through_dict(self):
        event = LogEvent("WARNING", "job shed", component="queue",
                         fields={"depth": 3}, trace_id="t" * 16,
                         tenant="alpha", job_id="job-1", ts=12.5)
        back = LogEvent.from_dict(event.to_dict())
        assert back.to_dict() == event.to_dict()
        assert back.fields == {"depth": 3}

    def test_from_dict_ignores_extra_keys(self):
        record = LogEvent("INFO", "x").to_dict()
        record["worker"] = "http://w1"  # fleet-merge tag
        assert LogEvent.from_dict(record).message == "x"

    def test_format_is_greppable(self):
        event = LogEvent("INFO", "job done", component="manager",
                         fields={"kind": "sweep"}, trace_id="a" * 16,
                         tenant="alpha", job_id="job-7", ts=0.0)
        line = format_event(event)
        assert "manager: job done" in line
        assert line.endswith("kind=sweep trace=" + "a" * 16 +
                             " tenant=alpha job=job-7")


# ----------------------------------------------------------------------
# The bounded ring
# ----------------------------------------------------------------------
class TestEventLog:
    def test_ring_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.info(f"event {index}")
        events = log.events()
        assert [event.message for event in events] == \
            ["event 2", "event 3", "event 4"]
        stats = log.stats()
        assert stats["recorded"] == 5 and stats["dropped"] == 2

    def test_level_threshold_suppresses(self):
        log = EventLog(level="WARNING")
        log.debug("quiet")
        log.info("quiet too")
        log.error("loud")
        assert [event.level for event in log.events()] == ["ERROR"]
        assert log.stats()["suppressed"] == 2

    def test_filters_compose(self):
        log = EventLog()
        log.emit("INFO", "a", trace_id="a" * 16, tenant="alpha", ts=1.0)
        log.emit("WARNING", "b", trace_id="a" * 16, tenant="bravo", ts=2.0)
        log.emit("ERROR", "c", trace_id="b" * 16, tenant="alpha", ts=3.0)
        assert [e.message for e in log.events(trace="a" * 16)] == ["a", "b"]
        assert [e.message for e in log.events(tenant="alpha")] == ["a", "c"]
        assert [e.message for e in log.events(level="WARNING")] == ["b", "c"]
        assert [e.message for e in log.events(since=1.0)] == ["b", "c"]
        assert [e.message for e in log.events(limit=1)] == ["c"]
        assert [e.message for e in log.events(trace="a" * 16,
                                              level="WARNING",
                                              tenant="bravo")] == ["b"]

    def test_emit_pulls_correlation_from_active_span(self):
        recorder = SpanRecorder()
        log = EventLog()
        with recorder.span("job.run", labels={"job_id": "job-9",
                                              "tenant": "alpha"}) as span:
            log.info("picked up")
        event = log.events()[0]
        assert event.trace_id == span.trace_id
        assert event.span_id == span.span_id
        assert event.job_id == "job-9"
        assert event.tenant == "alpha"

    def test_explicit_ids_beat_span_context(self):
        recorder = SpanRecorder()
        log = EventLog()
        with recorder.span("op"):
            log.info("x", trace_id="c" * 16, tenant="named")
        event = log.events()[0]
        assert event.trace_id == "c" * 16 and event.tenant == "named"

    def test_sink_errors_are_counted_not_raised(self):
        log = EventLog()

        def bad_sink(event):
            raise RuntimeError("disk on fire")

        log.add_sink(bad_sink)
        log.info("still recorded")
        assert log.stats()["sink_errors"] == 1
        assert [e.message for e in log.events()] == ["still recorded"]

    def test_event_ids_are_unique_and_sortable(self):
        log = EventLog()
        for _ in range(50):
            log.info("x")
        ids = [event.event_id for event in log.events()]
        assert len(set(ids)) == 50
        assert ids == sorted(ids)  # counter suffix keeps emit order


# ----------------------------------------------------------------------
# JSONL sink: rotation + torn-tail replay
# ----------------------------------------------------------------------
class TestJsonlSink:
    def test_writes_version_header_and_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sinks=(JsonlSink(str(path)),))
        log.info("one", component="queue")
        log.warning("two")
        replay = read_events(str(path))
        assert replay["version"] == 1
        assert replay["torn_lines"] == 0
        assert [event["message"] for event in replay["events"]] == \
            ["one", "two"]

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sinks=(JsonlSink(str(path)),))
        log.info("survives")
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"half": "a rec')  # kill -9 mid-append
        replay = read_events(str(path))
        assert replay["torn_lines"] == 1
        assert [event["message"] for event in replay["events"]] == \
            ["survives"]

    def test_rotation_caps_file_size(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path), max_bytes=2048)
        log = EventLog(sinks=(sink,))
        for index in range(100):
            log.info(f"event number {index}", fields={"pad": "x" * 40})
        sink.close()
        rotated = tmp_path / "events.jsonl.1"
        assert rotated.exists()
        assert path.stat().st_size <= 2048 + 1024  # one record of slack
        # Both generations replay, each with its own version header.
        for generation in (path, rotated):
            replay = read_events(str(generation))
            assert replay["version"] == 1 and replay["events"]


# ----------------------------------------------------------------------
# Waterfall interleave
# ----------------------------------------------------------------------
class TestWaterfallInterleave:
    def _spans_and_events(self):
        recorder = SpanRecorder()
        log = EventLog()
        with recorder.span("server.handle") as handler:
            log.info("request accepted")
            with recorder.span("job.run"):
                log.debug("cache consulted", fields={"tier": "memory"})
        records = [span.to_dict() for span in recorder.snapshot()]
        events = [event.to_dict() for event in log.events()]
        return records, events, handler

    def test_events_render_as_markers_inside_the_tree(self):
        records, events, _ = self._spans_and_events()
        text = render_waterfall(records, events=events)
        assert "+ 2 event(s)" in text.splitlines()[0]
        assert "* info: request accepted" in text
        assert "* debug: cache consulted" in text
        marker_line = next(line for line in text.splitlines()
                           if "request accepted" in line)
        assert "*" in marker_line.split("|")[1]

    def test_interleave_is_byte_deterministic(self):
        records, events, _ = self._spans_and_events()
        first = render_waterfall(records, events=events)
        flipped = render_waterfall(list(reversed(records)),
                                   events=list(reversed(events)))
        assert first == flipped

    def test_no_events_is_byte_identical_to_spans_only(self):
        records, _, _ = self._spans_and_events()
        assert render_waterfall(records) \
            == render_waterfall(records, events=[]) \
            == render_waterfall(records, events=None)

    def test_orphan_events_render_at_root(self):
        event = LogEvent("ERROR", "lost", trace_id="d" * 16, ts=0.5)
        text = render_waterfall([], events=[event.to_dict()])
        assert "0 span(s) + 1 event(s)" in text.splitlines()[0]
        assert "* error: lost" in text


# ----------------------------------------------------------------------
# End to end: GET /logs filters over real HTTP
# ----------------------------------------------------------------------
@pytest.fixture()
def live_server(tmp_path):
    server = make_server("127.0.0.1", 0, cache_dir=str(tmp_path / "cache"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestLogsEndpoint:
    def _run_job(self, url):
        client = ServiceClient(url)
        client.wait_for(client.submit_async(
            CompileJob.for_benchmark("RD53", GRID)))
        return client

    def test_trace_filter_correlates_the_job_chain(self, live_server):
        _, url = live_server
        client = self._run_job(url)
        payload = client.logs()
        assert payload["count"] == len(payload["events"])
        components = {event["component"] for event in payload["events"]}
        assert {"http", "queue", "worker", "manager"} <= components
        assert all(event["trace_id"] == client.trace_id
                   for event in payload["events"])

    def test_level_tenant_since_limit_combinations(self, live_server):
        _, url = live_server
        client = self._run_job(url)
        infos = client.logs(level="INFO")["events"]
        assert infos and all(event["level"] in ("INFO", "WARNING", "ERROR")
                             for event in infos)
        anon = client.logs(tenant="anonymous")["events"]
        assert anon and all(event["tenant"] == "anonymous"
                            for event in anon)
        assert client.logs(tenant="nobody")["events"] == []
        everything = client.logs("")["events"]
        cut = everything[2]["ts"]
        later = client.logs("", since=cut)["events"]
        assert later and all(event["ts"] > cut for event in later)
        assert len(client.logs("", limit=2)["events"]) == 2
        combo = client.logs(level="INFO", tenant="anonymous",
                            limit=1)["events"]
        assert len(combo) == 1 and combo[0]["tenant"] == "anonymous"

    def test_events_are_ts_ordered(self, live_server):
        _, url = live_server
        events = self._run_job(url).logs("")["events"]
        stamps = [(event["ts"], event["event_id"]) for event in events]
        assert stamps == sorted(stamps)

    def test_unknown_trace_returns_empty(self, live_server):
        _, url = live_server
        assert ServiceClient(url).logs("f" * 16)["events"] == []

    def test_malformed_trace_and_level_rejected(self, live_server):
        _, url = live_server
        with pytest.raises(ServiceError):
            ServiceClient(url).logs("not a trace id")
        with pytest.raises(ServiceError):
            ServiceClient(url).logs("", level="LOUD")

    def test_logs_requests_emit_no_access_events(self, live_server):
        _, url = live_server
        client = self._run_job(url)
        before = client.logs("")["count"]
        for _ in range(5):
            client.logs("")
            client.metrics_text()
        assert client.logs("")["count"] == before

    def test_log_counters_on_metrics_surface(self, live_server):
        _, url = live_server
        client = self._run_job(url)
        text = client.metrics_text()
        assert 'repro_log_events_total{level="INFO"}' in text
        assert "repro_log_events_dropped_total 0" in text
        stats = client.stats()["events"]
        assert stats["recorded"] > 0 and stats["capacity"] == 4096


# ----------------------------------------------------------------------
# Fleet merge
# ----------------------------------------------------------------------
class _StubLogsClient:
    """A fake worker client returning canned /logs payloads."""

    def __init__(self, records):
        self._records = records

    def logs(self, trace=None, *, tenant=None, level=None, since=None,
             limit=None):
        return {"events": [dict(record) for record in self._records]}


class TestFleetLogs:
    def test_merge_dedups_on_worker_and_event_id(self):
        from repro.cluster import ClusterTopology

        shared = {"event_id": "aa01", "ts": 1.0, "level": "INFO",
                  "message": "same id on both workers"}
        duplicate = [shared, dict(shared)]  # same worker repeats itself
        clients = {
            "http://w1": _StubLogsClient(duplicate),
            "http://w2": _StubLogsClient([dict(shared)]),
        }
        topology = ClusterTopology(
            ["http://w1", "http://w2"],
            client_factory=lambda url: clients[url])
        merged = topology.fleet_logs("")
        # w1's duplicate collapses; w2's identical id survives because
        # the dedup key is (worker, event_id), not event_id alone.
        assert merged["count"] == 2
        workers = sorted(event["worker"] for event in merged["events"])
        assert workers == ["http://w1", "http://w2"]

    def test_unreachable_and_pre_logs_workers_reported(self):
        from repro.cluster import ClusterTopology

        class _Dead:
            def logs(self, *args, **kwargs):
                raise ServiceError("connection refused")

        class _Ancient:
            pass  # no logs() at all

        clients = {"http://dead": _Dead(), "http://old": _Ancient()}
        topology = ClusterTopology(
            ["http://dead", "http://old"],
            client_factory=lambda url: clients[url])
        merged = topology.fleet_logs("")
        assert merged["events"] == []
        assert not merged["workers"]["http://dead"]["reachable"]
        assert not merged["workers"]["http://old"]["reachable"]

    def test_cluster_sweep_logs_merge_from_every_shard(self, tmp_path):
        from repro.cluster import ClusterCoordinator

        servers = []
        for index in range(2):
            server = make_server(
                "127.0.0.1", 0, cache_dir=str(tmp_path / f"cache-{index}"))
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            servers.append((server, thread))
        urls = [f"http://127.0.0.1:{server.server_address[1]}"
                for server, _ in servers]
        try:
            coordinator = ClusterCoordinator(urls)
            result = coordinator.run(
                [CompileJob.for_benchmark(name, GRID, "square")
                 for name in ("RD53", "ADDER4", "2OF5", "6SYM")])
            assert len(result) == 4
            merged = coordinator.collect_logs()
            assert {event["worker"] for event in merged["events"]} \
                == set(urls)
            assert all(event["trace_id"] == coordinator.trace_id
                       for event in merged["events"])
            keys = [(event["worker"], event["event_id"])
                    for event in merged["events"]]
            assert len(keys) == len(set(keys))
            # The coordinator's own narrative is local, not fleet-merged.
            local = coordinator.events.events()
            assert any(event.message == "dispatch round"
                       for event in local)
            assert all(event.trace_id == coordinator.trace_id
                       for event in local)
        finally:
            for server, thread in servers:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)


# ----------------------------------------------------------------------
# The JSONL sink on a live server
# ----------------------------------------------------------------------
class TestServerLogPath:
    def test_log_path_persists_the_job_narrative(self, tmp_path):
        log_path = tmp_path / "server.jsonl"
        server = make_server("127.0.0.1", 0, log_path=str(log_path))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            client = ServiceClient(f"http://{host}:{port}")
            client.wait_for(client.submit_async(
                CompileJob.for_benchmark("RD53", GRID)))
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        replay = read_events(str(log_path))
        messages = {event["message"] for event in replay["events"]}
        assert "worker picked up job" in messages
        assert "job done" in messages
        # Disk records match the wire shape byte for byte.
        with open(log_path, "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
        assert json.loads(lines[0]) == {"events_version": 1}
