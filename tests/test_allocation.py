"""Tests for the allocation policies (LIFO baseline and LAA)."""

import pytest

from repro.exceptions import ResourceExhaustedError
from repro.arch.nisq import NISQMachine
from repro.core.allocation import (
    AllocationRequest,
    LifoAllocation,
    LocalityAwareAllocation,
)
from repro.core.heap import AncillaHeap
from repro.scheduler.asap import GateScheduler


def _environment(grid=3, placed=()):
    machine = NISQMachine.grid(grid, grid)
    scheduler = GateScheduler(machine)
    heap = AncillaHeap()
    counter = [0]
    for virtual, site in placed:
        scheduler.register_qubit(virtual, site)
        counter[0] = max(counter[0], virtual + 1)

    def create_qubit(site: int) -> int:
        virtual = counter[0]
        counter[0] += 1
        scheduler.register_qubit(virtual, site)
        return virtual

    return machine, scheduler, heap, create_qubit


def _request(scheduler, heap, create_qubit, count=1, interacting=(), live=()):
    return AllocationRequest(
        count=count,
        interacting_qubits=tuple(interacting),
        heap=heap,
        scheduler=scheduler,
        live_qubits=tuple(live),
        create_qubit=create_qubit,
        module_name="test",
    )


class TestLifoAllocation:
    def test_pops_heap_first(self):
        _, scheduler, heap, create = _environment(placed=[(0, 0), (1, 1)])
        heap.push(0)
        heap.push(1)
        allocated = LifoAllocation().allocate(_request(scheduler, heap, create, count=2))
        assert allocated == [1, 0]

    def test_creates_new_when_heap_empty(self):
        _, scheduler, heap, create = _environment()
        allocated = LifoAllocation().allocate(_request(scheduler, heap, create, count=3))
        assert allocated == [0, 1, 2]
        assert scheduler.layout.num_placed == 3

    def test_exhaustion_raises(self):
        _, scheduler, heap, create = _environment(grid=1, placed=[(0, 0)])
        with pytest.raises(ResourceExhaustedError):
            LifoAllocation().allocate(_request(scheduler, heap, create, count=1))


class TestLocalityAwareAllocation:
    def test_prefers_close_heap_qubit(self):
        # Qubit 0 sits next to the anchor, qubit 1 far away; both reclaimed.
        _, scheduler, heap, create = _environment(
            placed=[(0, 1), (1, 8), (2, 0)])
        heap.push(0)
        heap.push(1)
        allocated = LocalityAwareAllocation().allocate(
            _request(scheduler, heap, create, count=1, interacting=[2], live=[2]))
        assert allocated == [0]
        assert 1 in heap

    def test_prefers_new_nearby_site_over_distant_heap_qubit(self):
        # The only reclaimed qubit is in the far corner; a fresh site next to
        # the anchor scores better.
        _, scheduler, heap, create = _environment(placed=[(0, 8), (1, 0)])
        heap.push(0)
        allocated = LocalityAwareAllocation().allocate(
            _request(scheduler, heap, create, count=1, interacting=[1], live=[1]))
        assert allocated != [0]
        site = scheduler.layout.site_of(allocated[0])
        assert scheduler.machine.topology.distance(site, 0) <= 2

    def test_serialization_penalty_steers_away_from_busy_qubit(self):
        _, scheduler, heap, create = _environment(
            placed=[(0, 1), (1, 3), (2, 0)])
        heap.push(0)
        heap.push(1)
        # Make qubit 0 (the closer one) very busy far into the future.
        scheduler._qubit_time[0] = 10_000
        policy = LocalityAwareAllocation(serialization_weight=5.0)
        allocated = policy.allocate(
            _request(scheduler, heap, create, count=1, interacting=[2], live=[2]))
        assert allocated == [1]

    def test_allocates_requested_count(self):
        _, scheduler, heap, create = _environment(placed=[(0, 4)])
        allocated = LocalityAwareAllocation().allocate(
            _request(scheduler, heap, create, count=4, interacting=[0], live=[0]))
        assert len(allocated) == 4
        assert len(set(allocated)) == 4

    def test_exhaustion_raises(self):
        _, scheduler, heap, create = _environment(grid=1, placed=[(0, 0)])
        with pytest.raises(ResourceExhaustedError):
            LocalityAwareAllocation().allocate(
                _request(scheduler, heap, create, count=1, interacting=[0]))
