"""Tests for repro.tenancy: principals/auth, fair-share scheduling,
per-tenant quotas, the durable JSONL job store, and crash/restart
recovery — at the queue, manager, and HTTP layers."""

import json
import threading
import time

import pytest

from repro.exceptions import (
    AuthError,
    BackPressureError,
    QuotaExceededError,
    ServiceError,
)
from repro.api import CompileJob, MachineSpec, Session, SweepSpec
from repro.queue import DONE, FAILED, QUEUED, RUNNING, JobManager, \
    JobQueue, QueuedJob
from repro.service import CompilationService, ServiceClient, make_server
from repro.tenancy import (
    ANONYMOUS,
    BurstScoreManager,
    FairShareScheduler,
    JsonlJobStore,
    MemoryJobStore,
    STORE_VERSION,
    Tenant,
    TenantRegistry,
    coerce_registry,
    job_snapshot,
)

GRID = MachineSpec.nisq_grid(5, 5)
RD53 = CompileJob.for_benchmark("RD53", GRID, "square")

ALICE = Tenant("alice", role="standard", api_key="ak-alice")
BOB = Tenant("bob", role="standard", api_key="ak-bob")


class FakeClock:
    """Deterministic monotonic clock for sleep-free fairness tests."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    pytest.fail("condition not reached within timeout")


# ----------------------------------------------------------------------
# Tenants and the registry
# ----------------------------------------------------------------------
class TestTenants:
    def test_tenant_validation(self):
        with pytest.raises(ServiceError):
            Tenant("")
        with pytest.raises(ServiceError):
            Tenant("x", role="vip")
        with pytest.raises(ServiceError):
            Tenant("x", max_queued=0)
        assert Tenant("x", role="admin").role_weight == 4.0

    def test_to_dict_redacts_api_key(self):
        record = ALICE.to_dict()
        assert "api_key" not in record
        assert "ak-alice" not in json.dumps(record)
        assert "ak-alice" not in repr(ALICE)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ServiceError):
            Tenant.from_dict({"name": "x", "quota": 3})

    def test_registry_resolution(self):
        registry = TenantRegistry([ALICE, BOB])
        assert registry.resolve("ak-alice") is ALICE
        assert registry.resolve(None).name == ANONYMOUS
        assert registry.resolve("").name == ANONYMOUS
        with pytest.raises(AuthError):
            registry.resolve("ak-mallory")

    def test_registry_rejects_duplicates_and_keyless(self):
        with pytest.raises(ServiceError):
            TenantRegistry([ALICE, Tenant("alice", api_key="other")])
        with pytest.raises(ServiceError):
            TenantRegistry([ALICE, Tenant("alias", api_key="ak-alice")])
        with pytest.raises(ServiceError):
            TenantRegistry([Tenant("keyless")])

    def test_registry_from_dict_and_file(self, tmp_path):
        payload = {
            "default": {"name": "guest", "role": "batch"},
            "tenants": [{"name": "alice", "role": "admin",
                         "api_key": "ak-alice", "max_queued": 4}],
        }
        registry = TenantRegistry.from_dict(payload)
        assert registry.resolve(None).name == "guest"
        assert registry.resolve("ak-alice").max_queued == 4
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(payload))
        assert coerce_registry(str(path)).resolve("ak-alice").role == "admin"
        with pytest.raises(ServiceError):
            TenantRegistry.from_dict({"tenants": [], "extra": 1})

    def test_registry_from_env_inline_and_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TENANTS", raising=False)
        assert coerce_registry(None).resolve(None).name == ANONYMOUS
        monkeypatch.setenv("REPRO_TENANTS", json.dumps({
            "tenants": [{"name": "envy", "api_key": "ak-env"}]}))
        assert coerce_registry(None).resolve("ak-env").name == "envy"


# ----------------------------------------------------------------------
# Burst scores and the fair-share scheduler (fake clock, no sleeps)
# ----------------------------------------------------------------------
class TestBurstScore:
    def test_half_life_decay(self):
        clock = FakeClock()
        burst = BurstScoreManager(half_life=30.0, clock=clock)
        assert burst.record("alice", 8.0) == 8.0
        clock.advance(30.0)
        assert burst.score("alice") == pytest.approx(4.0)
        clock.advance(60.0)
        assert burst.score("alice") == pytest.approx(1.0)
        assert burst.score("bob") == 0.0

    def test_accumulation_decays_between_records(self):
        clock = FakeClock()
        burst = BurstScoreManager(half_life=10.0, clock=clock)
        burst.record("t", 4.0)
        clock.advance(10.0)
        assert burst.record("t", 1.0) == pytest.approx(3.0)

    def test_fully_decayed_entries_are_pruned(self):
        clock = FakeClock()
        burst = BurstScoreManager(half_life=1.0, clock=clock)
        burst.record("t", 1.0)
        clock.advance(1000.0)
        assert burst.scores() == {}


def tenant_job(job_id, tenant, priority=0, payload=None, deadline=None):
    job = QueuedJob(job_id, "compile", payload or {}, priority=priority)
    job.tenant = tenant
    job.deadline_seconds = deadline
    return job


class TestFairShareScheduler:
    def test_burst_cost_counts_expanded_jobs(self):
        scheduler = FairShareScheduler(clock=FakeClock())
        assert scheduler._cost(QueuedJob("j", "sweep", {
            "jobs": [{}, {}, {}]})) == 3.0
        assert scheduler._cost(QueuedJob("j", "sweep", {
            "spec": {"benchmarks": ["a", "b"],
                     "policies": ["x", "y", "z"]}})) == 6.0
        assert scheduler._cost(QueuedJob("j", "compile", {"job": {}})) == 1.0

    def test_quiet_tenant_overtakes_flood(self):
        clock = FakeClock()
        queue = JobQueue(capacity=64,
                         scheduler=FairShareScheduler(clock=clock))
        for index in range(20):
            queue.push(tenant_job(f"a-{index:03d}", ALICE))
        queue.push(tenant_job("b-000", BOB))  # submitted last
        waits = {}
        order = []
        for _ in range(21):
            job = queue.pop(timeout=0.1)
            order.append(job.job_id)
            waits[job.job_id] = clock.now - job.enqueued_at
            clock.advance(1.0)  # each job "runs" one fake second
        assert order[0] == "b-000"
        alice_waits = sorted(wait for job_id, wait in waits.items()
                             if job_id.startswith("a-"))
        assert waits["b-000"] == 0.0
        assert alice_waits[len(alice_waits) // 2] > 5.0

    def test_flood_penalty_decays_with_half_life(self):
        clock = FakeClock()
        scheduler = FairShareScheduler(half_life=30.0, clock=clock)
        queue = JobQueue(capacity=64, scheduler=scheduler)
        for index in range(20):
            queue.push(tenant_job(f"a-{index:03d}", ALICE))
        # Ten half-lives of silence: the 20-job burst decays to ~0.02
        # and the flood has accrued age credit, so alice's oldest job
        # now outranks bob's fresh (burst-charged) submission.
        clock.advance(300.0)
        queue.push(tenant_job("b-000", BOB))
        assert queue.pop(timeout=0.1).job_id == "a-000"

    def test_priority_still_orders_same_tenant_fresh_jobs(self):
        queue = JobQueue(capacity=8,
                         scheduler=FairShareScheduler(clock=FakeClock()))
        queue.push(tenant_job("low", ALICE, priority=0))
        queue.push(tenant_job("high", ALICE, priority=5))
        queue.push(tenant_job("low-2", ALICE, priority=0))
        assert [queue.pop(0.1).job_id for _ in range(3)] \
            == ["high", "low", "low-2"]

    def test_deadline_urgency_grows_with_age(self):
        clock = FakeClock()
        queue = JobQueue(capacity=8,
                         scheduler=FairShareScheduler(clock=clock))
        queue.push(tenant_job("calm", ALICE))
        queue.push(tenant_job("urgent", ALICE, deadline=10.0))
        clock.advance(10.0)  # urgent has burned its whole budget
        assert queue.pop(0.1).job_id == "urgent"


# ----------------------------------------------------------------------
# Per-tenant queue quotas
# ----------------------------------------------------------------------
class TestTenantQuota:
    def test_quota_rejects_only_the_offender(self):
        capped = Tenant("capped", api_key="ak-c", max_queued=2)
        queue = JobQueue(capacity=8)
        queue.push(tenant_job("c-1", capped))
        queue.push(tenant_job("c-2", capped))
        with pytest.raises(QuotaExceededError) as exc_info:
            queue.push(tenant_job("c-3", capped))
        assert exc_info.value.tenant == "capped"
        assert exc_info.value.depth == 2
        assert exc_info.value.capacity == 2
        # The other tenant (and the anonymous default) are unaffected.
        queue.push(tenant_job("b-1", BOB))
        queue.push(QueuedJob("anon-1", "compile", {}))
        assert queue.stats()["quota_rejected"] == 1
        assert queue.tenant_depths() == {"capped": 2, "bob": 1}

    def test_quota_frees_up_as_jobs_pop_or_cancel(self):
        capped = Tenant("capped", api_key="ak-c", max_queued=1)
        queue = JobQueue(capacity=8)
        queue.push(tenant_job("c-1", capped))
        with pytest.raises(QuotaExceededError):
            queue.push(tenant_job("c-2", capped))
        assert queue.pop(0.1).job_id == "c-1"
        queue.push(tenant_job("c-2", capped))    # depth freed by pop
        assert queue.discard("c-2")
        queue.push(tenant_job("c-3", capped))    # depth freed by discard
        assert queue.tenant_depths() == {"capped": 1}

    def test_quota_is_a_back_pressure_subtype(self):
        # Clients catching BackPressureError keep working unchanged.
        assert issubclass(QuotaExceededError, BackPressureError)


# ----------------------------------------------------------------------
# The durable JSONL job store
# ----------------------------------------------------------------------
def finished_job(job_id="job-000001", response=None):
    job = QueuedJob(job_id, "compile", {"job": {"benchmark": "RD53"}},
                    priority=2)
    job.tenant = ALICE
    job.transition(RUNNING)
    job.add_entry({"ok": True, "index": 0})
    job.response = response or {"ok": True, "value": 42}
    job.transition(DONE)
    return job


class TestJsonlJobStore:
    def test_round_trip_is_byte_identical(self, tmp_path):
        store = JsonlJobStore(tmp_path)
        job = QueuedJob("job-000001", "compile",
                        {"job": {"benchmark": "RD53"}}, priority=2)
        job.tenant = ALICE
        store.record_submit(job)
        job.transition(RUNNING)
        store.record_transition(job)
        store.record_entry(job.job_id, {"ok": True, "index": 0})
        job.add_entry({"ok": True, "index": 0})
        job.response = {"ok": True, "rows": [{"b": 1, "a": 2}]}
        job.transition(DONE)
        store.record_transition(job)
        store.close()

        reopened = JsonlJobStore(tmp_path)
        records = reopened.load()
        assert len(records) == 1
        rebuilt = QueuedJob.from_snapshot(records[0])
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) \
            == json.dumps(job.to_dict(), sort_keys=True)
        assert rebuilt.tenant.name == "alice"
        assert rebuilt.entries == job.entries
        assert rebuilt.wait(0.0)  # terminal event pre-fired

    def test_torn_tail_is_skipped(self, tmp_path):
        store = JsonlJobStore(tmp_path)
        store.record_submit(finished_job())
        store.close()
        wal = tmp_path / "jobs.wal"
        with open(wal, "a", encoding="utf-8") as stream:
            stream.write('{"type": "state", "job_id": "job-0000')  # torn
        reopened = JsonlJobStore(tmp_path)
        assert reopened.torn_lines == 1
        assert len(reopened.load()) == 1

    def test_version_mismatch_refuses_recovery(self, tmp_path):
        wal = tmp_path / "jobs.wal"
        wal.write_text(json.dumps({"type": "header",
                                   "version": STORE_VERSION + 1}) + "\n")
        with pytest.raises(ServiceError):
            JsonlJobStore(tmp_path)

    def test_compaction_bounds_the_wal(self, tmp_path):
        store = JsonlJobStore(tmp_path, compact_threshold=16)
        for index in range(40):
            store.record_submit(finished_job(f"job-{index:06d}"))
        assert store.compactions >= 1
        assert store.stats()["wal_lines"] <= 1 + 40
        store.close()
        assert len(JsonlJobStore(tmp_path).load()) == 40

    def test_forget_keeps_compacted_journal_from_growing(self, tmp_path):
        store = JsonlJobStore(tmp_path)
        for index in range(10):
            store.record_submit(finished_job(f"job-{index:06d}"))
        store.forget([f"job-{index:06d}" for index in range(9)])
        lines_before = store.stats()["wal_lines"]
        store.compact()
        assert store.stats()["wal_lines"] == 2  # header + 1 live job
        assert store.stats()["wal_lines"] < lines_before
        store.close()
        survivors = JsonlJobStore(tmp_path).load()
        assert [record["job_id"] for record in survivors] == ["job-000009"]

    def test_close_freezes_the_journal(self, tmp_path):
        store = JsonlJobStore(tmp_path)
        store.record_submit(finished_job("job-000001"))
        store.close()
        store.record_submit(finished_job("job-000002"))  # dropped
        store.record_transition(finished_job("job-000001"))
        assert len(JsonlJobStore(tmp_path).load()) == 1

    def test_memory_store_loads_empty_and_mirrors(self):
        store = MemoryJobStore()
        store.record_submit(finished_job())
        assert len(store.load()) == 1
        assert MemoryJobStore().load() == []

    def test_snapshot_redacts_api_key(self):
        snapshot = job_snapshot(finished_job())
        assert "ak-alice" not in json.dumps(snapshot)


# ----------------------------------------------------------------------
# Burst-score durability: the penalty survives a crash
# ----------------------------------------------------------------------
class TestBurstPersistence:
    def test_store_round_trips_latest_snapshot(self, tmp_path):
        store = JsonlJobStore(tmp_path)
        store.record_burst({"alice": 5.0}, 123.0)
        store.record_burst({"alice": 7.5, "bob": 1.0}, 456.0)
        store.close()
        assert JsonlJobStore(tmp_path).load_burst() == {
            "scores": {"alice": 7.5, "bob": 1.0}, "at": 456.0}

    def test_store_defaults_to_no_snapshot(self, tmp_path):
        assert JsonlJobStore(tmp_path).load_burst() is None
        assert MemoryJobStore().load_burst() is None

    def test_memory_store_round_trips(self):
        store = MemoryJobStore()
        store.record_burst({"alice": 2.0}, 1.0)
        assert store.load_burst() == {"scores": {"alice": 2.0}, "at": 1.0}

    def test_compaction_re_emits_one_snapshot(self, tmp_path):
        store = JsonlJobStore(tmp_path)
        store.record_submit(finished_job())
        for stamp in range(20):
            store.record_burst({"alice": float(stamp)}, float(stamp))
        store.compact()
        # header + one job + exactly one burst line survive.
        assert store.stats()["wal_lines"] == 3
        store.close()
        reopened = JsonlJobStore(tmp_path)
        assert reopened.load_burst() == {"scores": {"alice": 19.0},
                                         "at": 19.0}

    def test_restore_decays_by_downtime(self):
        clock = FakeClock(100.0)
        burst = BurstScoreManager(half_life=30.0, clock=clock)
        restored = burst.restore({"alice": 8.0}, 30.0)
        assert restored == {"alice": pytest.approx(4.0)}
        assert burst.score("alice") == pytest.approx(4.0)

    def test_restore_drops_fully_decayed_tenants(self):
        burst = BurstScoreManager(half_life=1.0, clock=FakeClock())
        assert burst.restore({"alice": 1.0}, 1000.0) == {}
        assert burst.score("alice") == 0.0

    def test_submit_journals_the_burst_table(self, tmp_path):
        gate = threading.Event()
        gate.set()
        store = JsonlJobStore(tmp_path)
        manager = gated_manager(store, gate,
                                scheduler=FairShareScheduler())
        try:
            manager.submit("compile", {"n": 1}, tenant=ALICE)
            snapshot = store.load_burst()
            assert snapshot is not None
            assert snapshot["scores"]["alice"] > 0
            assert snapshot["at"] > 0
        finally:
            manager.close()

    def test_flood_penalty_survives_crash(self, tmp_path):
        gate = threading.Event()
        manager = gated_manager(JsonlJobStore(tmp_path), gate,
                                scheduler=FairShareScheduler())
        for n in range(8):
            manager.submit("compile", {"n": n}, tenant=ALICE)
        flood_score = manager.scheduler.burst.score("alice")
        assert flood_score > 0
        manager.crash()
        gate.set()

        revived_scheduler = FairShareScheduler()
        open_gate = threading.Event()
        open_gate.set()
        revived = gated_manager(JsonlJobStore(tmp_path), open_gate,
                                scheduler=revived_scheduler)
        try:
            restored = revived_scheduler.burst.score("alice")
            # The penalty came back from the journal, decayed only by
            # the (tiny) downtime — a crash is not a reset button.
            assert 0 < restored <= flood_score
        finally:
            revived.close()


# ----------------------------------------------------------------------
# Manager recovery: crash, restart, resume
# ----------------------------------------------------------------------
def gated_manager(store, gate, **kwargs):
    """A single-worker manager whose runner parks on ``gate``."""

    def runner(job):
        if not gate.wait(10):
            raise ServiceError("test gate never opened")
        return {"ok": True, "echo": job.payload.get("n")}

    return JobManager(runner, workers=1, queue_size=16, store=store,
                      **kwargs)


class TestManagerRecovery:
    def test_queued_jobs_resume_after_crash(self, tmp_path):
        gate = threading.Event()
        manager = gated_manager(JsonlJobStore(tmp_path), gate)
        jobs = [manager.submit("compile", {"n": n}, tenant=ALICE)
                for n in range(3)]
        wait_until(lambda: jobs[0].state == RUNNING)
        manager.crash()
        gate.set()  # the "dead" worker finishes, but the journal is frozen

        open_gate = threading.Event()
        open_gate.set()
        revived = gated_manager(JsonlJobStore(tmp_path), open_gate)
        try:
            assert revived.resumed_queued == 2
            assert revived.requeued_running == 1
            for job in jobs:
                record = revived.wait(job.job_id, timeout=5)
                assert record.state == DONE
                assert record.response["echo"] == job.payload["n"]
            # The orphaned RUNNING job carries its requeue count.
            assert revived.get(jobs[0].job_id).retries == 1
            # Fresh ids continue past every recovered id.
            assert revived.submit("compile", {"n": 9}).job_id \
                == "job-000004"
            assert revived.stats()["recovery"]["resumed_queued"] == 2
        finally:
            revived.close()

    def test_running_requeues_exactly_once_then_fails(self, tmp_path):
        gate = threading.Event()
        manager = gated_manager(JsonlJobStore(tmp_path), gate)
        job = manager.submit("compile", {"n": 1})
        wait_until(lambda: job.state == RUNNING)
        manager.crash()

        # First restart: requeued (retries=1) and orphaned again.
        gate2 = threading.Event()
        second = gated_manager(JsonlJobStore(tmp_path), gate2)
        requeued = second.get(job.job_id)
        wait_until(lambda: requeued.state == RUNNING)
        assert requeued.retries == 1
        second.crash()

        # Second restart: past max_requeues -> FAILED, never requeued.
        third = gated_manager(JsonlJobStore(tmp_path), threading.Event())
        try:
            final = third.get(job.job_id)
            assert final.state == FAILED
            assert "orphaned" in final.error["message"]
            assert third.orphans_failed == 1
            assert third.requeued_running == 0
        finally:
            third.close()

    def test_done_results_survive_clean_restart_byte_identically(
            self, tmp_path):
        gate = threading.Event()
        gate.set()
        manager = gated_manager(JsonlJobStore(tmp_path), gate)
        job = manager.submit("compile", {"n": 7}, tenant=BOB)
        manager.wait(job.job_id, timeout=5)
        before = json.dumps(manager.status(job.job_id), sort_keys=True)
        manager.close()

        revived = gated_manager(JsonlJobStore(tmp_path), gate)
        try:
            assert revived.recovered_terminal == 1
            after = json.dumps(revived.status(job.job_id), sort_keys=True)
            assert after == before
            assert revived.result(job.job_id) == {"ok": True, "echo": 7}
        finally:
            revived.close()

    def test_entry_cursor_survives_restart(self, tmp_path):
        box = {}

        def runner(job):
            for index in range(3):
                box["manager"].record_entry(job, {"index": index})
            return {"ok": True}

        manager = JobManager(runner, workers=1, queue_size=4,
                             store=JsonlJobStore(tmp_path))
        box["manager"] = manager
        job = manager.submit("compile", {})
        manager.wait(job.job_id, timeout=5)
        manager.close()

        revived = JobManager(runner, workers=1, queue_size=4,
                             store=JsonlJobStore(tmp_path))
        try:
            payload = revived.entries_since(job.job_id, since=1, timeout=0)
            assert payload["state"] == DONE
            assert [entry["index"] for entry in payload["entries"]] == [1, 2]
            assert payload["total"] == 3
        finally:
            revived.close()

    def test_retention_gc_forgets_from_the_store(self, tmp_path):
        gate = threading.Event()
        gate.set()
        store = JsonlJobStore(tmp_path)
        manager = gated_manager(store, gate, retention=2)
        for n in range(5):
            job = manager.submit("compile", {"n": n})
            manager.wait(job.job_id, timeout=5)
        manager.gc()
        manager.close()
        # Only the retained tail survives the restart.
        assert len(JsonlJobStore(tmp_path).load()) <= 3

    def test_cancelled_on_shutdown_is_journaled(self, tmp_path):
        gate = threading.Event()
        manager = gated_manager(JsonlJobStore(tmp_path), gate)
        running = manager.submit("compile", {"n": 0})
        wait_until(lambda: running.state == RUNNING)
        queued = manager.submit("compile", {"n": 1})
        gate.set()
        manager.close(drain=False)  # graceful: drops + cancels the backlog
        revived = gated_manager(JsonlJobStore(tmp_path), gate)
        try:
            assert revived.get(queued.job_id).state == "CANCELLED"
            assert revived.resumed_queued == 0
        finally:
            revived.close()


# ----------------------------------------------------------------------
# HTTP integration: auth, quotas, per-tenant stats, restart-resume
# ----------------------------------------------------------------------
REGISTRY = {
    "tenants": [
        {"name": "alice", "role": "standard", "api_key": "ak-alice",
         "max_queued": 1},
        {"name": "bob", "role": "standard", "api_key": "ak-bob"},
    ],
}

SLOW_SPEC = (SweepSpec()
             .with_benchmarks("RD53")
             .with_machines(GRID)
             .with_policies("lazy", "square"))


def slow_down_sweeps(service, seconds):
    original = service.manager._runner

    def slow_runner(job):
        if job.kind == "sweep":
            time.sleep(seconds)
        return original(job)

    service.manager._runner = slow_runner
    return service


@pytest.fixture()
def tenant_server(tmp_path):
    """workers=1 server with two registered tenants and a job journal."""
    service = slow_down_sweeps(
        CompilationService(session=Session(), workers=1, queue_size=8,
                           tenants=REGISTRY, store_dir=str(tmp_path)),
        0.8)
    server = make_server("127.0.0.1", 0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestHTTPTenancy:
    def test_unknown_key_is_401(self, tenant_server):
        mallory = ServiceClient(tenant_server, api_key="ak-mallory")
        with pytest.raises(AuthError) as exc_info:
            mallory.health()
        assert exc_info.value.http_status == 401

    def test_keyless_clients_stay_fully_functional(self, tenant_server):
        anonymous = ServiceClient(tenant_server)
        assert anonymous.health()["status"] == "ok"
        ticket = anonymous.submit_async(RD53)
        record = anonymous.wait_for(ticket, timeout=60)
        assert record["state"] == "DONE"
        assert record["tenant"] == ANONYMOUS

    def test_quota_429_hits_only_the_flooding_tenant(self, tenant_server):
        alice = ServiceClient(tenant_server, api_key="ak-alice")
        bob = ServiceClient(tenant_server, api_key="ak-bob")
        running = alice.submit_async(SLOW_SPEC)  # occupies the worker
        wait_until(lambda: alice.poll(running)["state"] == "RUNNING")
        alice.submit_async(SLOW_SPEC)            # fills alice's quota of 1
        with pytest.raises(QuotaExceededError) as exc_info:
            alice.submit_async(SLOW_SPEC)        # 429, alice only
        assert exc_info.value.http_status == 429
        assert exc_info.value.tenant == "alice"
        assert exc_info.value.capacity == 1
        bob_ticket = bob.submit_async(RD53)      # bob is unaffected
        assert bob.wait_for(bob_ticket, timeout=60)["state"] == "DONE"

    def test_stats_report_per_tenant_activity(self, tenant_server):
        alice = ServiceClient(tenant_server, api_key="ak-alice")
        ticket = alice.submit_async(RD53)
        alice.wait_for(ticket, timeout=60)
        tenants = alice.stats()["tenants"]
        assert tenants["alice"]["submitted"] >= 1
        assert tenants["alice"]["completed"] >= 1
        assert "burst_score" in tenants["alice"]

    def test_restart_on_same_store_dir_serves_old_results(self, tmp_path):
        def start():
            server = make_server("127.0.0.1", 0, tenants=REGISTRY,
                                 store_dir=str(tmp_path))
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            host, port = server.server_address[:2]
            return server, thread, f"http://{host}:{port}"

        server, thread, url = start()
        alice = ServiceClient(url, api_key="ak-alice")
        ticket = alice.submit_async(RD53)
        before = alice.wait_for(ticket, timeout=60)
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

        server, thread, url = start()
        try:
            after = ServiceClient(url, api_key="ak-alice").poll(ticket)
            assert json.dumps(after, sort_keys=True) \
                == json.dumps(before, sort_keys=True)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
