"""Property-based tests on cross-cutting invariants.

These use hypothesis to generate random modular programs and check the
invariants the whole system relies on:

* every policy produces a circuit that computes the same function on the
  entry module's parameters (uncomputation never changes program output);
* the Eager policy leaves every non-top-level ancilla clean;
* AQV equals the area under the usage curve and never exceeds
  peak-live-qubits x circuit-depth.
"""

from __future__ import annotations

import itertools
import random
from typing import List

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.nisq import NISQMachine
from repro.core.compiler import compile_program
from repro.ir.classical_sim import simulate_classical
from repro.ir.flatten import flatten_program
from repro.ir.program import Program, QModule


def _random_leaf(rng: random.Random, index: int) -> QModule:
    """A random gate-only module with 2 inputs, 1 output and 1-2 ancillas.

    The Compute block follows the Bennett discipline the paper's
    Compute-Store-Uncompute construct assumes: it only *writes* to the
    module's own ancillas (inputs are used as controls), so deferring the
    uncomputation never changes values the caller later reads.
    """
    num_ancilla = rng.randint(1, 2)
    module = QModule(f"leaf{index}", num_inputs=2, num_outputs=1,
                     num_ancilla=num_ancilla)
    controls: List = list(module.inputs) + list(module.ancillas)
    targets: List = list(module.ancillas)
    for _ in range(rng.randint(2, 5)):
        kind = rng.random()
        target = rng.choice(targets)
        if kind < 0.3:
            module.x(target)
        elif kind < 0.7:
            control = rng.choice([q for q in controls if q is not target])
            module.cx(control, target)
        else:
            options = [q for q in controls if q is not target]
            if len(options) >= 2:
                a, b = rng.sample(options, 2)
                module.ccx(a, b, target)
    module.begin_store()
    module.cx(module.ancillas[0], module.outputs[0])
    return module


def _random_program(seed: int) -> Program:
    """A random 2-3 level modular program with 3 entry inputs, 2 outputs."""
    rng = random.Random(seed)
    leaves = [_random_leaf(rng, i) for i in range(rng.randint(1, 2))]
    middle = QModule("middle", num_inputs=2, num_outputs=1, num_ancilla=2)
    mid_pool = list(middle.inputs) + list(middle.ancillas)
    for index, leaf in enumerate(leaves):
        args = rng.sample(mid_pool, 2) + [middle.ancillas[index % 2]]
        if len(set(args)) == 3:
            middle.call(leaf, *args)
    middle.cx(middle.inputs[0], middle.ancillas[0])
    middle.begin_store()
    middle.cx(middle.ancillas[0], middle.outputs[0])

    top = QModule("top", num_inputs=3, num_outputs=2, num_ancilla=1)
    top.call(middle, top.inputs[0], top.inputs[1], top.ancillas[0])
    top.cx(top.inputs[2], top.ancillas[0])
    top.begin_store()
    top.cx(top.ancillas[0], top.outputs[0])
    top.cx(top.inputs[2], top.outputs[1])
    return Program(top, name=f"random-{seed}")


def _reference_table(program: Program, width: int):
    """Expected values of the entry module's output parameters."""
    flat = flatten_program(program)
    num_outputs = len(program.entry.outputs)
    output_wires = flat.param_wires[width - num_outputs:]
    table = {}
    for bits in itertools.product([0, 1], repeat=width):
        out = simulate_classical(flat.circuit, dict(zip(flat.param_wires, bits)))
        table[bits] = tuple(out[w] for w in output_wires)
    return table


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_policies_preserve_program_semantics(seed):
    """Compiled output parameters are policy-independent.

    Garbage may differ (that is the whole point of deferring), but the
    values the Store blocks write onto the entry module's outputs must be
    identical under every policy.
    """
    program = _random_program(seed)
    width = program.entry.num_params
    num_outputs = len(program.entry.outputs)
    output_wires = range(width - num_outputs, width)
    reference = _reference_table(program, width)
    for policy in ("eager", "lazy", "square"):
        machine = NISQMachine.grid(4, 4)
        result = compile_program(program, machine, policy=policy,
                                 record_schedule=True)
        circuit = result.to_circuit()
        for bits, expected in reference.items():
            out = simulate_classical(circuit, dict(zip(range(width), bits)))
            assert tuple(out[w] for w in output_wires) == expected


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_eager_cleans_every_child_ancilla(seed):
    """Under Eager every reclaimed ancilla really is back in |0>.

    The only qubits allowed to end dirty are the entry module's own
    ancillas (the top level never uncomputes).
    """
    program = _random_program(seed)
    width = program.entry.num_params
    machine = NISQMachine.grid(4, 4)
    result = compile_program(program, machine, policy="eager",
                             record_schedule=True)
    circuit = result.to_circuit()
    top_ancilla_count = program.entry.num_ancilla
    # Virtual ids: params first, then the entry ancillas, then everything else.
    allowed_dirty = set(range(width, width + top_ancilla_count))
    for bits in itertools.product([0, 1], repeat=width):
        out = simulate_classical(circuit, dict(zip(range(width), bits)))
        dirty = {w for w in range(width, circuit.num_qubits) if out[w]}
        assert dirty <= allowed_dirty


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000),
       st.sampled_from(["eager", "lazy", "square", "square-laa"]))
def test_aqv_bounds(seed, policy):
    """AQV equals the usage-curve area and is bounded by qubits x depth."""
    program = _random_program(seed)
    machine = NISQMachine.grid(4, 4)
    result = compile_program(program, machine, policy=policy)
    series = result.usage_series()
    area = sum(live * (t1 - t0)
               for (t0, live), (t1, _) in zip(series, series[1:]))
    assert area == result.active_quantum_volume
    assert result.active_quantum_volume <= (
        result.peak_live_qubits * result.circuit_depth
    )
    assert result.peak_live_qubits <= result.num_qubits_used
