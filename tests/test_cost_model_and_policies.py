"""Tests for the ancilla heap, CER cost model and reclamation policies."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CompilationError
from repro.core.cost_model import (
    CommunicationEstimator,
    reclamation_costs,
    reservation_cost,
    uncompute_cost,
)
from repro.core.heap import AncillaHeap
from repro.core.reclamation import (
    CostEffectiveReclamation,
    EagerReclamation,
    LazyReclamation,
    ReclamationRequest,
)


class TestAncillaHeap:
    def test_lifo_order(self):
        heap = AncillaHeap()
        heap.push(1)
        heap.push(2)
        assert heap.pop() == 2
        assert heap.pop() == 1

    def test_membership_and_len(self):
        heap = AncillaHeap()
        heap.push(5)
        assert 5 in heap
        assert len(heap) == 1
        assert not heap.is_empty()

    def test_double_push_rejected(self):
        heap = AncillaHeap()
        heap.push(1)
        with pytest.raises(CompilationError):
            heap.push(1)

    def test_pop_empty_rejected(self):
        with pytest.raises(CompilationError):
            AncillaHeap().pop()

    def test_remove_specific(self):
        heap = AncillaHeap()
        heap.push(1)
        heap.push(2)
        heap.push(3)
        heap.remove(2)
        assert heap.qubits == (1, 3)
        with pytest.raises(CompilationError):
            heap.remove(2)

    def test_statistics(self):
        heap = AncillaHeap()
        heap.push(1)
        heap.pop()
        assert heap.total_pushes == 1
        assert heap.total_pops == 1


class TestCostModel:
    def test_equation1_level_doubling(self):
        shallow = uncompute_cost(num_active=10, uncompute_gates=50,
                                 comm_factor=2.0, level=1)
        deep = uncompute_cost(num_active=10, uncompute_gates=50,
                              comm_factor=2.0, level=2)
        assert deep == pytest.approx(2 * shallow)

    def test_equation2_area_expansion(self):
        constrained = reservation_cost(num_ancilla=10, gates_to_parent_uncompute=100,
                                       comm_factor=1.0, num_active=10,
                                       locality_constrained=True)
        unconstrained = reservation_cost(num_ancilla=10, gates_to_parent_uncompute=100,
                                         comm_factor=1.0, num_active=10,
                                         locality_constrained=False)
        assert constrained == pytest.approx(unconstrained * math.sqrt(2.0))

    def test_comm_factor_clamped_to_one(self):
        assert uncompute_cost(1, 10, 0.0, 0) == 10
        assert reservation_cost(1, 10, 0.0, 1, locality_constrained=False) == 10

    def test_reclamation_costs_decision(self):
        costs = reclamation_costs(num_active=4, num_ancilla=2, uncompute_gates=10,
                                  gates_to_parent_uncompute=1000, comm_factor=1.0,
                                  level=1)
        assert costs.should_reclaim
        costs = reclamation_costs(num_active=4, num_ancilla=1, uncompute_gates=1000,
                                  gates_to_parent_uncompute=5, comm_factor=1.0,
                                  level=4)
        assert not costs.should_reclaim

    @settings(max_examples=50)
    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=1000),
        st.floats(min_value=0.0, max_value=20.0),
        st.integers(min_value=0, max_value=12),
    )
    def test_costs_are_non_negative_and_monotone_in_gates(
            self, active, gates, comm, level):
        lower = uncompute_cost(active, gates, comm, level)
        higher = uncompute_cost(active, gates + 10, comm, level)
        assert 0 <= lower <= higher

    def test_communication_estimator_global_average(self):
        estimator = CommunicationEstimator(minimum_samples=4)
        assert estimator.global_average() == 1.0
        estimator.observe(10.0, gates=2)
        assert estimator.global_average() == pytest.approx(5.0)

    def test_communication_estimator_prefers_local_history(self):
        estimator = CommunicationEstimator(minimum_samples=2)
        estimator.observe(100.0, gates=10)
        assert estimator.estimate(local_cost=4.0, local_gates=4) == pytest.approx(1.0)
        assert estimator.estimate(local_cost=0.0, local_gates=0) == pytest.approx(10.0)


def _request(**overrides) -> ReclamationRequest:
    base = dict(
        module_name="m", level=1, num_active=10, num_ancilla=2,
        uncompute_gates=20, gates_to_parent_uncompute=100, comm_factor=1.5,
        locality_constrained=True, is_top_level=False,
    )
    base.update(overrides)
    return ReclamationRequest(**base)


class TestReclamationPolicies:
    def test_eager_always_reclaims(self):
        assert EagerReclamation().decide(_request()).reclaim
        assert EagerReclamation().decide(_request(level=9)).reclaim

    def test_lazy_never_reclaims_below_top(self):
        assert not LazyReclamation().decide(_request()).reclaim

    def test_top_level_is_never_uncomputed(self):
        for policy in (EagerReclamation(), LazyReclamation(),
                       CostEffectiveReclamation()):
            assert not policy.decide(_request(is_top_level=True)).reclaim

    def test_cer_reclaims_when_cheap(self):
        decision = CostEffectiveReclamation().decide(_request(
            uncompute_gates=5, gates_to_parent_uncompute=10000, level=1))
        assert decision.reclaim
        assert decision.costs is not None

    def test_cer_defers_when_uncompute_expensive(self):
        decision = CostEffectiveReclamation().decide(_request(
            uncompute_gates=5000, gates_to_parent_uncompute=5, level=6))
        assert not decision.reclaim

    def test_cer_skips_empty_frees(self):
        decision = CostEffectiveReclamation().decide(_request(num_ancilla=0))
        assert not decision.reclaim
        assert decision.costs is None
