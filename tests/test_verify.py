"""Tests for :mod:`repro.verify`: the static compilation-safety verifier.

Three layers of evidence that the verifier is trustworthy:

* **Clean on real artifacts** — a registry cross-section compiled under
  all three reclamation policies verifies with zero findings and zero
  skipped rules (full coverage, no false positives).
* **Sensitive to corruption** — every registered mutation class injected
  into known-good results is caught with its *designated* rule id (no
  false negatives for the bug classes the verifier exists to catch).
* **Consistent with simulation** — on small reversible workloads the
  bit-level ancilla-restoration check (:mod:`repro.ir.validate`) and the
  simulation-free static verifier agree that the artifacts are sound.

Plus the wiring: ``Session(verify=True)`` post-pass + memoization, the
``verify`` CLI subcommand's exit code, the server's ``verify=`` flag
round-tripping reports over the wire, and report determinism.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import Session, SweepSpec
from repro.exceptions import ValidationError
from repro.ir.validate import verify_ancilla_restored
from repro.service.client import ServiceClient
from repro.service.server import make_server
from repro.verify import (
    MUTATIONS,
    RULES,
    Diagnostic,
    VerificationReport,
    apply_mutation,
    topology_for_machine_name,
    verify_result,
)
from repro.workloads.registry import load_scaled_benchmark

#: Registry cross-section used for the clean/mutation fixtures: small
#: oracles plus one mid-size adder, on the default (swap-routed,
#: non-fully-connected) autosized NISQ grid so every rule is live.
BENCHMARKS = ("RD53", "2OF5", "ADDER4")
POLICIES = ("eager", "lazy", "square")


@pytest.fixture(scope="module")
def compiled():
    """Known-good results with recorded schedules, one per policy."""
    spec = (SweepSpec()
            .with_benchmarks(*BENCHMARKS)
            .with_policies(*POLICIES)
            .with_scales("quick")
            .with_config(record_schedule=True))
    sweep = Session().run(spec)
    assert sweep.ok, sweep.failures()
    return sweep.results()


# ----------------------------------------------------------------------
# Clean on real artifacts
# ----------------------------------------------------------------------
def test_registry_sample_verifies_clean(compiled):
    for result in compiled:
        report = verify_result(result)
        assert report.findings == (), report.summary()
        assert report.ok
        assert report.skipped_rules == ()
        assert report.checked_gates == len(result.scheduled_gates)
        assert report.checked_segments == len(result.usage_segments)


def test_skipped_rules_without_recorded_schedule():
    session = Session()
    result = session.compile("RD53", policy="square")
    assert not result.scheduled_gates
    report = verify_result(result)
    assert report.findings == ()
    skipped = {rule for rule, _reason in report.skipped_rules}
    assert {"RV001", "RV002", "RV003"} <= skipped
    for _rule, reason in report.skipped_rules:
        assert "record_schedule" in reason


# ----------------------------------------------------------------------
# Sensitive to corruption: the mutation-injection differential harness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutation_caught_with_designated_rule(compiled, name):
    mutation = MUTATIONS[name]
    applied = 0
    for result in compiled:
        corrupted = apply_mutation(result, name)
        if corrupted is None:
            continue
        applied += 1
        report = verify_result(corrupted)
        assert mutation.rule in report.rules_violated(), (
            f"{name} on {result.program_name}/{result.policy_name}: "
            f"expected {mutation.rule}, got {report.rules_violated()}")
        assert not report.ok
    assert applied, f"mutation {name} applied to no compiled result"


def test_mutations_cover_at_least_six_rules():
    """The harness spans every corruption class the ISSUE names."""
    assert {mutation.rule for mutation in MUTATIONS.values()} == set(RULES)
    assert len(MUTATIONS) >= 6


# ----------------------------------------------------------------------
# Consistent with bit-level simulation on small reversible workloads
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", BENCHMARKS)
def test_differential_against_ancilla_simulation(compiled, workload):
    """Static verifier and classical simulation agree on soundness.

    The simulation proves the *program* restores its ancillas; the
    verifier proves the *compiled artifact* is self-consistent.  On
    workloads small enough to simulate, both must pass.
    """
    program = load_scaled_benchmark(workload, "quick")
    simulated = 0
    for module in program.modules():
        try:
            verify_ancilla_restored(module, trials=4, exhaustive_limit=6)
        except ValidationError as error:
            if "non-classical" in str(error):
                continue
            raise
        simulated += 1
    assert simulated, f"no simulatable module in {workload}"
    for result in compiled:
        if result.program_name == program.name:
            assert verify_result(result).ok


# ----------------------------------------------------------------------
# Reports: determinism, serialization, topology parsing
# ----------------------------------------------------------------------
def test_report_is_deterministic_and_roundtrips(compiled):
    result = compiled[0]
    first = verify_result(result)
    second = verify_result(result)
    # verify_seconds differs between passes but is excluded from both
    # equality and serialization.
    assert first == second
    assert first.to_json() == second.to_json()
    rebuilt = VerificationReport.from_dict(first.to_dict())
    assert rebuilt == first
    assert rebuilt.to_json() == first.to_json()


def test_diagnostic_roundtrip_and_rendering():
    diagnostic = Diagnostic(rule="RV002", severity="error",
                            message="two qubits on one site",
                            instruction=7, qubit=3, site=12, time=40)
    assert Diagnostic.from_dict(diagnostic.to_dict()) == diagnostic
    text = diagnostic.describe()
    assert "RV002" in text and "instr 7" in text and "site 12" in text


def test_topology_for_machine_name():
    grid = topology_for_machine_name("nisq-grid-3x4")
    assert grid is not None
    topology, communication = grid
    assert topology.num_sites == 12
    assert communication == "swap"
    ft = topology_for_machine_name("ft-grid-2x2")
    assert ft is not None and ft[1] == "braid"
    ideal = topology_for_machine_name("ideal-16")
    assert ideal is not None and ideal[1] == "none"
    full = topology_for_machine_name("nisq-full-5")
    assert full is not None and full[0].is_fully_connected
    assert topology_for_machine_name("mystery-box") is None


# ----------------------------------------------------------------------
# Session wiring
# ----------------------------------------------------------------------
def test_session_attaches_and_memoizes_reports():
    session = Session(verify=True)
    spec = (SweepSpec().with_benchmarks("RD53")
            .with_policies("eager", "square").with_scales("quick")
            .with_config(record_schedule=True))
    sweep = session.run(spec)
    assert all(entry.verification is not None for entry in sweep)
    assert sweep.verification_failures() == []
    assert session.verified_results == len(sweep)
    assert session.stats()["verify"] == {
        "verified_results": len(sweep), "findings": 0}
    # Cache hits re-attach the memoized report instead of re-verifying.
    again = session.run(spec)
    assert session.verified_results == len(sweep)
    assert again[0].verification is sweep[0].verification
    # Verified sweeps grow a verify column; plain sweeps must not (the
    # cluster CI compares plain exports byte-for-byte).
    assert all(row["verify"] == "ok" for row in sweep.rows())
    plain = Session().run(spec)
    assert all("verify" not in row for row in plain.rows())


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
def test_cli_verify_clean_exit(capsys):
    from repro.experiments.__main__ import main

    code = main(["verify", "RD53", "--policies", "square",
                 "--scale", "quick"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Verify:" in out and "0 finding(s)" in out


def test_cli_verify_nonzero_exit_on_findings(capsys, monkeypatch):
    from repro.experiments.__main__ import main

    def fake_verify(result, **kwargs):
        return VerificationReport(
            program_name=result.program_name,
            machine_name=result.machine_name,
            policy_name=result.policy_name,
            findings=(Diagnostic(rule="RV004", severity="error",
                                 message="injected for the exit test"),),
        )

    monkeypatch.setattr("repro.verify.verify_result", fake_verify)
    code = main(["verify", "RD53", "--policies", "square",
                 "--scale", "quick"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RV004" in out


def test_cli_verify_flag_only_applies_to_serve():
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["sweep", "RD53", "--verify"])


# ----------------------------------------------------------------------
# Server wiring
# ----------------------------------------------------------------------
def test_server_verify_flag_roundtrips_reports():
    server = make_server(port=0, verify=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        spec = (SweepSpec().with_benchmarks("RD53")
                .with_policies("eager").with_scales("quick")
                .with_config(record_schedule=True))
        sweep = client.run(spec)
        assert all(entry.verification is not None for entry in sweep)
        assert all(entry.verification.ok for entry in sweep)
        assert sweep.rows()[0]["verify"] == "ok"
        stats = client.stats()
        assert stats["service"]["verify_enabled"] is True
        assert stats["session"]["verify"]["verified_results"] >= 1
    finally:
        server.shutdown()
        server.server_close()


def test_server_verify_off_by_default():
    server = make_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        spec = (SweepSpec().with_benchmarks("RD53")
                .with_policies("eager").with_scales("quick"))
        sweep = client.run(spec)
        assert all(entry.verification is None for entry in sweep)
        assert client.stats()["service"]["verify_enabled"] is False
    finally:
        server.shutdown()
        server.server_close()
