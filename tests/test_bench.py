"""Tests for repro.bench: versioned records, history, regression gate.

Unit-level: record schema + legacy up-conversion, the torn-tail
tolerant history journal, per-metric direction/tolerance policies, and
the compare verdicts (identical runs pass, a 2x slowdown fails with
the metric named).  CLI-level: ``bench list|compare|trend`` through
the real argparse entry point, including exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.exceptions import BenchError


def _record(metrics, suite="telemetry", stamp="2026-01-01T00:00:00Z"):
    return bench.make_record(suite, metrics, generated_at=stamp)


BASE_METRICS = {
    "compile_seconds": 10.0,
    "verify_gates_per_second": 50000.0,
    "span_overhead_ratio": 0.004,
    "scrape_latency_ms": 2.5,
    "scrape_bytes": 4096,
    "jobs": 18,
    "phase_seconds": {"allocation": 4.0, "validate": 1.0},
}


# ----------------------------------------------------------------------
# Records + history
# ----------------------------------------------------------------------
class TestRecords:
    def test_make_record_is_versioned(self):
        record = _record(BASE_METRICS)
        assert record["bench_version"] == bench.BENCH_VERSION
        assert record["suite"] == "telemetry"

    def test_legacy_dict_upconverts_as_version_zero(self):
        legacy = {"suite": "verify", "generated_at": "2025-12-01T00:00:00Z",
                  "metrics": {"compile_seconds": 3.0}}
        record = bench.upconvert(legacy)
        assert record["bench_version"] == bench.BENCH_VERSION
        assert record["metrics"] == {"compile_seconds": 3.0}

    def test_future_version_rejected(self):
        with pytest.raises(BenchError):
            bench.upconvert({"bench_version": 99, "metrics": {}})

    def test_junk_rejected(self):
        with pytest.raises(BenchError):
            bench.upconvert(["not", "a", "record"])
        with pytest.raises(BenchError):
            bench.upconvert({"suite": "x"})  # no metrics

    def test_write_bench_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_telemetry.json"
        bench.write_bench(str(path), "telemetry", BASE_METRICS,
                          generated_at="2026-01-01T00:00:00Z")
        loaded = bench.load_bench(str(path))
        assert loaded["metrics"]["compile_seconds"] == 10.0
        assert loaded["bench_version"] == bench.BENCH_VERSION

    def test_write_bench_appends_history(self, tmp_path):
        path = tmp_path / "BENCH_telemetry.json"
        history = tmp_path / "bench_history"
        for stamp in ("2026-01-01T00:00:00Z", "2026-01-02T00:00:00Z"):
            bench.write_bench(str(path), "telemetry", BASE_METRICS,
                              history_dir=str(history),
                              generated_at=stamp)
        journal = bench.read_history(str(history), "telemetry")
        assert [r["generated_at"] for r in journal["records"]] == \
            ["2026-01-01T00:00:00Z", "2026-01-02T00:00:00Z"]
        assert bench.list_suites(str(history)) == ["telemetry"]

    def test_history_tolerates_torn_tail(self, tmp_path):
        history = tmp_path / "bench_history"
        bench.append_history(str(history), _record(BASE_METRICS))
        with open(bench.history_path(str(history), "telemetry"), "a",
                  encoding="utf-8") as stream:
            stream.write('{"bench_version": 1, "su')  # torn mid-append
        journal = bench.read_history(str(history), "telemetry")
        assert len(journal["records"]) == 1
        assert journal["torn_lines"] == 1

    def test_missing_history_is_empty_not_fatal(self, tmp_path):
        journal = bench.read_history(str(tmp_path / "nowhere"), "x")
        assert journal == {"records": [], "torn_lines": 0}


# ----------------------------------------------------------------------
# Policies + compare
# ----------------------------------------------------------------------
class TestPolicies:
    def test_directions_follow_naming_convention(self):
        assert bench.metric_policy("compile_seconds")[0] == "lower"
        assert bench.metric_policy("scrape_latency_ms")[0] == "lower"
        assert bench.metric_policy("counter_increment_ns")[0] == "lower"
        assert bench.metric_policy("wal_replay_jobs_per_second")[0] \
            == "higher"
        assert bench.metric_policy("span_overhead_ratio") \
            == ("lower", "absolute", bench.compare.__globals__[
                "ABSOLUTE_TOLERANCE_RATIO"])
        assert bench.metric_policy("scrape_bytes")[0] == "lower"
        assert bench.metric_policy("jobs")[0] is None
        assert bench.metric_policy("phase_seconds.allocation")[0] \
            == "lower"

    def test_flatten_dots_nested_dicts_and_skips_lists(self):
        flat = bench.flatten_metrics({
            "a_seconds": 1.0, "nested": {"b": 2},
            "trials": [1, 2, 3], "label": "text", "flag": True})
        assert flat == {"a_seconds": 1.0, "nested.b": 2.0}


class TestCompare:
    def test_identical_runs_pass(self):
        record = _record(BASE_METRICS)
        report = bench.compare(record, record)
        assert report["ok"] and report["regressions"] == []

    def test_noise_inside_the_band_passes(self):
        noisy = dict(BASE_METRICS,
                     compile_seconds=11.5,                 # +15%
                     verify_gates_per_second=42000.0,      # -16%
                     span_overhead_ratio=0.015)            # +0.011 abs
        report = bench.compare(_record(BASE_METRICS), _record(noisy))
        assert report["ok"], report["regressions"]

    def test_2x_slowdown_fails_with_named_metric(self):
        slow = dict(BASE_METRICS, compile_seconds=20.0)
        report = bench.compare(_record(BASE_METRICS), _record(slow))
        assert not report["ok"]
        assert report["regressions"] == ["compile_seconds"]
        row = next(r for r in report["rows"]
                   if r["metric"] == "compile_seconds")
        assert row["delta_pct"] == 100.0
        text = bench.render_compare(report)
        assert "[REGRESSION] compile_seconds: 10 -> 20 (+100.0%)" in text

    def test_throughput_collapse_fails(self):
        slow = dict(BASE_METRICS, verify_gates_per_second=25000.0)
        report = bench.compare(_record(BASE_METRICS), _record(slow))
        assert report["regressions"] == ["verify_gates_per_second"]

    def test_ratio_blowup_fails_on_absolute_band(self):
        bloated = dict(BASE_METRICS, span_overhead_ratio=0.05)
        report = bench.compare(_record(BASE_METRICS), _record(bloated))
        assert report["regressions"] == ["span_overhead_ratio"]

    def test_nested_phase_regression_is_named_dotted(self):
        slow = dict(BASE_METRICS,
                    phase_seconds={"allocation": 9.0, "validate": 1.0})
        report = bench.compare(_record(BASE_METRICS), _record(slow))
        assert report["regressions"] == ["phase_seconds.allocation"]

    def test_info_metrics_never_regress(self):
        changed = dict(BASE_METRICS, jobs=999)
        report = bench.compare(_record(BASE_METRICS), _record(changed))
        assert report["ok"]

    def test_new_and_missing_metrics_are_flagged_not_fatal(self):
        base = _record({"compile_seconds": 1.0, "old_seconds": 2.0})
        cur = _record({"compile_seconds": 1.0, "new_seconds": 3.0})
        report = bench.compare(base, cur)
        statuses = {row["metric"]: row["status"] for row in report["rows"]}
        assert statuses["new_seconds"] == "new"
        assert statuses["old_seconds"] == "missing"
        assert report["ok"]

    def test_compare_output_is_deterministic(self):
        report = bench.compare(_record(BASE_METRICS), _record(BASE_METRICS))
        assert bench.render_compare(report) == bench.render_compare(
            bench.compare(_record(BASE_METRICS), _record(BASE_METRICS)))


# ----------------------------------------------------------------------
# The bench CLI
# ----------------------------------------------------------------------
class TestBenchCli:
    def _main(self, argv, capsys):
        from repro.experiments.__main__ import main

        try:
            code = main(argv)
        except SystemExit as error:
            code = error.code
        out, err = capsys.readouterr()
        return code, out, err

    def _seed(self, tmp_path, current_metrics):
        history = tmp_path / "bench_history"
        bench.append_history(str(history), _record(BASE_METRICS))
        snapshot = tmp_path / "BENCH_telemetry.json"
        with open(snapshot, "w", encoding="utf-8") as stream:
            json.dump(_record(current_metrics,
                              stamp="2026-01-02T00:00:00Z"), stream)
        return str(history), str(snapshot)

    def test_compare_identical_exits_zero(self, tmp_path, capsys):
        history, snapshot = self._seed(tmp_path, BASE_METRICS)
        code, out, _ = self._main(
            ["bench", "compare", "--suite", "telemetry",
             "--history", history, "--bench-file", snapshot], capsys)
        assert code == 0
        assert "no regressions" in out

    def test_compare_slowdown_exits_one_and_names_metric(self, tmp_path,
                                                         capsys):
        history, snapshot = self._seed(
            tmp_path, dict(BASE_METRICS, compile_seconds=20.0))
        code, out, _ = self._main(
            ["bench", "compare", "--suite", "telemetry",
             "--history", history, "--bench-file", snapshot], capsys)
        assert code == 1
        assert "[REGRESSION] compile_seconds" in out
        assert "+100.0%" in out

    def test_compare_without_baseline_exits_two(self, tmp_path, capsys):
        _, snapshot = self._seed(tmp_path, BASE_METRICS)
        code, _, err = self._main(
            ["bench", "compare", "--suite", "telemetry",
             "--history", str(tmp_path / "empty"),
             "--bench-file", snapshot], capsys)
        assert code == 2
        assert "no baseline" in err

    def test_list_and_trend(self, tmp_path, capsys):
        history, _ = self._seed(tmp_path, BASE_METRICS)
        code, out, _ = self._main(["bench", "list", "--history", history],
                                  capsys)
        assert code == 0 and "telemetry" in out
        code, out, _ = self._main(
            ["bench", "trend", "--suite", "telemetry",
             "--history", history, "--metric", "compile_seconds"], capsys)
        assert code == 0
        assert "compile_seconds" in out and "1 run(s)" in out

    def test_bench_rejects_unknown_action(self, tmp_path, capsys):
        code, _, err = self._main(["bench", "trend", "compare"], capsys)
        assert code == 2
        assert "exactly one action" in err
