"""Unit and property tests for the classical reversible simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NonClassicalGateError, SimulationError
from repro.ir.circuit import Circuit
from repro.ir.classical_sim import (
    bits_to_int,
    int_to_bits,
    simulate_classical,
    truth_table,
)


class TestBitHelpers:
    def test_roundtrip(self):
        assert bits_to_int(int_to_bits(37, 8)) == 37

    def test_int_to_bits_rejects_overflow(self):
        with pytest.raises(SimulationError):
            int_to_bits(8, 3)

    def test_int_to_bits_rejects_negative(self):
        with pytest.raises(SimulationError):
            int_to_bits(-1, 4)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip_property(self, value):
        assert bits_to_int(int_to_bits(value, 16)) == value


class TestSimulateClassical:
    def test_cnot_and_toffoli(self):
        circuit = Circuit(3)
        circuit.x(0)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        assert simulate_classical(circuit) == [1, 1, 1]

    def test_swap(self):
        circuit = Circuit(2)
        circuit.swap(0, 1)
        assert simulate_classical(circuit, [1, 0]) == [0, 1]

    def test_sparse_initial_mapping(self):
        circuit = Circuit(3)
        circuit.cx(2, 0)
        assert simulate_classical(circuit, {2: 1}) == [1, 0, 1]

    def test_rejects_nonclassical(self):
        circuit = Circuit(1)
        circuit.h(0)
        with pytest.raises(NonClassicalGateError):
            simulate_classical(circuit)

    def test_rejects_bad_initial_wire(self):
        circuit = Circuit(2)
        with pytest.raises(SimulationError):
            simulate_classical(circuit, {5: 1})

    def test_truth_table_identity(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        table = truth_table(circuit, input_wires=[0, 1], output_wires=[0, 1])
        # (a, b) -> (a, a ^ b); value encodes wire0 as LSB.
        assert table[0b01] == 0b11
        assert table[0b11] == 0b01

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4),
           st.integers(min_value=0, max_value=999))
    def test_reverse_circuit_restores_input(self, bits, seed):
        """Running a random classical circuit then its inverse is the identity."""
        import random

        rng = random.Random(seed)
        circuit = Circuit(4)
        for _ in range(12):
            kind = rng.random()
            if kind < 0.3:
                circuit.x(rng.randrange(4))
            elif kind < 0.7:
                a, b = rng.sample(range(4), 2)
                circuit.cx(a, b)
            else:
                a, b, c = rng.sample(range(4), 3)
                circuit.ccx(a, b, c)
        forward = simulate_classical(circuit, bits)
        restored = simulate_classical(circuit.inverse(), forward)
        assert restored == list(bits)
