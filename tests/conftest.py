"""Shared fixtures for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.arch.nisq import NISQMachine
from repro.ir.builder import ModuleBuilder
from repro.ir.program import Program, QModule


def build_fun1() -> QModule:
    """The example function of Figure 6 (one ancilla, explicit-style blocks)."""
    builder = ModuleBuilder("fun1", num_inputs=3, num_outputs=1, num_ancilla=1)
    i, o, a = builder.inputs, builder.outputs, builder.ancillas
    with builder.compute():
        builder.ccx(i[0], i[1], i[2])
        builder.cx(i[2], a[0])
        builder.ccx(i[1], i[0], a[0])
    with builder.store():
        builder.cx(a[0], o[0])
    return builder.build()


def build_two_level_program() -> Program:
    """A two-level modular program in the shape of Figure 3."""
    fun1 = build_fun1()
    top = QModule("main", num_inputs=3, num_outputs=2, num_ancilla=1)
    ti, to, ta = top.inputs, top.outputs, top.ancillas
    top.call(fun1, ti[0], ti[1], ti[2], ta[0])
    top.cx(ti[0], ta[0])
    top.begin_store()
    top.cx(ta[0], to[0])
    top.cx(ta[0], to[1])
    return Program(top, name="two-level")


@pytest.fixture
def fun1_module() -> QModule:
    """Fresh fun1 module."""
    return build_fun1()


@pytest.fixture
def two_level_program() -> Program:
    """Fresh two-level program."""
    return build_two_level_program()


@pytest.fixture
def small_grid_machine() -> NISQMachine:
    """A 4x4 lattice NISQ machine."""
    return NISQMachine.grid(4, 4)


def all_basis_inputs(width: int):
    """Every basis-state input of the given width."""
    return itertools.product([0, 1], repeat=width)
