"""Tests for repro.cluster and the streaming per-entry pipeline.

Covers three layers:

* the queue/server/client streaming surface (`QueuedJob.entries_since`,
  `GET /jobs/<id>/entries`, `ServiceClient.iter_entries`) — including
  the cursor invariant: never skip, never duplicate;
* the cluster building blocks (sharding determinism and stability,
  topology probing) plus the coordinator's failure paths, driven
  through deterministic fake worker clients (worker killed mid-sweep
  re-dispatches, back-pressured worker sheds to siblings, exhaustion
  raises `ClusterError`);
* real-HTTP integration: a sweep sharded across two live servers
  exports byte-identical JSON/CSV to a serial single-session run, also
  after one server is killed mid-sweep, and warm reruns stay on the
  same workers' caches.
"""

import itertools
import json
import threading
import time

import pytest

from repro.exceptions import (
    BackPressureError,
    ClusterError,
    ServiceError,
    UnknownJobError,
)
from repro.api import CompileJob, MachineSpec, Session, SweepSpec
from repro.cluster import (
    ClusterCoordinator,
    ClusterTopology,
    WorkerEndpoint,
    assign_endpoint,
    shard_jobs,
)
from repro.queue import DONE, JobManager, QueuedJob
from repro.service import DiskCache, ServiceClient, make_server
from repro.service.server import CompilationService

GRID = MachineSpec.nisq_grid(5, 5)
SPEC = (SweepSpec()
        .with_benchmarks("RD53", "ADDER4", "6SYM", "2OF5")
        .with_machines(GRID)
        .with_policies("lazy", "square")
        .with_scales("quick"))

#: Fixed fake-worker URLs: the rendezvous hash over (fingerprint, url)
#: is salt-free, so the SPEC x URLS shard layout is a constant of the
#: test suite — both workers always draw several jobs (asserted below).
URLS = ("http://worker-a:1", "http://worker-b:2")


def spec_pairs(spec=SPEC):
    """The (fingerprint, job) pairs of a spec, in sweep order."""
    jobs = spec.jobs()
    return [(job.fingerprint(), job) for job in jobs]


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
class TestSharding:
    def test_assignment_is_deterministic(self):
        pairs = spec_pairs()
        first = {fp: assign_endpoint(fp, URLS) for fp, _ in pairs}
        second = {fp: assign_endpoint(fp, URLS) for fp, _ in pairs}
        assert first == second

    def test_shards_cover_every_job_exactly_once(self):
        pairs = spec_pairs()
        shards = shard_jobs(pairs, URLS)
        fingerprints = [fp for shard in shards.values() for fp, _ in shard]
        assert sorted(fingerprints) == sorted(fp for fp, _ in pairs)

    def test_both_workers_draw_jobs_from_the_suite_spec(self):
        # The fixed URLS are chosen so the failure-path tests below can
        # rely on both workers owning part of the sweep.
        shards = shard_jobs(spec_pairs(), URLS)
        assert len(shards) == 2
        assert all(len(shard) >= 2 for shard in shards.values())

    def test_removing_an_endpoint_only_moves_its_jobs(self):
        pairs = spec_pairs()
        before = {fp: assign_endpoint(fp, URLS) for fp, _ in pairs}
        survivors = (URLS[0],)
        after = {fp: assign_endpoint(fp, survivors) for fp, _ in pairs}
        for fp, endpoint in before.items():
            if endpoint == URLS[0]:
                assert after[fp] == URLS[0]  # survivor's jobs stay put

    def test_shard_preserves_input_order(self):
        pairs = spec_pairs()
        shards = shard_jobs(pairs, URLS)
        order = {fp: index for index, (fp, _) in enumerate(pairs)}
        for shard in shards.values():
            indices = [order[fp] for fp, _ in shard]
            assert indices == sorted(indices)

    def test_no_endpoints_raises(self):
        with pytest.raises(ClusterError):
            assign_endpoint("abc", ())
        with pytest.raises(ClusterError):
            assign_endpoint("abc", {})

    def test_uniform_weights_match_legacy_placement(self):
        # weight=1 scores are a monotonic transform of the raw hash, so
        # existing fleets (and their warm cache layouts) see the exact
        # placement they had before weights existed.
        pairs = spec_pairs()
        unweighted = shard_jobs(pairs, URLS)
        weighted = shard_jobs(pairs, {url: 1.0 for url in URLS})
        assert {url: [fp for fp, _ in shard]
                for url, shard in unweighted.items()} == \
               {url: [fp for fp, _ in shard]
                for url, shard in weighted.items()}

    def test_heavier_endpoints_draw_proportionally_more(self):
        fingerprints = [f"synthetic-{index:05d}" for index in range(2000)]
        weights = {URLS[0]: 3.0, URLS[1]: 1.0}
        counts = {url: 0 for url in URLS}
        for fingerprint in fingerprints:
            counts[assign_endpoint(fingerprint, weights)] += 1
        assert sum(counts.values()) == len(fingerprints)
        ratio = counts[URLS[0]] / counts[URLS[1]]
        assert 2.0 < ratio < 4.5, \
            f"a 3x-weighted endpoint should draw ~3x the jobs: {counts}"
        # Determinism: the weighted assignment is a pure function.
        assert [assign_endpoint(fp, weights) for fp in fingerprints[:50]] \
            == [assign_endpoint(fp, weights) for fp in fingerprints[:50]]

    def test_non_positive_weights_are_rejected(self):
        from repro.cluster import shard_score

        with pytest.raises(ClusterError, match="weight"):
            shard_score("abc", URLS[0], weight=0.0)
        with pytest.raises(ClusterError, match="weight"):
            assign_endpoint("abc", {URLS[0]: -1.0})
        with pytest.raises(ClusterError, match="weight"):
            WorkerEndpoint(URLS[0], client=object(), weight=0)


# ----------------------------------------------------------------------
# QueuedJob / JobManager streaming primitives
# ----------------------------------------------------------------------
class TestEntryStream:
    def test_add_entry_then_slice(self):
        job = QueuedJob("job-1", "sweep", {})
        job.add_entry({"n": 0})
        job.add_entry({"n": 1})
        state, entries, total = job.entries_since(0, timeout=0)
        assert state == "QUEUED" and total == 2
        assert [e["n"] for e in entries] == [0, 1]
        state, entries, total = job.entries_since(1, timeout=0)
        assert [e["n"] for e in entries] == [1]

    def test_negative_cursor_rejected(self):
        job = QueuedJob("job-1", "sweep", {})
        with pytest.raises(ServiceError):
            job.entries_since(-1)

    def test_long_poll_wakes_on_new_entry(self):
        job = QueuedJob("job-1", "sweep", {})
        threading.Timer(0.05, lambda: job.add_entry({"n": 0})).start()
        started = time.monotonic()
        state, entries, _ = job.entries_since(0, timeout=5)
        assert [e["n"] for e in entries] == [0]
        assert time.monotonic() - started < 4, "must wake early"

    def test_long_poll_wakes_on_terminal_transition(self):
        manager = JobManager(lambda job: {"ok": True}, workers=1)
        try:
            ticket = manager.submit("compile", {"job": {}})
            manager.wait(ticket.job_id, timeout=10)
            payload = manager.entries_since(ticket.job_id, since=5,
                                            timeout=5)
            # Cursor beyond the stream: terminal state ends the poll
            # with an empty slice instead of blocking out the timeout.
            assert payload["state"] == DONE and payload["entries"] == []
        finally:
            manager.close()

    def test_cursor_never_skips_or_duplicates_under_concurrency(self):
        job = QueuedJob("job-1", "sweep", {})
        produced = 40

        def producer():
            for n in range(produced):
                job.add_entry({"n": n})
                if n % 7 == 0:
                    time.sleep(0.002)
            job.transition("RUNNING")
            job.transition("DONE")

        thread = threading.Thread(target=producer)
        thread.start()
        seen = []
        cursor = 0
        while True:
            state, entries, _ = job.entries_since(cursor, timeout=5)
            seen.extend(e["n"] for e in entries)
            cursor += len(entries)
            if state == DONE and not entries:
                break
        thread.join()
        assert seen == list(range(produced))

    def test_manager_jobs_limit_filter(self):
        manager = JobManager(lambda job: {"ok": True}, workers=1)
        try:
            tickets = [manager.submit("compile", {"job": {}})
                       for _ in range(5)]
            for ticket in tickets:
                manager.wait(ticket.job_id, timeout=10)
            newest = manager.jobs(limit=2)
            assert [job.job_id for job in newest] == \
                   [tickets[-2].job_id, tickets[-1].job_id]
            assert manager.jobs(limit=0) == []
            assert len(manager.jobs(state=DONE, limit=3)) == 3
            with pytest.raises(ServiceError):
                manager.jobs(limit=-1)
        finally:
            manager.close()


# ----------------------------------------------------------------------
# Streaming + filters over real HTTP
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def live_server():
    server = make_server("127.0.0.1", 0, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestStreamingHTTP:
    def test_iter_entries_streams_every_entry_once_in_order(
            self, live_server):
        client = live_server
        ticket = client.submit_async(SPEC)
        indices, records = [], []
        for index, record in client.iter_entries(ticket):
            indices.append(index)
            records.append(record)
        assert indices == list(range(len(SPEC)))
        jobs = SPEC.jobs()
        assert [r["benchmark"] for r in records] == \
               [job.program_label for job in jobs]
        assert all(r["ok"] for r in records)

    def test_cursor_resume_matches_full_stream(self, live_server):
        client = live_server
        ticket = client.submit_async(SPEC)
        client.wait_for(ticket, timeout=120)
        full = client.entries_since(ticket, since=0)
        assert full["state"] == "DONE" and full["next"] == len(SPEC)
        resumed = client.entries_since(ticket, since=3)
        assert resumed["entries"] == full["entries"][3:]
        assert resumed["next"] == full["total"] == len(SPEC)

    def test_entry_count_in_status_record(self, live_server):
        client = live_server
        ticket = client.submit_async(SPEC)
        record = client.wait_for(ticket, timeout=120)
        assert record["entry_count"] == len(SPEC)

    def test_bad_cursor_and_unknown_job(self, live_server):
        client = live_server
        ticket = client.submit_async(SPEC)
        client.wait_for(ticket, timeout=120)
        with pytest.raises(ServiceError):
            client.entries_since(ticket, since=-2)
        with pytest.raises(UnknownJobError):
            client.entries_since("job-999999")
        with pytest.raises(ServiceError):
            client._get(f"/jobs/{ticket}/entries?since=junk")

    def test_jobs_listing_limit_and_status_filters(self, live_server):
        client = live_server
        ticket = client.submit_async(SPEC)
        client.wait_for(ticket, timeout=120)
        everything = client.jobs()
        assert len(everything) >= 2
        limited = client.jobs(limit=1)
        assert len(limited) == 1
        assert limited[0]["job_id"] == everything[-1]["job_id"]
        done = client.jobs(state="DONE", limit=2)
        assert all(record["state"] == "DONE" for record in done)
        # `state=` stays accepted as an alias for `status=`.
        via_alias = client._get("/jobs?state=DONE")
        assert via_alias["count"] == len(client.jobs(state="DONE"))
        with pytest.raises(ServiceError):
            client.jobs(limit=-1)
        with pytest.raises(ServiceError):
            client._get("/jobs?limit=three")


class TestWaitForBackoff:
    def test_interval_grows_to_cap(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9")
        states = iter(["QUEUED"] * 6 + ["DONE"])
        monkeypatch.setattr(client, "poll",
                            lambda job_id: {"state": next(states)})
        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep",
                            sleeps.append)
        record = client.wait_for("job-1", interval=0.05, max_interval=0.4)
        assert record["state"] == "DONE"
        assert len(sleeps) == 6
        assert sleeps[0] == pytest.approx(0.05)
        assert all(b >= a for a, b in zip(sleeps, sleeps[1:]))
        assert sleeps[-1] == pytest.approx(0.4)

    def test_timeout_still_raises(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9")
        monkeypatch.setattr(client, "poll",
                            lambda job_id: {"state": "RUNNING"})
        monkeypatch.setattr("repro.service.client.time.sleep",
                            lambda delay: None)
        with pytest.raises(ServiceError, match="timed out"):
            client.wait_for("job-1", timeout=0.05, interval=0.01)

    def test_iter_entries_clamps_long_poll_to_remaining_budget(
            self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9")
        parks = []

        def stuck(job_id, since=0, poll_timeout=None):
            parks.append(poll_timeout)
            return {"state": "QUEUED", "entries": [],
                    "since": since, "next": since}

        monkeypatch.setattr(client, "entries_since", stuck)
        with pytest.raises(ServiceError, match="timed out"):
            list(client.iter_entries("job-1", timeout=0.05,
                                     poll_timeout=10.0))
        # Every long-poll was clamped to the remaining overall budget —
        # a 0.05s timeout must never park a request for 10s.
        assert parks and max(parks) <= 0.05


# ----------------------------------------------------------------------
# DiskCache orphan GC
# ----------------------------------------------------------------------
class TestGcOrphans:
    @staticmethod
    def warm(cache):
        session = Session(disk_cache=cache)
        session.compile("RD53", machine=GRID, policy="lazy")
        return cache.fingerprints()[0]

    def test_removes_tmp_corrupt_and_uncommitted(self, tmp_path):
        cache = DiskCache(tmp_path)
        committed = self.warm(cache)
        results = tmp_path / "results"
        payload = json.loads((results / f"{committed}.json").read_text())
        payload["fingerprint"] = "f" * 64
        (results / ("f" * 64 + ".json")).write_text(json.dumps(payload))
        (results / "x.json.123.tmp").write_text("partial write")
        (results / ("a" * 64 + ".json")).write_text("{corrupt")
        mislabelled = dict(payload, fingerprint="nope")
        (results / ("b" * 64 + ".json")).write_text(json.dumps(mislabelled))

        # Freshly written files are protected by the age threshold: a
        # sibling writer mid-``os.replace`` must never lose its temp
        # file (nor a just-written payload awaiting its index flush).
        assert cache.gc_orphans() == 0
        assert cache.gc_orphans(min_age_seconds=0) == 4
        assert cache.fingerprints() == [committed]
        assert cache.stats()["orphans_removed"] == 4
        assert cache.get(committed) is not None
        # Idempotent, and a reload sees a clean directory.
        assert cache.gc_orphans(min_age_seconds=0) == 0
        assert DiskCache(tmp_path).gc_orphans(min_age_seconds=0) == 0

    def test_preserves_entries_committed_by_other_writers(self, tmp_path):
        ours = DiskCache(tmp_path)
        self.warm(ours)
        # A sibling server sharing the directory commits its own entry
        # after our index view was loaded.
        theirs = DiskCache(tmp_path)
        session = Session(disk_cache=theirs)
        session.compile("ADDER4", machine=GRID, policy="square")
        theirs.flush_index()
        assert len(ours) == 2
        # Our GC merges the sibling's committed index before sweeping,
        # so its entry survives even with the age threshold disabled.
        assert ours.gc_orphans(min_age_seconds=0) == 0
        assert len(ours) == 2

    @staticmethod
    def backdate(path, seconds=3600):
        """Make a file look ``seconds`` old (bypass the age threshold)."""
        import os

        old = time.time() - seconds
        os.utime(path, (old, old))

    @staticmethod
    def put_without_flush(cache, benchmark="ADDER4"):
        """One ``put()`` with no index flush — a writer mid-crash.

        (``Session.run`` flushes the index per batch, so the
        crashed-before-commit state needs a direct put.)
        """
        result = Session().compile(benchmark, machine=GRID, policy="square")
        job = CompileJob.for_benchmark(benchmark, GRID, "square")
        cache.put(job.fingerprint(), result, job=job)
        return job.fingerprint()

    def test_two_writers_sibling_inflight_files_survive(self, tmp_path):
        # Writer A runs GC while writer B is mid-write in the same
        # directory: B's temp file (mkstemp done, os.replace pending)
        # and B's just-put payload (flush_index pending) are both
        # *fresh*, so the age threshold protects them even though
        # neither is committed to any index yet.
        ours = DiskCache(tmp_path)
        committed = self.warm(ours)
        theirs = DiskCache(tmp_path)
        uncommitted = self.put_without_flush(theirs)
        inflight_tmp = tmp_path / "results" / "pending.json.777.tmp"
        inflight_tmp.write_text("half-written payload")
        assert ours.gc_orphans() == 0, \
            "fresh sibling files must survive a default-threshold GC"
        assert inflight_tmp.exists()
        assert sorted(theirs.fingerprints()) == \
            sorted([committed, uncommitted])
        # Once B commits, its entry is safe at any age from A's side.
        theirs.flush_index()
        assert ours.gc_orphans(min_age_seconds=0) == 1  # the temp file
        assert sorted(ours.fingerprints()) == \
            sorted([committed, uncommitted])

    def test_two_writers_committed_entries_never_reclaimed(self, tmp_path):
        # Both writers commit; every payload then ages far past the
        # threshold.  GC from either side must reclaim nothing: age
        # only *permits* collection, commitment is what protects.
        ours = DiskCache(tmp_path)
        committed = self.warm(ours)
        theirs = DiskCache(tmp_path)
        session = Session(disk_cache=theirs)
        session.compile("ADDER4", machine=GRID, policy="square")
        theirs.flush_index()
        for path in (tmp_path / "results").glob("*.json"):
            self.backdate(path)
        assert ours.gc_orphans() == 0
        assert theirs.gc_orphans() == 0
        assert len(ours) == 2
        assert ours.get(committed) is not None

    def test_two_writers_crashed_uncommitted_payload_is_reclaimed(
            self, tmp_path):
        # A sibling that died between put() and flush_index() leaves an
        # uncommitted payload; once it is old enough the surviving
        # long-lived server sweeps it — while its own committed entry
        # (equally old) is not touched.
        ours = DiskCache(tmp_path)
        committed = self.warm(ours)
        crashed = DiskCache(tmp_path)
        self.put_without_flush(crashed)
        del crashed  # the "crash": put() landed, flush_index() never did
        stale_tmp = tmp_path / "results" / "dead.json.1.tmp"
        stale_tmp.write_text("orphaned temp file")
        for path in (tmp_path / "results").iterdir():
            self.backdate(path)
        assert ours.gc_orphans() == 2  # the payload and the temp file
        assert not stale_tmp.exists()
        assert ours.fingerprints() == [committed]
        assert ours.get(committed) is not None

    def test_fresh_process_adopts_uncommitted_payloads_instead(
            self, tmp_path):
        # The counterpart: a *fresh* DiskCache over the directory
        # rebuilds its index from the payload files, adopting the
        # crashed writer's valid payload rather than sweeping it.
        ours = DiskCache(tmp_path)
        self.warm(ours)
        crashed = DiskCache(tmp_path)
        self.put_without_flush(crashed)
        del crashed  # no flush_index()
        for path in (tmp_path / "results").iterdir():
            self.backdate(path)
        fresh = DiskCache(tmp_path)
        assert fresh.gc_orphans() == 0
        assert len(fresh) == 2


# ----------------------------------------------------------------------
# Deterministic fake workers for coordinator failure paths
# ----------------------------------------------------------------------
class FakeWorkerClient:
    """Stands in for ServiceClient against an in-memory 'server'.

    Implements exactly the surface the coordinator uses (health,
    submit_async, iter_entries, poll) with deterministic failure knobs:
    ``reject_submits`` answers the next N submissions with 503
    back-pressure; ``die_after`` kills the worker (transport-wise) once
    it has delivered that many entries; ``fail_job_after`` ends the
    current shard job FAILED server-side (worker stays reachable) once
    that many entries have been delivered.
    """

    def __init__(self, url, *, reject_submits=0, die_after=None,
                 fail_job_after=None):
        self.url = url
        self.session = Session(isolate_failures=True)
        self.reject_submits = reject_submits
        self.die_after = die_after
        self.fail_job_after = fail_job_after
        self.dead = False
        self.delivered = 0
        self.submissions = 0
        self._jobs = {}
        self._done = set()
        self._failed = set()
        self._ids = itertools.count(1)

    def _check_alive(self):
        if self.dead:
            raise ServiceError(f"cannot reach {self.url}: connection refused")

    def health(self):
        self._check_alive()
        return {"status": "ok"}

    def submit_async(self, payload):
        self._check_alive()
        self.submissions += 1
        if self.reject_submits > 0:
            self.reject_submits -= 1
            raise BackPressureError("queue full", depth=1, capacity=1)
        job_id = f"{self.url}/job-{next(self._ids)}"
        self._jobs[job_id] = [CompileJob.from_dict(descriptor)
                              for descriptor in payload["jobs"]]
        return job_id

    def iter_entries(self, job_id, since=0, timeout=None, poll_timeout=10.0):
        for index, job in enumerate(self._jobs[job_id][since:], start=since):
            self._check_alive()
            if self.die_after is not None and self.delivered >= self.die_after:
                self.dead = True
                raise ServiceError(f"{self.url} reset mid-stream")
            if self.fail_job_after is not None \
                    and self.delivered >= self.fail_job_after:
                # Server-side job failure: the stream ends early but the
                # worker itself stays perfectly reachable.
                self._failed.add(job_id)
                return
            entry = self.session.run([job])[0]
            self.delivered += 1
            yield index, CompilationService._entry_record(entry)
        self._done.add(job_id)

    def poll(self, job_id):
        self._check_alive()
        if job_id in self._failed:
            return {"state": "FAILED"}
        return {"state": "DONE" if job_id in self._done else "RUNNING"}

    def stats(self):
        self._check_alive()
        return {
            "service": {"queue_depth": 0, "queue_capacity": 64,
                        "workers": 1, "busy_workers": 0,
                        "requests": self.submissions,
                        "jobs_run": self.delivered, "job_failures": 0},
            "session": dict(self.session.stats(), disk_cache=None),
        }


class TestCoordinatorFailurePaths:
    @staticmethod
    def coordinator(fakes, **kwargs):
        registry = {fake.url: fake for fake in fakes}
        kwargs.setdefault("retry_delay", 0.01)
        return ClusterCoordinator(
            list(registry), client_factory=registry.__getitem__, **kwargs)

    def test_clean_two_worker_sweep_matches_serial(self):
        serial = Session().run(SPEC, isolate_failures=True)
        fakes = [FakeWorkerClient(url) for url in URLS]
        coordinator = self.coordinator(fakes)
        arrivals = []
        sweep = coordinator.run(SPEC, on_entry=lambda i, e:
                                arrivals.append(i))
        assert sweep.to_json() == serial.to_json()
        assert sweep.to_csv() == serial.to_csv()
        assert sorted(arrivals) == list(range(len(SPEC)))
        # Both workers compiled their own shard — a genuine split.
        assert all(fake.delivered >= 2 for fake in fakes)
        assert coordinator.stats()["rounds_run"] == 1

    def test_worker_killed_mid_sweep_redispatches_unfinished(self):
        serial = Session().run(SPEC, isolate_failures=True)
        shards = shard_jobs(spec_pairs(), URLS)
        victim_shard = len(shards[URLS[1]])
        assert victim_shard >= 2, "suite spec must give the victim >1 job"
        fakes = [FakeWorkerClient(URLS[0]),
                 FakeWorkerClient(URLS[1], die_after=1)]
        coordinator = self.coordinator(fakes)
        sweep = coordinator.run(SPEC)
        assert sweep.to_json() == serial.to_json()
        assert sweep.to_csv() == serial.to_csv()
        stats = coordinator.stats()
        assert stats["redispatched_jobs"] == victim_shard - 1
        assert stats["rounds_run"] == 2
        # The survivor picked up the dead worker's unfinished jobs.
        assert fakes[0].delivered == len(shards[URLS[0]]) + victim_shard - 1
        dead = [s for s in stats["topology"]["endpoints"]
                if s["url"] == URLS[1]][0]
        assert not dead["alive"] and "mid-stream" in dead["last_error"]

    def test_failed_shard_job_retries_on_alternate_worker(self):
        # Worker B's shard job dies FAILED server-side after one entry;
        # B itself stays reachable.  The coordinator must not hand the
        # remainder straight back to B's sick queue: the next round
        # excludes B, so the jobs retry on A — and the merged result is
        # still byte-identical to a serial run.
        serial = Session().run(SPEC, isolate_failures=True)
        shards = shard_jobs(spec_pairs(), URLS)
        victim_shard = len(shards[URLS[1]])
        assert victim_shard >= 2
        fakes = [FakeWorkerClient(URLS[0]),
                 FakeWorkerClient(URLS[1], fail_job_after=1)]
        coordinator = self.coordinator(fakes)
        sweep = coordinator.run(SPEC)
        assert sweep.to_json() == serial.to_json()
        assert sweep.to_csv() == serial.to_csv()
        stats = coordinator.stats()
        assert stats["failed_shard_retries"] == victim_shard - 1
        assert stats["redispatched_jobs"] == victim_shard - 1
        assert stats["rounds_run"] == 2
        # The failing worker was excluded from the retry round (exactly
        # one submission ever reached it) yet is still alive.
        assert fakes[1].submissions == 1
        assert stats["topology"]["alive"] == 2
        assert fakes[0].delivered == len(shards[URLS[0]]) + victim_shard - 1

    def test_weighted_endpoints_shard_proportionally_and_merge_identically(
            self):
        serial = Session().run(SPEC, isolate_failures=True)
        fakes = {url: FakeWorkerClient(url) for url in URLS}
        heavy = WorkerEndpoint(URLS[0], client=fakes[URLS[0]], weight=64.0)
        light = WorkerEndpoint(URLS[1], client=fakes[URLS[1]], weight=1.0)
        coordinator = ClusterCoordinator([heavy, light], retry_delay=0.01)
        sweep = coordinator.run(SPEC)
        assert sweep.to_json() == serial.to_json()
        assert fakes[URLS[0]].delivered > fakes[URLS[1]].delivered, \
            "the weight-64 endpoint must draw the bulk of the sweep"

    def test_back_pressured_worker_sheds_load_to_sibling(self):
        serial = Session().run(SPEC, isolate_failures=True)
        shards = shard_jobs(spec_pairs(), URLS)
        fakes = [FakeWorkerClient(URLS[0]),
                 FakeWorkerClient(URLS[1], reject_submits=1)]
        coordinator = self.coordinator(fakes)
        sweep = coordinator.run(SPEC)
        assert sweep.to_json() == serial.to_json()
        stats = coordinator.stats()
        assert stats["shed_jobs"] == len(shards[URLS[1]])
        assert stats["rounds_run"] == 2
        # The saturated worker ran nothing; the sibling absorbed it all,
        # and the worker is still considered alive for future sweeps.
        assert fakes[1].delivered == 0
        assert fakes[0].delivered == len(SPEC.jobs())
        assert stats["topology"]["alive"] == 2

    def test_every_worker_dead_raises_cluster_error(self):
        fakes = [FakeWorkerClient(url, die_after=0) for url in URLS]
        coordinator = self.coordinator(fakes)
        with pytest.raises(ClusterError, match="no live worker"):
            coordinator.run(SPEC)

    def test_round_budget_exhaustion_raises_cluster_error(self):
        fakes = [FakeWorkerClient(URLS[0], reject_submits=99)]
        coordinator = self.coordinator(fakes, max_rounds=3)
        with pytest.raises(ClusterError, match="3 dispatch round"):
            coordinator.run(SPEC)

    def test_deterministic_400_rejection_does_not_mark_worker_dead(self):
        class Rejecting(FakeWorkerClient):
            def submit_async(self, payload):
                error = ServiceError("/jobs failed with HTTP 400: "
                                     "unknown benchmark 'CUSTOM'")
                error.http_status = 400
                raise error

        fakes = [Rejecting(URLS[0])]
        coordinator = self.coordinator(fakes)
        with pytest.raises(ClusterError, match="rejected the shard"):
            coordinator.run(SPEC)
        # The worker answered; it is not dead, and no healing round was
        # burned pretending it was.
        assert coordinator.stats()["topology"]["alive"] == 1

    def test_duplicate_jobs_compile_once_and_merge_as_cache_hits(self):
        job = CompileJob.for_benchmark("RD53", GRID, "square")
        fakes = [FakeWorkerClient(url) for url in URLS]
        coordinator = self.coordinator(fakes)
        sweep = coordinator.run([job, job, job])
        assert len(sweep) == 3
        assert sum(fake.delivered for fake in fakes) == 1
        assert [entry.cached for entry in sweep] == [False, True, True]
        # Identical to what one serial session reports for the batch.
        serial = Session().run([job, job, job], isolate_failures=True)
        assert [e.cached for e in serial] == [e.cached for e in sweep]
        assert sweep.to_json() == serial.to_json()

    def test_job_failures_are_entries_not_cluster_errors(self):
        impossible = CompileJob.for_benchmark("RD53", MachineSpec.nisq(2),
                                              "square")
        good = CompileJob.for_benchmark("RD53", GRID, "square")
        fakes = [FakeWorkerClient(url) for url in URLS]
        sweep = self.coordinator(fakes).run([good, impossible])
        assert [entry.ok for entry in sweep] == [True, False]
        serial = Session().run([good, impossible], isolate_failures=True)
        assert sweep.to_json() == serial.to_json()

    def test_empty_work_returns_empty_result(self):
        fakes = [FakeWorkerClient(URLS[0])]
        assert len(self.coordinator(fakes).run([])) == 0

    def test_on_entry_exception_propagates_to_caller(self):
        # A bug in the caller's callback is not worker death: it must
        # surface as itself, not burn healing rounds and end in a
        # misleading ClusterError about unfinished jobs.
        fakes = [FakeWorkerClient(url) for url in URLS]
        coordinator = self.coordinator(fakes)
        def broken(index, entry):
            raise KeyError("typo in callback")
        with pytest.raises(KeyError, match="typo in callback"):
            coordinator.run(SPEC, on_entry=broken)
        assert coordinator.stats()["topology"]["alive"] == 2

    def test_on_entry_reports_first_index_of_duplicates(self):
        job = CompileJob.for_benchmark("RD53", GRID, "square")
        other = CompileJob.for_benchmark("ADDER4", GRID, "square")
        fakes = [FakeWorkerClient(url) for url in URLS]
        arrivals = []
        self.coordinator(fakes).run(
            [job, job, other], on_entry=lambda i, e:
            arrivals.append((i, e.job.program_label)))
        assert sorted(arrivals) == [(0, "RD53"), (2, "ADDER4")]


class TestTopology:
    def test_urls_normalize_and_dedup(self):
        fake = FakeWorkerClient("http://worker-a:1")
        topology = ClusterTopology(
            ["http://worker-a:1/", "http://worker-a:1"],
            client_factory=lambda url: fake)
        assert len(topology) == 1
        assert topology.get("http://worker-a:1/").client is fake

    def test_probe_marks_dead_and_revives(self):
        fake = FakeWorkerClient(URLS[0])
        topology = ClusterTopology([URLS[0]],
                                   client_factory=lambda url: fake)
        assert [e.url for e in topology.probe_all()] == [URLS[0]]
        fake.dead = True
        assert topology.probe_all() == []
        assert not topology.get(URLS[0]).alive
        fake.dead = False
        assert len(topology.probe_all()) == 1, "recovered workers rejoin"

    def test_needs_at_least_one_endpoint(self):
        with pytest.raises(ClusterError):
            ClusterTopology([])

    def test_unknown_endpoint_lookup(self):
        topology = ClusterTopology([URLS[0]],
                                   client_factory=FakeWorkerClient)
        with pytest.raises(ClusterError):
            topology.get("http://nowhere:1")

    def test_fleet_stats_aggregates_and_flags_unreachable(self):
        fakes = {url: FakeWorkerClient(url) for url in URLS}
        topology = ClusterTopology(list(URLS),
                                   client_factory=fakes.__getitem__)
        job = CompileJob.for_benchmark("RD53", GRID, "square")
        ticket = fakes[URLS[0]].submit_async({"jobs": [job.to_dict()]})
        list(fakes[URLS[0]].iter_entries(ticket))
        stats = topology.fleet_stats()
        assert stats["registered"] == stats["reachable"] == 2
        by_url = {row["url"]: row for row in stats["workers"]}
        assert by_url[URLS[0]]["jobs_run"] == 1
        assert by_url[URLS[1]]["jobs_run"] == 0
        assert stats["fleet"]["jobs_run"] == 1
        assert stats["fleet"]["cache_misses"] == 1
        assert stats["fleet"]["queue_capacity"] == 128
        # A dead worker still gets a row (so the dashboard shows the
        # hole) but contributes nothing to the totals.
        fakes[URLS[1]].dead = True
        partial = topology.fleet_stats()
        assert partial["reachable"] == 1 and partial["registered"] == 2
        down = {row["url"]: row for row in partial["workers"]}[URLS[1]]
        assert down["reachable"] is False and "refused" in down["error"]
        assert partial["fleet"]["queue_capacity"] == 64

    def test_endpoint_stats_carry_weight(self):
        endpoint = WorkerEndpoint(URLS[0], client=object(), weight=2.5)
        assert endpoint.stats()["weight"] == 2.5
        assert WorkerEndpoint(URLS[0], client=object()).weight == 1.0


# ----------------------------------------------------------------------
# Real-HTTP integration: two live servers
# ----------------------------------------------------------------------
def start_cluster(count, tmp_path=None):
    servers, urls = [], []
    for index in range(count):
        cache_dir = str(tmp_path / f"cache-{index}") if tmp_path else None
        server = make_server("127.0.0.1", 0, workers=1,
                             cache_dir=cache_dir)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        urls.append("http://%s:%s" % server.server_address[:2])
    return servers, urls


def stop(server):
    server.shutdown()
    server.server_close()


class TestClusterHTTPIntegration:
    def test_two_server_sweep_is_byte_identical_and_warm_on_rerun(
            self, tmp_path):
        serial = Session().run(SPEC, isolate_failures=True)
        servers, urls = start_cluster(2, tmp_path)
        try:
            coordinator = ClusterCoordinator(urls)
            cold = coordinator.run(SPEC)
            assert cold.to_json() == serial.to_json()
            assert cold.to_csv() == serial.to_csv()
            # Same sweep again: fingerprint affinity keeps every job on
            # the server that already cached it.
            warm = ClusterCoordinator(urls).run(SPEC)
            assert all(entry.cached for entry in warm)
            assert warm.to_json() == serial.to_json()
        finally:
            for server in servers:
                stop(server)

    def test_completes_after_one_server_killed_mid_sweep(self, tmp_path):
        spec = SPEC.with_policies("eager", "square-laa")
        serial = Session().run(spec, isolate_failures=True)
        servers, urls = start_cluster(2, tmp_path)
        killed = []

        def kill_second_server(index, entry):
            if not killed:
                killed.append(True)
                threading.Thread(target=stop, args=(servers[1],),
                                 daemon=True).start()

        try:
            coordinator = ClusterCoordinator(urls, retry_delay=0.05)
            sweep = coordinator.run(spec, on_entry=kill_second_server)
            assert sweep.to_json() == serial.to_json()
            assert sweep.to_csv() == serial.to_csv()
        finally:
            stop(servers[0])

    def test_cli_cluster_sweep_matches_serial_cli_sweep(self, tmp_path):
        from repro.experiments.__main__ import main

        servers, urls = start_cluster(2)
        cluster_path = tmp_path / "cluster.json"
        serial_path = tmp_path / "serial.json"
        common = ["RD53", "ADDER4", "--policies", "lazy", "square",
                  "--grid", "5", "5", "--scale", "quick"]
        try:
            assert main(["cluster-sweep", *common,
                         "--endpoint", urls[0], "--endpoint", urls[1],
                         "--export", str(cluster_path)]) == 0
        finally:
            for server in servers:
                stop(server)
        assert main(["sweep", *common, "--export", str(serial_path)]) == 0
        assert cluster_path.read_bytes() == serial_path.read_bytes()

    def test_cli_cluster_stats_aggregates_live_fleet(self, capsys):
        from repro.experiments.__main__ import main

        servers, urls = start_cluster(2)
        try:
            ServiceClient(urls[0]).compile("RD53", machine=GRID,
                                           policy="square")
            assert main(["cluster-stats", "--endpoint", urls[0],
                         "--endpoint", urls[1]]) == 0
            out = capsys.readouterr().out
            assert "2/2 worker(s) reachable" in out
            assert "FLEET TOTAL" in out
        finally:
            for server in servers:
                stop(server)
        # The fleet stays inspectable with a hole in it.
        assert main(["cluster-stats", "--endpoint", urls[0]]) == 0
        out = capsys.readouterr().out
        assert "0/1 worker(s) reachable" in out and "DOWN" in out

    def test_cli_validation(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["cluster-sweep", "RD53"])  # no endpoints
        with pytest.raises(SystemExit):
            main(["sweep", "RD53", "--endpoint", "http://x:1"])
        with pytest.raises(SystemExit):
            main(["cluster-sweep", "RD53", "--endpoint", "http://x:1",
                  "--jobs", "4"])
