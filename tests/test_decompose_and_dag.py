"""Tests for Clifford+T decomposition and dependency-DAG analysis."""

import pytest

from repro.exceptions import UnknownGateError
from repro.ir.circuit import Circuit
from repro.ir.dag import (
    asap_layers,
    build_dependency_dag,
    critical_path,
    interaction_graph,
    parallelism_profile,
)
from repro.ir.decompose import (
    clifford_t_counts,
    cnot_count,
    decompose_circuit,
    decompose_gate,
    decompose_swap,
    decompose_toffoli,
    t_count,
)
from repro.ir.gates import make_gate
from repro.noise.statevector import simulate_statevector


class TestDecomposition:
    def test_toffoli_decomposition_length(self):
        assert len(decompose_toffoli(0, 1, 2)) == 15

    def test_toffoli_decomposition_is_equivalent_on_all_basis_states(self):
        reference = Circuit(3)
        reference.ccx(0, 1, 2)
        decomposed = decompose_circuit(reference)
        for basis in range(8):
            init = {w: (basis >> w) & 1 for w in range(3)}
            expected = simulate_statevector(reference, init)
            actual = simulate_statevector(decomposed, init)
            assert expected.fidelity_with(actual) == pytest.approx(1.0)

    def test_swap_is_three_cnots(self):
        assert [g.name for g in decompose_swap(0, 1)] == ["cx", "cx", "cx"]

    def test_native_gate_passthrough(self):
        gate = make_gate("h", (0,))
        assert decompose_gate(gate) == [gate]

    def test_counts_without_materialising(self):
        circuit = Circuit(3)
        circuit.ccx(0, 1, 2)
        circuit.swap(0, 1)
        counts = clifford_t_counts(circuit)
        assert counts["cx"] == 9
        assert t_count(circuit) == 7
        assert cnot_count(circuit) == 9

    def test_counts_match_materialised_decomposition(self):
        circuit = Circuit(4)
        circuit.ccx(0, 1, 2)
        circuit.cx(2, 3)
        circuit.swap(0, 3)
        materialised = decompose_circuit(circuit).gate_counts()
        assert dict(materialised) == clifford_t_counts(circuit)

    def test_measure_and_reset_pass_through(self):
        circuit = Circuit(1)
        circuit.measure(0)
        assert clifford_t_counts(circuit)["measure"] == 1
        gate = make_gate("reset", (0,))
        assert decompose_gate(gate) == [gate]


class TestDag:
    def _chain(self):
        circuit = Circuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.x(0)
        return circuit

    def test_dag_edges_follow_shared_qubits(self):
        graph = build_dependency_dag(self._chain())
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 2)
        assert not graph.has_edge(1, 2)

    def test_asap_layers(self):
        layers = asap_layers(self._chain())
        assert layers[0] == [0]
        assert sorted(layers[1]) == [1, 2]

    def test_critical_path_length_matches_depth(self):
        circuit = self._chain()
        assert len(critical_path(circuit)) == circuit.depth()

    def test_parallelism_profile(self):
        profile = parallelism_profile(self._chain())
        assert profile.total_gates == 3
        assert profile.depth == 2
        assert profile.max_width == 2

    def test_interaction_graph_weights(self):
        circuit = Circuit(3)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        graph = interaction_graph(circuit)
        assert graph[0][1]["weight"] == 3
        assert graph[1][2]["weight"] == 1

    def test_empty_circuit(self):
        profile = parallelism_profile(Circuit(2))
        assert profile.depth == 0
        assert critical_path(Circuit(2)) == []
