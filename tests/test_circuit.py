"""Unit tests for the flat circuit container."""

import pytest

from repro.exceptions import IrreversibleBlockError
from repro.ir.circuit import Circuit, concatenate
from repro.ir.gates import make_gate


class TestCircuitConstruction:
    def test_append_grows_wires(self):
        circuit = Circuit(1)
        circuit.cx(0, 5)
        assert circuit.num_qubits == 6

    def test_helpers_add_expected_gates(self):
        circuit = Circuit(3)
        circuit.x(0)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        circuit.swap(1, 2)
        circuit.h(0)
        assert [g.name for g in circuit] == ["x", "cx", "ccx", "swap", "h"]

    def test_compose_with_mapping(self):
        inner = Circuit(2)
        inner.cx(0, 1)
        outer = Circuit(4)
        outer.compose(inner, {0: 2, 1: 3})
        assert outer.gates[-1].qubits == (2, 3)

    def test_equality(self):
        a = Circuit(2)
        a.cx(0, 1)
        b = Circuit(2)
        b.cx(0, 1)
        assert a == b
        b.x(0)
        assert a != b


class TestCircuitAnalysis:
    def test_gate_counts(self):
        circuit = Circuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.x(0)
        assert circuit.gate_counts()["cx"] == 2
        assert circuit.count("x") == 1
        assert circuit.two_qubit_gate_count == 2

    def test_depth_independent_gates(self):
        circuit = Circuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        assert circuit.depth() == 1

    def test_depth_dependent_chain(self):
        circuit = Circuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(0, 1)
        assert circuit.depth() == 3

    def test_timed_depth_uses_durations(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        assert circuit.timed_depth() == 2

    def test_used_qubits(self):
        circuit = Circuit(5)
        circuit.cx(1, 3)
        assert circuit.used_qubits() == (1, 3)

    def test_is_classical(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        assert circuit.is_classical()
        circuit.h(0)
        assert not circuit.is_classical()


class TestCircuitTransforms:
    def test_inverse_reverses_and_inverts(self):
        circuit = Circuit(2)
        circuit.add("t", 0)
        circuit.cx(0, 1)
        inverse = circuit.inverse()
        assert [g.name for g in inverse] == ["cx", "tdg"]

    def test_inverse_rejects_measurement(self):
        circuit = Circuit(1)
        circuit.measure(0)
        with pytest.raises(IrreversibleBlockError):
            circuit.inverse()

    def test_remapped(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        remapped = circuit.remapped({0: 4, 1: 5}, num_qubits=6)
        assert remapped.gates[0].qubits == (4, 5)
        assert remapped.num_qubits == 6

    def test_concatenate(self):
        a = Circuit(2)
        a.x(0)
        b = Circuit(2)
        b.x(1)
        combined = concatenate([a, b])
        assert len(combined) == 2

    def test_to_text_contains_gates(self):
        circuit = Circuit(2, name="demo")
        circuit.cx(0, 1)
        text = circuit.to_text()
        assert "CX q0 q1" in text
        assert "demo" in text
