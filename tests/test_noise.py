"""Tests for the noise models, simulators and success-rate estimation."""

import math

import pytest

from repro.exceptions import SimulationError
from repro.arch.nisq import NISQMachine
from repro.core.compiler import compile_program
from repro.ir.circuit import Circuit
from repro.noise.analytical import estimate_success, success_rates
from repro.noise.models import NoiseModel, TABLE_IV_DEVICES, table_iv_rows
from repro.noise.monte_carlo import (
    MonteCarloSimulator,
    total_variation_distance,
    tvd_from_ideal,
)
from repro.noise.statevector import StateVector, simulate_statevector
from repro.workloads import rd53


class TestNoiseModel:
    def test_gate_error_by_arity(self):
        model = NoiseModel()
        assert model.gate_error(1) == model.single_qubit_error
        assert model.gate_error(2) == model.two_qubit_error
        assert model.gate_error(3) == pytest.approx(6 * model.two_qubit_error)

    def test_idle_flip_probability_monotone(self):
        model = NoiseModel()
        assert model.idle_flip_probability(0) == 0.0
        assert model.idle_flip_probability(10) < model.idle_flip_probability(1000)

    def test_table_iv_rows(self):
        rows = table_iv_rows()
        assert len(rows) == len(TABLE_IV_DEVICES) == 3
        assert any(row["device"] == "Our Simulation" for row in rows)


class TestStateVector:
    def test_bell_state_probabilities(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        state = simulate_statevector(circuit)
        probabilities = state.probabilities()
        assert probabilities[0b00] == pytest.approx(0.5)
        assert probabilities[0b11] == pytest.approx(0.5)

    def test_classical_circuit_gives_basis_state(self):
        circuit = Circuit(3)
        circuit.x(0)
        circuit.ccx(0, 1, 2)
        circuit.cx(0, 1)
        state = simulate_statevector(circuit)
        probabilities = state.probabilities()
        assert probabilities[0b011] == pytest.approx(1.0)

    def test_marginal_probabilities(self):
        circuit = Circuit(2)
        circuit.h(0)
        state = simulate_statevector(circuit)
        marginal = state.marginal_probabilities([0])
        assert marginal[0] == pytest.approx(0.5)
        assert marginal[1] == pytest.approx(0.5)

    def test_sampling_matches_distribution(self):
        import numpy as np

        circuit = Circuit(1)
        circuit.x(0)
        state = simulate_statevector(circuit)
        counts = state.sample(100, rng=np.random.default_rng(1))
        assert counts == {1: 100}

    def test_fidelity_of_same_state_is_one(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        a = simulate_statevector(circuit)
        assert a.fidelity_with(a.copy()) == pytest.approx(1.0)

    def test_too_many_qubits_rejected(self):
        with pytest.raises(SimulationError):
            StateVector(30)

    def test_measure_rejected(self):
        circuit = Circuit(1)
        circuit.measure(0)
        with pytest.raises(SimulationError):
            simulate_statevector(circuit)


class TestMonteCarlo:
    def _noisefree_model(self):
        from repro.arch.nisq import NoiseParameters

        return NoiseModel(parameters=NoiseParameters(
            single_qubit_error=0.0, two_qubit_error=0.0,
            t1_us=1e12, t2_us=1e12, gate_time_us=0.05))

    def test_zero_noise_gives_ideal_outcome(self):
        circuit = Circuit(3)
        circuit.x(0)
        circuit.ccx(0, 1, 2)
        simulator = MonteCarloSimulator(noise_model=self._noisefree_model(), seed=3)
        result = simulator.run(circuit, shots=64)
        assert result.success_probability() == 1.0
        assert tvd_from_ideal(result) == 0.0

    def test_noise_increases_tvd_with_circuit_size(self):
        small = Circuit(2)
        small.cx(0, 1)
        large = Circuit(2)
        for _ in range(200):
            large.cx(0, 1)
        simulator = MonteCarloSimulator(seed=5)
        tvd_small = tvd_from_ideal(simulator.run(small, shots=512))
        tvd_large = tvd_from_ideal(simulator.run(large, shots=512))
        assert tvd_large > tvd_small

    def test_measured_wires_subset(self):
        circuit = Circuit(3)
        circuit.x(2)
        simulator = MonteCarloSimulator(noise_model=self._noisefree_model())
        result = simulator.run(circuit, shots=16, measured_wires=[2])
        assert result.ideal_outcome == 1

    def test_nonclassical_circuit_rejected(self):
        circuit = Circuit(1)
        circuit.h(0)
        with pytest.raises(SimulationError):
            MonteCarloSimulator().run(circuit, shots=8)

    def test_reproducible_with_seed(self):
        circuit = Circuit(2)
        for _ in range(20):
            circuit.cx(0, 1)
        first = MonteCarloSimulator(seed=11).run(circuit, shots=128)
        second = MonteCarloSimulator(seed=11).run(circuit, shots=128)
        assert first.counts == second.counts

    def test_total_variation_distance_bounds(self):
        assert total_variation_distance({0: 1.0}, {0: 1.0}) == 0.0
        assert total_variation_distance({0: 1.0}, {1: 1.0}) == 1.0
        assert total_variation_distance({0: 0.5, 1: 0.5}, {0: 1.0}) == pytest.approx(0.5)


class TestAnalyticalSuccess:
    def test_estimate_components_in_unit_interval(self):
        program = rd53()
        result = compile_program(program, NISQMachine.grid(5, 5), policy="square")
        estimate = estimate_success(result)
        assert 0.0 < estimate.gate_success <= 1.0
        assert 0.0 < estimate.coherence <= 1.0
        assert 0.0 < estimate.total <= 1.0

    def test_success_rates_ranking_tracks_depth(self):
        program = rd53()
        results = {}
        for policy in ("lazy", "eager", "square"):
            machine = NISQMachine.grid(5, 5)
            results[policy] = compile_program(program, machine, policy=policy,
                                              decompose_toffoli=True)
        rates = success_rates(results)
        assert set(rates) == {"lazy", "eager", "square"}
        shallowest = min(results, key=lambda p: results[p].circuit_depth)
        assert rates[shallowest] == max(rates.values())

    def test_lower_noise_gives_higher_success(self):
        from repro.arch.nisq import NoiseParameters

        program = rd53()
        result = compile_program(program, NISQMachine.grid(5, 5), policy="square")
        noisy = estimate_success(result, NoiseModel()).total
        clean = estimate_success(result, NoiseModel(parameters=NoiseParameters(
            single_qubit_error=1e-6, two_qubit_error=1e-5,
            t1_us=1e9, t2_us=1e9, gate_time_us=0.05))).total
        assert clean > noisy
