"""Tracing & profiling demo: span waterfalls and the compile-path profiler.

Walks the PR-9 observability story end to end, over real HTTP:

1. start a two-worker fleet and run a cluster sweep under the
   coordinator's single trace id,
2. fetch ``GET /trace/<id>`` from one worker and assert the span
   hierarchy a job leaves behind (``server.handle`` -> ``queue.wait`` +
   ``job.run`` -> ``session.compile`` -> ``compile`` -> ``phase.*``),
3. merge the whole fleet's spans with
   :meth:`~repro.cluster.ClusterCoordinator.collect_trace` and render
   the ASCII waterfall — every shard appears as an ``@worker`` suffix
   and rendering is deterministic,
4. profile the same benchmarks in-process with
   :func:`~repro.profile.profile_benchmarks` and print the ranked
   hotspot table (machine-independent work counters: gates, swaps,
   liveness segments, reclamation ops).

Every step asserts what it claims, so CI can run this file as the
tracing smoke test.  Run with::

    python examples/tracing_demo.py
"""

from __future__ import annotations

import threading

from repro.api import CompileJob, MachineSpec
from repro.cluster import ClusterCoordinator
from repro.profile import profile_benchmarks
from repro.service import ServiceClient, make_server
from repro.telemetry import render_waterfall

GRID = MachineSpec.nisq_grid(5, 5)
BENCHMARKS = ("RD53", "6SYM", "2OF5", "ADDER4")


def start_server():
    server = make_server("127.0.0.1", 0, workers=1, queue_size=16)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


def main() -> None:
    servers, urls = [], []
    for _ in range(2):
        server, url = start_server()
        servers.append(server)
        urls.append(url)
    print(f"fleet up     : {urls[0]} and {urls[1]}")

    try:
        # --- 1. one sweep, one trace id ----------------------------------
        coordinator = ClusterCoordinator(urls)
        jobs = [CompileJob.for_benchmark(name, GRID, "square")
                for name in BENCHMARKS]
        result = coordinator.run(jobs)
        assert all(entry.error is None for entry in result.entries)
        trace_id = coordinator.trace_id
        print(f"sweep        : {len(result.entries)} jobs under trace "
              f"{trace_id}")

        # --- 2. one worker's spans tell the job's whole story ------------
        payload = ServiceClient(urls[0]).trace(trace_id)
        names = {span["name"] for span in payload["spans"]}
        assert {"server.handle", "queue.wait", "job.run",
                "session.compile", "compile"} <= names, names
        assert any(name.startswith("phase.") for name in names), names
        assert {span["trace_id"] for span in payload["spans"]} == {trace_id}
        print(f"worker trace : {payload['count']} spans on shard 1, "
              f"full handle->queue->compile->phase chain present")

        # --- 3. fleet merge + deterministic waterfall ---------------------
        merged = coordinator.collect_trace()
        workers = {span["worker"] for span in merged["spans"]}
        assert workers == set(urls), workers
        assert all(info["reachable"] for info in
                   merged["workers"].values())
        waterfall = render_waterfall(merged["spans"])
        again = render_waterfall(list(reversed(merged["spans"])))
        assert waterfall == again, "waterfall must render deterministically"
        for url in urls:
            assert f"@{url}" in waterfall
        print(f"fleet trace  : {merged['count']} spans merged from "
              f"{len(workers)} shards; waterfall below\n")
        print(waterfall)

        # --- 4. the compile-path profiler ---------------------------------
        report = profile_benchmarks(BENCHMARKS, GRID, policies=("square",),
                                    scale="quick")
        assert len(report) == len(BENCHMARKS)
        top = report.hotspots(top=1)[0]
        assert top["seconds"] > 0 and top["rate"] > 0
        print(report.table("square policy, quick scale"))
        print(f"hotspot      : {top['label']} {top['phase']} "
              f"({top['share']:.0%} of compile time, "
              f"{top['rate']:.0f} {top['unit']}/s)")
    finally:
        for server in servers:
            server.shutdown()
            server.server_close()

    print("tracing demo OK")


if __name__ == "__main__":
    main()
