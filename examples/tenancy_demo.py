"""Multi-tenancy demo: API keys, fair-share scheduling, crash recovery.

Walks the tenancy story end to end, over real HTTP:

1. start a server with a tenant registry (``--tenants``-style JSON file)
   and a durable job journal (``--store-dir``),
2. authenticate: an unknown API key is a 401, a keyless client still
   works as the anonymous tenant,
3. fair-share scheduling: while one worker is busy, ``alice`` floods the
   queue and ``bob`` submits a single job afterwards — bob's job runs
   *before* alice's backlog because alice's burst score outweighs her
   head start,
4. per-tenant quotas: alice's flood hits her ``max_queued`` cap and gets
   a structured 429 naming her — bob and anonymous keep submitting,
5. durability: crash the server (journal frozen, no graceful drain) with
   a sweep RUNNING and compiles QUEUED, restart a fresh process on the
   same store directory, and verify every pre-crash ticket completes,
   the pre-crash DONE result is byte-identical, and ``/stats`` reports
   the recovery.

Every step asserts what it claims, so CI runs this file as the tenancy
smoke test (under a hard timeout: a wedged recovery fails the build
instead of hanging it).  Run with::

    python examples/tenancy_demo.py [store_dir]
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import CompileJob, MachineSpec, SweepSpec
from repro.exceptions import AuthError, QuotaExceededError
from repro.service import ServiceClient, make_server

GRID = MachineSpec.nisq_grid(5, 5)
QUICK = CompileJob.for_benchmark("RD53", GRID, "square")
FLOOD = [CompileJob.for_benchmark("ADDER4", GRID, "eager"),
         CompileJob.for_benchmark("ADDER4", GRID, "lazy")]
OVERFLOW = CompileJob.for_benchmark("6SYM", GRID, "eager")
AFTER_FLOOD = CompileJob.for_benchmark("RD53", GRID, "lazy")
#: Occupies the single worker while the demo queues work behind it.
BUSY_A = (SweepSpec().with_benchmarks("RD53", "ADDER4")
          .with_machines(GRID).with_policies("eager", "lazy"))
BUSY_B = (SweepSpec().with_benchmarks("6SYM")
          .with_machines(GRID).with_policies("eager", "lazy", "square"))

TENANTS = {
    "tenants": [
        {"name": "alice", "role": "standard", "api_key": "ak-alice",
         "max_queued": 2},
        {"name": "bob", "role": "standard", "api_key": "ak-bob"},
    ],
}


def start_server(tenants_path: str, store_dir: str):
    """One-worker server with a registry file and a durable journal."""
    server = make_server("127.0.0.1", 0, workers=1, queue_size=16,
                         tenants=tenants_path, store_dir=store_dir)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


def slow_down_sweeps(service, seconds: float) -> None:
    """Pad sweep jobs so the single worker stays busy deterministically.

    Quick-scale compiles finish in milliseconds — too fast to observe
    queue contention over real HTTP.  Padding the worker (not the wire)
    keeps every queue/scheduler/journal interaction genuine.
    """
    original = service.manager._runner

    def slow_runner(job):
        if job.kind == "sweep":
            time.sleep(seconds)
        return original(job)

    service.manager._runner = slow_runner


def stop_server(server) -> None:
    server.shutdown()
    server.server_close()


def crash_server(server) -> None:
    """Kill without draining: freeze the journal, drop the queue."""
    server.service.close(hard=True)
    server.shutdown()
    server.server_close()  # close() is a no-op after a crash


def main() -> None:
    root = Path(sys.argv[1] if len(sys.argv) > 1
                else tempfile.mkdtemp(prefix="repro-tenancy-demo-"))
    root.mkdir(parents=True, exist_ok=True)
    store_dir = str(root / "jobs")
    tenants_path = str(root / "tenants.json")
    Path(tenants_path).write_text(json.dumps(TENANTS, indent=2))
    print(f"store directory: {store_dir}")

    server, url = start_server(tenants_path, store_dir)
    slow_down_sweeps(server.service, 0.8)
    alice = ServiceClient(url, api_key="ak-alice")
    bob = ServiceClient(url, api_key="ak-bob")
    anonymous = ServiceClient(url)
    print(f"server 1 up at {url}: {anonymous.health()['status']}")

    # --- authentication ------------------------------------------------
    try:
        ServiceClient(url, api_key="ak-mallory").health()
        raise AssertionError("unknown API key must be rejected")
    except AuthError as error:
        assert error.http_status == 401
        print("auth         : unknown key rejected with 401")
    assert anonymous.compile_job(QUICK)["ok"]
    print("anonymous    : keyless client compiles as 'anonymous'")

    # --- a result to survive the crash, finished up front --------------
    durable = alice.submit_async(QUICK)
    durable_record = alice.wait_for(durable, timeout=120)
    assert durable_record["state"] == "DONE"
    print(f"durable job  : {durable} DONE (will be re-served post-crash)")

    # --- fair share: bob's single job overtakes alice's flood ----------
    # The busy sweep comes from *anonymous* so its burst cost (4 expanded
    # jobs) lands on neither contender; bob stays quiet until the end.
    busy = anonymous.submit_async(BUSY_A)    # occupies the one worker
    flood_tickets = [alice.submit_async(job) for job in FLOOD]
    try:
        alice.submit_async(OVERFLOW)         # 3rd queued job, cap is 2
        raise AssertionError("alice's flood must hit her quota")
    except QuotaExceededError as error:
        assert error.http_status == 429 and error.tenant == "alice"
        assert error.capacity == 2
        print(f"quota        : alice's 3rd queued job -> 429 "
              f"(depth {error.depth}/{error.capacity}); others unaffected")
    bob_ticket = bob.submit_async(AFTER_FLOOD)   # submitted last

    for ticket in [busy, bob_ticket] + flood_tickets:
        record = bob.wait_for(ticket, timeout=300)
        assert record["state"] == "DONE", record
    bob_started = bob.poll(bob_ticket)["started_at"]
    flood_started = [alice.poll(ticket)["started_at"]
                     for ticket in flood_tickets]
    assert all(bob_started < started for started in flood_started), \
        "fair share must run bob's single job before alice's flood"
    print("fair share   : bob's job (submitted last) ran before "
          "alice's flooded backlog")
    burst = bob.stats()["tenants"]["alice"]["burst_score"]
    assert burst > 0, "alice's burst score must still be decaying"
    print(f"burst score  : alice={burst:.2f}, decaying with half-life")

    # --- crash with work in flight ------------------------------------
    running = bob.submit_async(BUSY_B)       # occupies the worker again
    queued = [alice.submit_async(job) for job in FLOOD]
    queued.append(bob.submit_async(AFTER_FLOOD))
    time.sleep(0.2)                          # let the worker pick up BUSY_B
    crash_server(server)
    print(f"crash        : server killed with 1 job RUNNING, "
          f"{len(queued)} QUEUED (journal frozen, no drain)")

    # --- restart on the same store directory ---------------------------
    server2, url2 = start_server(tenants_path, store_dir)
    alice2 = ServiceClient(url2, api_key="ak-alice")
    recovery = alice2.stats()["queue"]["recovery"]
    recovered = (recovery["resumed_queued"] + recovery["requeued_running"]
                 + recovery["recovered_terminal"])
    assert recovered >= 5, recovery
    print(f"server 2 up at {url2} (fresh process, same store): "
          f"resumed_queued={recovery['resumed_queued']} "
          f"requeued_running={recovery['requeued_running']} "
          f"recovered_terminal={recovery['recovered_terminal']}")

    restored = alice2.poll(durable)
    assert json.dumps(restored, sort_keys=True) \
        == json.dumps(durable_record, sort_keys=True), \
        "pre-crash DONE record must be served byte-identically"
    print(f"byte-identical: {durable} re-served from the journal")

    for ticket in [running] + queued:
        record = alice2.wait_for(ticket, timeout=300)
        assert record["state"] == "DONE", record
    requeued = alice2.poll(running)
    assert requeued["retries"] == 1, requeued
    print(f"resumed      : all {1 + len(queued)} pre-crash jobs "
          f"completed after restart ({running} requeued once)")
    stop_server(server2)

    print("tenancy demo OK")


if __name__ == "__main__":
    main()
