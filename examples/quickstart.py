"""Quickstart: write a modular reversible function, compile it with SQUARE.

Builds the Compute-Store-Uncompute function of Figure 6 in the paper,
wraps it in a small program, then submits compilation through the
``repro.api`` service: a single :class:`~repro.Session` compiles the
program under every ancilla-reuse policy (in parallel if you pass a
worker count), and a registry sweep shows the same service driving the
built-in benchmarks.

The same session scales up from here without code changes:

* ``Session(jobs=4, cache_dir="~/.cache/repro")`` adds a persistent
  disk cache, so repeated sweeps survive process restarts;
* ``python -m repro.experiments serve --workers 4 --cache-dir
  ~/.cache/repro`` exposes the session over HTTP behind an
  asynchronous job queue, and :class:`repro.service.ServiceClient`
  mirrors the session surface remotely — synchronously
  (``client.compile``/``client.run``) or asynchronously
  (``client.submit_async`` → ``client.wait_for``); see
  ``examples/service_demo.py`` for the full tour.

Run with:  python examples/quickstart.py [jobs]
"""

from __future__ import annotations

import sys

from repro import MachineSpec, Program, QModule, Session, SweepSpec
from repro.analysis import format_table
from repro.ir import ModuleBuilder


def build_fun1() -> QModule:
    """The example function of Figure 6: one ancilla, auto-uncomputed."""
    builder = ModuleBuilder("fun1", num_inputs=3, num_outputs=1, num_ancilla=1)
    inputs, outputs, ancilla = builder.inputs, builder.outputs, builder.ancillas
    with builder.compute():
        builder.ccx(inputs[0], inputs[1], inputs[2])
        builder.cx(inputs[2], ancilla[0])
        builder.ccx(inputs[1], inputs[0], ancilla[0])
    with builder.store():
        builder.cx(ancilla[0], outputs[0])
    builder.auto_uncompute()          # the Inverse() of Figure 6
    return builder.build()


def build_program() -> Program:
    """A top-level module that calls fun1 twice on shared inputs."""
    fun1 = build_fun1()
    main = QModule("main", num_inputs=3, num_outputs=2, num_ancilla=0)
    inputs, outputs = main.inputs, main.outputs
    main.call(fun1, inputs[0], inputs[1], inputs[2], outputs[0])
    main.call(fun1, inputs[1], inputs[0], inputs[2], outputs[1])
    return Program(main, name="quickstart")


def main(jobs: int = 1) -> None:
    program = build_program()
    program.validate()
    print(f"program: {program.name}, modules={len(program.modules())}, "
          f"levels={program.num_levels()}\n")

    # One session for everything: memoized, optionally parallel.
    session = Session(jobs=jobs)
    machine = MachineSpec.nisq_grid(4, 4)

    # Compile the in-memory program under every policy through the session.
    rows = []
    for policy in ("lazy", "eager", "square-laa", "square"):
        result = session.compile(program, machine=machine, policy=policy)
        rows.append({
            "policy": policy,
            "gates": result.gate_count,
            "swaps": result.swap_count,
            "qubits": result.num_qubits_used,
            "depth": result.circuit_depth,
            "AQV": result.active_quantum_volume,
            "reclaimed": result.num_reclaimed,
            "deferred": result.num_deferred,
        })
    print(format_table(rows))
    best = min(rows, key=lambda row: row["AQV"])
    print(f"\nlowest active quantum volume: {best['policy']} ({best['AQV']})")

    # The same session also drives registry benchmarks, as a sweep.
    sweep = session.run(SweepSpec()
                        .with_benchmarks("RD53", "ADDER4")
                        .with_machines(MachineSpec.nisq_grid(5, 5))
                        .with_policies("lazy", "square")
                        .with_config(decompose_toffoli=True))
    print()
    print(sweep.table("Registry sweep through the same session"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
