"""Noise study of a Grover-style oracle on a NISQ lattice (Figure 8 style).

The 2OF5 oracle (output = 1 iff exactly two of five inputs are set) is the
kind of reversible predicate a Grover search would query.  This example
compiles it under each ancilla-reuse policy on a 5x5 lattice, runs the
compiled circuit (router swaps included) through the stochastic noise
simulator with the Table IV noise model, and reports:

* the analytical worst-case success rate (Figure 8b style), and
* the total variation distance between noisy and ideal outputs
  (Figure 8c style).

Run with:  python examples/grover_oracle_noise.py [shots]
"""

from __future__ import annotations

import sys

from repro import NISQMachine, compile_program
from repro.analysis import format_table
from repro.noise import MonteCarloSimulator, estimate_success, tvd_from_ideal
from repro.workloads import two_of_five


def main(shots: int = 2048) -> None:
    program = two_of_five()
    simulator = MonteCarloSimulator(seed=7)
    rows = []
    for policy in ("lazy", "eager", "square"):
        machine = NISQMachine.grid(5, 5)
        result = compile_program(program, machine, policy=policy,
                                 record_schedule=True)
        # Physical circuit: wires are lattice sites, swaps included.
        circuit = result.to_circuit(physical=True)
        noisy = simulator.run(circuit, shots=shots,
                              measured_wires=result.entry_param_sites())
        estimate = estimate_success(result)
        rows.append({
            "policy": policy,
            "gates": result.gate_count,
            "swaps": result.swap_count,
            "AQV": result.active_quantum_volume,
            "analytical success": estimate.total,
            "noisy-run TVD": tvd_from_ideal(noisy),
        })
    print(f"2OF5 oracle on a 5x5 lattice, {shots} noisy shots per policy\n")
    print(format_table(rows))
    best = min(rows, key=lambda row: row["noisy-run TVD"])
    print(f"\nlowest total variation distance: {best['policy']}")


if __name__ == "__main__":
    shots = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    main(shots)
