"""Profile the modular-exponentiation workload (Figure 1 of the paper).

Shor's algorithm spends nearly all of its time in modular exponentiation.
This example compiles the MODEXP workload under Eager, Lazy and SQUARE,
prints qubit-usage-over-time curves as ASCII art and reports the active
quantum volume of each policy — reproducing the paper's motivating
figure at laptop scale.

Run with:  python examples/shor_modexp_profile.py [width] [exponent_bits]
"""

from __future__ import annotations

import sys

from repro import NISQMachine, compile_program
from repro.analysis import ascii_plot, format_table, usage_curve
from repro.experiments.runner import compile_with_autosize, nisq_machine_factory
from repro.workloads import modexp_program


def main(width: int = 3, exponent_bits: int = 3) -> None:
    program = modexp_program(width=width, exponent_bits=exponent_bits)
    print(f"MODEXP width={width}, exponent bits={exponent_bits}: "
          f"{program.static_gate_count()} forward gates, "
          f"{len(program.modules())} modules, {program.num_levels()} levels\n")

    curves = []
    rows = []
    for policy in ("eager", "lazy", "square"):
        result = compile_with_autosize(program, policy, nisq_machine_factory(),
                                       start_qubits=64)
        curves.append(usage_curve(result, label=policy))
        rows.append({
            "policy": policy,
            "peak qubits": result.peak_live_qubits,
            "total time": result.circuit_depth,
            "gates": result.gate_count,
            "swaps": result.swap_count,
            "AQV": result.active_quantum_volume,
        })

    print(format_table(rows))
    print("\nQubit usage over time (area under each curve = its AQV):\n")
    print(ascii_plot(curves))


if __name__ == "__main__":
    arguments = [int(value) for value in sys.argv[1:3]]
    main(*arguments)
