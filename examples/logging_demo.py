"""Structured-logging demo: one trace id, the whole fleet's story.

Walks the PR-10 observability story end to end, over real HTTP:

1. start a two-worker fleet and run a cluster sweep under the
   coordinator's single trace id,
2. query one worker's ``GET /logs?trace=`` and assert the correlated
   event chain a job leaves behind (http access line, queue push/pop,
   worker pickup, manager done — every one stamped with the same
   trace id),
3. merge the whole fleet's events with
   :meth:`~repro.cluster.ClusterCoordinator.collect_logs` — both
   workers contribute, every record carries its ``worker`` tag, and
   ``(worker, event_id)`` dedup keeps the merge stable,
4. interleave the merged events into the merged span waterfall and
   assert the rendering is byte-deterministic,
5. reject a bogus API key and find the tenancy auth warning in the
   log, then exercise the rotating JSONL sink and its
   torn-tail-tolerant reader.

Every step asserts what it claims, so CI can run this file as the
logging smoke test.  Run with::

    python examples/logging_demo.py
"""

from __future__ import annotations

import os
import tempfile
import threading

from repro.api import CompileJob, MachineSpec
from repro.cluster import ClusterCoordinator
from repro.exceptions import ServiceError
from repro.service import ServiceClient, make_server
from repro.telemetry import read_events, render_waterfall

GRID = MachineSpec.nisq_grid(5, 5)
BENCHMARKS = ("RD53", "6SYM", "2OF5", "ADDER4")


def start_server(**kwargs):
    server = make_server("127.0.0.1", 0, workers=1, queue_size=16,
                         **kwargs)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


def main() -> None:
    servers, urls = [], []
    for _ in range(2):
        server, url = start_server()
        servers.append(server)
        urls.append(url)
    print(f"fleet up     : {urls[0]} and {urls[1]}")

    try:
        # --- 1. one sweep, one trace id ----------------------------------
        coordinator = ClusterCoordinator(urls)
        jobs = [CompileJob.for_benchmark(name, GRID, "square")
                for name in BENCHMARKS]
        result = coordinator.run(jobs)
        assert all(entry.error is None for entry in result.entries)
        trace_id = coordinator.trace_id
        print(f"sweep        : {len(result.entries)} jobs under trace "
              f"{trace_id}")

        # --- 2. one worker's events tell one shard's story ----------------
        payload = ServiceClient(urls[0]).logs(trace_id)
        components = {event["component"] for event in payload["events"]}
        assert {"http", "queue", "worker", "manager"} <= components, \
            components
        assert all(event["trace_id"] == trace_id
                   for event in payload["events"])
        job_ids = {event["job_id"] for event in payload["events"]
                   if event["job_id"]}
        assert job_ids, "queue/worker/manager events must carry job ids"
        print(f"worker logs  : {payload['count']} events on shard 1, "
              f"components {sorted(components)}")

        # --- 3. fleet merge: both shards, worker tags, stable dedup ------
        merged = coordinator.collect_logs()
        workers = {event["worker"] for event in merged["events"]}
        assert workers == set(urls), workers
        assert all(info["reachable"] for info in merged["workers"].values())
        keys = [(event["worker"], event["event_id"])
                for event in merged["events"]]
        assert len(keys) == len(set(keys)), "fleet merge must dedup"
        again = coordinator.collect_logs()
        assert [e["event_id"] for e in merged["events"]] == \
            [e["event_id"] for e in again["events"]], \
            "fleet merge order must be deterministic"
        print(f"fleet logs   : {merged['count']} events merged from "
              f"{len(workers)} shards")

        # --- 4. events interleave into the span waterfall ----------------
        spans = coordinator.collect_trace()["spans"]
        waterfall = render_waterfall(spans, events=merged["events"])
        flipped = render_waterfall(list(reversed(spans)),
                                   events=list(reversed(merged["events"])))
        assert waterfall == flipped, \
            "waterfall + events must render byte-deterministically"
        assert "* info: worker picked up job" in waterfall
        assert "event(s)" in waterfall.splitlines()[0]
        print("waterfall    : events interleaved deterministically\n")
        print(waterfall)

        # --- 5. a rejected key leaves a tenancy warning ------------------
        try:
            ServiceClient(urls[0], api_key="bogus-key").stats()
            raise AssertionError("bogus key must be rejected")
        except ServiceError:
            pass
        warned = ServiceClient(urls[0]).logs("", level="WARNING")
        assert any(event["component"] == "tenancy"
                   for event in warned["events"]), warned["events"]
        print("tenancy      : rejected key narrated as a WARNING event")
    finally:
        for server in servers:
            server.shutdown()
            server.server_close()

    # --- 6. the JSONL sink survives a torn tail --------------------------
    with tempfile.TemporaryDirectory() as tmp:
        log_path = os.path.join(tmp, "events.jsonl")
        server, url = start_server(log_path=log_path)
        try:
            client = ServiceClient(url)
            client.submit(CompileJob.for_benchmark("RD53", GRID, "square"))
        finally:
            server.shutdown()
            server.server_close()
        with open(log_path, "a", encoding="utf-8") as stream:
            stream.write('{"torn": ')  # kill -9 mid-append
        replay = read_events(log_path)
        assert replay["version"] == 1
        assert replay["torn_lines"] == 1
        messages = {event["message"] for event in replay["events"]}
        assert "worker picked up job" in messages, messages
        print(f"jsonl sink   : {len(replay['events'])} events replayed, "
              f"{replay['torn_lines']} torn line tolerated")

    print("logging demo OK")


if __name__ == "__main__":
    main()
