"""NISQ swaps vs fault-tolerant braiding for the same workload (Fig 9 vs 10).

Compiles the SHA-2 round workload onto (a) a lattice NISQ machine where
communication is resolved by swap chains and (b) a surface-code FT machine
where communication is resolved by braids, under every reuse policy, and
compares the resulting active quantum volume and communication costs —
illustrating why the same program wants different reclamation strategies
on different machines (Section III-A of the paper).

Run with:  python examples/ft_braiding_comparison.py
"""

from __future__ import annotations

from repro import compile_program
from repro.analysis import format_table, normalized_aqv
from repro.experiments.runner import (
    compile_with_autosize,
    ft_machine_factory,
    nisq_machine_factory,
)
from repro.workloads import sha2_program


def main() -> None:
    program = sha2_program(word_width=4, rounds=2)
    print(f"SHA2 (word width 4, 2 rounds): {program.static_gate_count()} "
          f"forward gates, {len(program.modules())} modules\n")

    for label, factory in (("NISQ lattice (swap chains)", nisq_machine_factory()),
                           ("FT surface code (braiding)", ft_machine_factory())):
        results = {}
        rows = []
        for policy in ("lazy", "eager", "square"):
            result = compile_with_autosize(program, policy, factory,
                                           start_qubits=64)
            results[policy] = result
            rows.append({
                "policy": policy,
                "gates": result.gate_count,
                "swaps": result.swap_count,
                "comm cost": round(result.total_comm_cost, 1),
                "qubits": result.num_qubits_used,
                "AQV": result.active_quantum_volume,
            })
        normalized = normalized_aqv(results, baseline="lazy")
        print(label)
        print(format_table(rows))
        print("AQV normalised to Lazy: "
              + ", ".join(f"{policy}={value:.2f}"
                          for policy, value in normalized.items()))
        print()


if __name__ == "__main__":
    main()
