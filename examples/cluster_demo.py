"""Cluster-mode demo: one sweep sharded across two compile servers.

Walks the multi-server story end to end, over real HTTP:

1. run the reference sweep serially in one in-process session,
2. start two compile servers (separate cache directories, as separate
   machines would have),
3. stream a sweep's per-entry results from one server: the first entry
   arrives over ``GET /jobs/<id>/entries`` long-polls *before* the
   whole batch finishes compiling,
4. run the same sweep through a :class:`~repro.cluster.ClusterCoordinator`
   — jobs shard across both servers by fingerprint hash, entries stream
   back as workers finish them, and the merged result exports
   byte-identical JSON/CSV to the serial run,
5. kill one server mid-sweep: the coordinator re-dispatches its
   unfinished jobs to the survivor and the merged result is *still*
   byte-identical to the serial run.

Every step asserts what it claims, so CI runs this file as the cluster
smoke test (under a hard timeout: a wedged stream or coordinator fails
the build instead of hanging it).  Run with::

    python examples/cluster_demo.py [cache_base_dir]
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import MachineSpec, Session, SweepSpec
from repro.cluster import ClusterCoordinator
from repro.service import ServiceClient, make_server

GRID = MachineSpec.nisq_grid(5, 5)
SPEC = (SweepSpec()
        .with_benchmarks("RD53", "ADDER4", "6SYM")
        .with_machines(GRID)
        .with_policies("lazy", "square"))
#: Fresh work for the kill-a-worker section (different policies, so
#: nothing is served from the servers' now-warm caches).
KILL_SPEC = SPEC.with_policies("eager", "square-laa")


def start_server(cache_dir: str):
    """One compile server on an ephemeral port; returns (server, url)."""
    server = make_server("127.0.0.1", 0, cache_dir=cache_dir, workers=1)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


def stop_server(server) -> None:
    server.shutdown()
    server.server_close()


def main() -> None:
    base = Path(sys.argv[1] if len(sys.argv) > 1
                else tempfile.mkdtemp(prefix="repro-cluster-demo-"))
    print(f"cache base directory: {base}")

    # --- reference: the same sweep, serially, in one session -----------
    serial = Session().run(SPEC, isolate_failures=True)
    serial_kill = Session().run(KILL_SPEC, isolate_failures=True)
    print(f"serial reference: {len(serial)} + {len(serial_kill)} entries")

    # --- two servers, as two machines would run them -------------------
    server_a, url_a = start_server(str(base / "cache-a"))
    server_b, url_b = start_server(str(base / "cache-b"))
    print(f"servers up at {url_a} and {url_b}")

    # --- streaming: first entry long before the batch finishes ---------
    client = ServiceClient(url_a)
    ticket = client.submit_async(SPEC)
    first_entry_at = None
    streamed = []
    for index, record in client.iter_entries(ticket):
        if first_entry_at is None:
            first_entry_at = time.time()
        streamed.append((index, record["benchmark"], record["policy"]))
    final = client.poll(ticket)
    assert final["state"] == "DONE" and len(streamed) == len(SPEC)
    assert [index for index, *_ in streamed] == list(range(len(SPEC))), \
        "the entry cursor must deliver every entry exactly once, in order"
    lead = final["finished_at"] - first_entry_at
    assert lead > 0, "first entry must arrive before the batch finishes"
    print(f"streaming    : first of {len(streamed)} entries arrived "
          f"{lead * 1000:.0f} ms before the batch finished")

    # --- cluster sweep across both servers -----------------------------
    arrivals = []
    coordinator = ClusterCoordinator([url_a, url_b])
    sweep = coordinator.run(SPEC, on_entry=lambda index, entry:
                            arrivals.append(index))
    stats = coordinator.stats()
    assert len(arrivals) == len(SPEC), "every entry streams exactly once"
    assert sweep.to_json() == serial.to_json(), \
        "cluster JSON export must be byte-identical to the serial run"
    assert sweep.to_csv() == serial.to_csv(), \
        "cluster CSV export must be byte-identical to the serial run"
    print(f"cluster sweep: {len(sweep)} entries from "
          f"{stats['topology']['alive']} workers in "
          f"{stats['rounds_run']} round(s) — exports byte-identical "
          f"to serial")

    # --- kill one worker mid-sweep: the sweep still completes ----------
    killed = []

    def kill_server_b(index, entry) -> None:
        if not killed:
            killed.append(True)
            threading.Thread(target=stop_server, args=(server_b,),
                             daemon=True).start()

    survivor = ClusterCoordinator([url_a, url_b], retry_delay=0.05)
    healed = survivor.run(KILL_SPEC, on_entry=kill_server_b)
    stats = survivor.stats()
    assert healed.to_json() == serial_kill.to_json(), \
        "the healed sweep must still export byte-identical to serial"
    assert healed.to_csv() == serial_kill.to_csv()
    print(f"worker killed: sweep completed anyway "
          f"({stats['redispatched_jobs']} job(s) re-dispatched, "
          f"{stats['topology']['alive']}/2 workers alive at the end) — "
          f"exports still byte-identical")

    stop_server(server_a)
    print("cluster demo OK")


if __name__ == "__main__":
    main()
