"""Compilation-as-a-service demo: HTTP endpoint + async job queue.

Walks the full service story end to end, over real HTTP:

1. start a compilation server backed by an on-disk result cache,
2. submit a job (cold: compiled), then the same job again (warm: served
   from the in-memory memo),
3. run a sweep containing one impossible job — the batch survives, the
   bad job comes back as a structured error entry,
4. submit a sweep *asynchronously* via ``/jobs``: the ticket comes back
   in milliseconds while a worker compiles in the background, a poll
   loop follows it to DONE, and a queued job is cancelled before it
   ever runs,
5. show the async path returns byte-identical payloads to the
   synchronous one,
6. restart the server over the same cache directory and submit the job
   once more: the fresh process reports a *disk* hit and returns a
   byte-identical result payload.

Every step asserts what it claims, so CI runs this file as the service
smoke test (under a hard timeout: a deadlocked worker pool fails the
build instead of hanging it).  Run with::

    python examples/service_demo.py [cache_dir]
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time

from repro.api import CompileJob, MachineSpec, SweepSpec
from repro.service import ServiceClient, make_server


GRID = MachineSpec.nisq_grid(5, 5)
JOB = CompileJob.for_benchmark("RD53", GRID, "square")
IMPOSSIBLE = CompileJob.for_benchmark("RD53", MachineSpec.nisq(2), "square")
#: Mostly-fresh work for the async section, big enough that the single
#: worker stays busy while the demo queues and cancels behind it.
ASYNC_SPEC = (SweepSpec()
              .with_benchmarks("RD53", "ADDER4", "6SYM")
              .with_machines(GRID)
              .with_policies("eager", "lazy", "square"))
CANCEL_ME = CompileJob.for_benchmark("ADDER4", GRID, "lazy")


def start_server(cache_dir: str):
    """Start a service on an ephemeral port; returns (server, client).

    One worker thread, so the demo can deterministically queue work
    behind a running sweep (and cancel it before it runs).
    """
    server = make_server("127.0.0.1", 0, cache_dir=cache_dir, workers=1)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return server, ServiceClient(f"http://{host}:{port}")


def stop_server(server) -> None:
    server.shutdown()
    server.server_close()


def main() -> None:
    cache_dir = (sys.argv[1] if len(sys.argv) > 1
                 else tempfile.mkdtemp(prefix="repro-service-demo-"))
    print(f"cache directory: {cache_dir}")

    # --- first server: cold compile, then warm memory hit --------------
    server, client = start_server(cache_dir)
    print(f"server 1 up at {client.base_url}: "
          f"{client.health()['status']}")

    cold = client.compile_job(JOB)
    assert cold["ok"] and not cold["cached"] and not cold["disk_hit"]
    print(f"cold compile : gates={cold['result']['gate_count']} "
          f"cached={cold['cached']} disk_hit={cold['disk_hit']}")

    warm = client.compile_job(JOB)
    assert warm["ok"] and warm["cached"] and not warm["disk_hit"]
    print(f"memory hit   : cached={warm['cached']} "
          f"disk_hit={warm['disk_hit']}")

    # --- a batch with one impossible job still returns the rest --------
    sweep = client.run([JOB, IMPOSSIBLE])
    assert [entry.ok for entry in sweep] == [True, False]
    failure = sweep.failures()[0].error
    print(f"isolated failure: {failure.error_type} on "
          f"{failure.machine_name} (batch of {len(sweep)} survived)")

    # --- async submission: ticket now, results later -------------------
    started = time.perf_counter()
    ticket = client.submit_async(ASYNC_SPEC)
    elapsed_ms = (time.perf_counter() - started) * 1000
    assert elapsed_ms < 1000, "ticket must return without compiling"
    print(f"async submit : ticket {ticket} in {elapsed_ms:.1f} ms "
          f"(worker compiles in background)")

    # While the sweep occupies the single worker, queue one more job and
    # cancel it: a cancelled QUEUED job never runs.
    queued = client.submit_async(CANCEL_ME)
    cancelled = client.cancel(queued)
    assert cancelled["cancelled"] and cancelled["state"] == "CANCELLED"
    record = client.poll(queued)
    assert record["state"] == "CANCELLED" and record["started_at"] is None
    print(f"cancelled    : {queued} while QUEUED (never ran)")

    # Poll the sweep ticket to DONE.
    final = client.wait_for(ticket, timeout=300)
    assert final["state"] == "DONE" and final["response"]["ok"]
    print(f"poll loop    : {ticket} DONE after "
          f"{final['run_seconds']:.2f}s run "
          f"({final['response']['count']} jobs)")

    # The async path returns byte-identical payloads to the sync path.
    async_compile = client.result_of(client.submit_async(JOB))
    assert json.dumps(async_compile["result"], sort_keys=True) == \
           json.dumps(cold["result"], sort_keys=True), \
        "async result payload must match the synchronous one"
    print("async==sync  : byte-identical result payloads")

    stats = client.stats()
    print(f"server 1 stats: jobs_run={stats['service']['jobs_run']} "
          f"failures={stats['service']['job_failures']} "
          f"workers={stats['service']['workers']} "
          f"queue={stats['service']['queue_depth']}/"
          f"{stats['service']['queue_capacity']}")
    stop_server(server)

    # --- second server, same cache dir: results survive the restart ----
    server2, client2 = start_server(cache_dir)
    print(f"server 2 up at {client2.base_url} (fresh process, same cache)")

    restored = client2.compile_job(JOB)
    assert restored["ok"] and restored["cached"] and restored["disk_hit"], \
        "expected the restarted service to serve the job from disk"
    assert json.dumps(restored["result"], sort_keys=True) == \
           json.dumps(cold["result"], sort_keys=True), \
        "disk-cached payload must be identical to the cold compile"
    print(f"disk hit     : cached={restored['cached']} "
          f"disk_hit={restored['disk_hit']} (payload identical)")
    stop_server(server2)

    print("service demo OK")


if __name__ == "__main__":
    main()
