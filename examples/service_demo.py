"""Compilation-as-a-service demo: HTTP endpoint + persistent result cache.

Walks the full service story end to end, over real HTTP:

1. start a compilation server backed by an on-disk result cache,
2. submit a job (cold: compiled), then the same job again (warm: served
   from the in-memory memo),
3. run a sweep containing one impossible job — the batch survives, the
   bad job comes back as a structured error entry,
4. restart the server over the same cache directory and submit the job
   once more: the fresh process reports a *disk* hit and returns a
   byte-identical result payload.

Every step asserts what it claims, so CI runs this file as the service
smoke test.  Run with::

    python examples/service_demo.py [cache_dir]
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading

from repro.api import CompileJob, MachineSpec
from repro.service import ServiceClient, make_server


JOB = CompileJob.for_benchmark("RD53", MachineSpec.nisq_grid(5, 5), "square")
IMPOSSIBLE = CompileJob.for_benchmark("RD53", MachineSpec.nisq(2), "square")


def start_server(cache_dir: str):
    """Start a service on an ephemeral port; returns (server, client)."""
    server = make_server("127.0.0.1", 0, cache_dir=cache_dir)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return server, ServiceClient(f"http://{host}:{port}")


def stop_server(server) -> None:
    server.shutdown()
    server.server_close()


def main() -> None:
    cache_dir = (sys.argv[1] if len(sys.argv) > 1
                 else tempfile.mkdtemp(prefix="repro-service-demo-"))
    print(f"cache directory: {cache_dir}")

    # --- first server: cold compile, then warm memory hit --------------
    server, client = start_server(cache_dir)
    print(f"server 1 up at {client.base_url}: "
          f"{client.health()['status']}")

    cold = client.compile_job(JOB)
    assert cold["ok"] and not cold["cached"] and not cold["disk_hit"]
    print(f"cold compile : gates={cold['result']['gate_count']} "
          f"cached={cold['cached']} disk_hit={cold['disk_hit']}")

    warm = client.compile_job(JOB)
    assert warm["ok"] and warm["cached"] and not warm["disk_hit"]
    print(f"memory hit   : cached={warm['cached']} "
          f"disk_hit={warm['disk_hit']}")

    # --- a batch with one impossible job still returns the rest --------
    sweep = client.run([JOB, IMPOSSIBLE])
    assert [entry.ok for entry in sweep] == [True, False]
    failure = sweep.failures()[0].error
    print(f"isolated failure: {failure.error_type} on "
          f"{failure.machine_name} (batch of {len(sweep)} survived)")

    stats = client.stats()
    print(f"server 1 stats: jobs_run={stats['service']['jobs_run']} "
          f"failures={stats['service']['job_failures']}")
    stop_server(server)

    # --- second server, same cache dir: results survive the restart ----
    server2, client2 = start_server(cache_dir)
    print(f"server 2 up at {client2.base_url} (fresh process, same cache)")

    restored = client2.compile_job(JOB)
    assert restored["ok"] and restored["cached"] and restored["disk_hit"], \
        "expected the restarted service to serve the job from disk"
    assert json.dumps(restored["result"], sort_keys=True) == \
           json.dumps(cold["result"], sort_keys=True), \
        "disk-cached payload must be identical to the cold compile"
    print(f"disk hit     : cached={restored['cached']} "
          f"disk_hit={restored['disk_hit']} (payload identical)")
    stop_server(server2)

    print("service demo OK")


if __name__ == "__main__":
    main()
