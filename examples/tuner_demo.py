"""Auto-tuning demo: racing policy search, journal resume, cluster backend.

Walks the tuner story end to end, asserting every claim (CI runs this
file as the tuner smoke test under a hard timeout):

1. a seeded :class:`~repro.tuner.TuningRun` races a sampled policy
   space over two benchmarks with successive halving — candidates are
   screened at ``quick`` scale and survivors promoted to ``laptop`` —
   and exports a ranked leaderboard whose winner is a
   ``preset()``-compatible config dict,
2. determinism: re-running the same seeded search from scratch yields
   a byte-identical leaderboard JSON export,
3. resume-after-kill: a run killed mid-search resumes from its JSONL
   trial journal with **zero repeat compilations** (proved by the
   fresh session's cache accounting) and converges to the identical
   leaderboard,
4. the same seeded search through a 2-server cluster backend — trials
   shard across both compile servers — still exports a byte-identical
   leaderboard, and the fleet stats show both workers compiled.

Run with::

    python examples/tuner_demo.py [journal_base_dir]
"""

from __future__ import annotations

import sys
import tempfile
import threading
from pathlib import Path

from repro.api import MachineSpec, Session
from repro.cluster import ClusterCoordinator
from repro.core.compiler import preset
from repro.service import make_server
from repro.tuner import (
    MultiObjective,
    SearchSpace,
    SuccessiveHalving,
    TuningRun,
)

BENCHMARKS = ("RD53", "MUL32")
MACHINE = MachineSpec.nisq_autosize()
#: Trials the kill-resume section lets finish before "crashing".
KILL_AFTER = 4


def make_run(backend=None, journal_path=None, on_trial=None) -> TuningRun:
    """One seeded tuning run; every section uses this exact config."""
    return TuningRun(
        SearchSpace.policy_space(),
        MultiObjective("aqv", "qubits"),
        SuccessiveHalving(scales=("quick", "laptop"), trials=5, seed=7),
        benchmarks=BENCHMARKS,
        machine=MACHINE,
        backend=backend,
        journal_path=journal_path,
        on_trial=on_trial,
    )


def start_server(cache_dir: str):
    """One compile server on an ephemeral port; returns (server, url)."""
    server = make_server("127.0.0.1", 0, cache_dir=cache_dir, workers=1)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


class KilledMidRun(Exception):
    """Stands in for `kill -9` at a trial boundary."""


def main() -> None:
    base = Path(sys.argv[1] if len(sys.argv) > 1
                else tempfile.mkdtemp(prefix="repro-tuner-demo-"))
    base.mkdir(parents=True, exist_ok=True)
    print(f"journal base directory: {base}")

    # --- 1. seeded racing search, local session ------------------------
    local = make_run(backend=Session(), journal_path=base / "local.jsonl")
    report = local.run()
    stats = local.stats()
    print(report.table("tuner demo leaderboard (local session)"))
    print(f"local run    : {stats['trials_executed']} trial(s) compiled, "
          f"{stats['trials_deduped']} deduped by fingerprint")
    assert stats["trials_deduped"] > 0, \
        "promoted candidates whose jobs did not change must dedup"
    best = report.best_config()
    config = preset("square", **best)  # must round-trip into a preset
    assert config.allocation == best["allocation"]
    assert report.to_dict()["leaderboard"][0]["pareto"] is True, \
        "the scalarized winner must sit on the Pareto front"
    print(f"best config  : {best} (preset()-compatible)")

    # --- 2. determinism: same seed, fresh run, identical bytes ---------
    repeat = make_run(backend=Session())
    assert repeat.run().to_json() == report.to_json(), \
        "the same seeded search must export a byte-identical leaderboard"
    print("determinism  : fresh rerun exports byte-identical JSON")

    # --- 3. kill mid-run, resume from the journal ----------------------
    journal = base / "resume.jsonl"
    finished = []

    def killer(record) -> None:
        finished.append(record)
        if len(finished) >= KILL_AFTER:
            raise KilledMidRun()

    try:
        make_run(backend=Session(), journal_path=journal,
                 on_trial=killer).run()
        raise AssertionError("the killed run must not complete")
    except KilledMidRun:
        pass
    print(f"killed       : run stopped after {KILL_AFTER} journaled "
          f"trial(s)")

    session = Session()  # fresh caches: any repeat compile would show
    resumed = make_run(backend=session, journal_path=journal)
    resumed_report = resumed.run()
    stats = resumed.stats()
    total_unique = local.stats()["trials_executed"]
    assert stats["journal_restored"] == KILL_AFTER
    assert stats["trials_executed"] == total_unique - KILL_AFTER, \
        "resume must only compile the trials the kill lost"
    assert session.cache_misses == stats["trials_executed"] \
        and session.cache_hits == 0, \
        "zero repeat compilations: every executed trial was fresh work"
    assert resumed_report.to_json() == report.to_json(), \
        "a resumed run must converge to the uninterrupted leaderboard"
    print(f"resumed      : {stats['journal_restored']} trial(s) restored "
          f"from the journal, {stats['trials_executed']} compiled "
          f"(cache accounting proves zero repeats)")

    # --- 4. the same search through a 2-server cluster backend ---------
    server_a, url_a = start_server(str(base / "cache-a"))
    server_b, url_b = start_server(str(base / "cache-b"))
    coordinator = ClusterCoordinator([url_a, url_b])
    cluster = make_run(backend=coordinator,
                       journal_path=base / "cluster.jsonl")
    cluster_report = cluster.run()
    assert cluster_report.to_json() == report.to_json(), \
        "cluster leaderboard must be byte-identical to the local run"
    fleet = coordinator.topology.fleet_stats()
    jobs_per_worker = {row["url"]: row["jobs_run"]
                       for row in fleet["workers"]}
    assert fleet["reachable"] == 2
    assert all(count > 0 for count in jobs_per_worker.values()), \
        "both workers must have compiled part of the search"
    assert fleet["fleet"]["jobs_run"] >= total_unique
    print(f"cluster      : leaderboard byte-identical to local; trials "
          f"split across workers {jobs_per_worker}")
    for server in (server_a, server_b):
        server.shutdown()
        server.server_close()

    print("tuner demo OK")


if __name__ == "__main__":
    main()
