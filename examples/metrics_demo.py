"""Observability demo: /metrics scraping, phase timing, tracing, fleet merge.

Walks the telemetry story end to end, over real HTTP:

1. start a server with a durable job journal (``--store-dir``-style) and
   scrape ``GET /metrics`` cold: every mandatory series is present with
   its expected label set, and the exposition parses cleanly,
2. do real work (a sync compile plus an async sweep) and assert the
   compile-phase histograms, queue/cache counters, and per-tenant series
   all advance — and that ``/stats`` and ``/metrics`` report identical
   numbers (both read one snapshot),
3. tracing: the client's minted ``X-Repro-Trace`` id comes back on every
   response header and lands on every job record it created,
4. fleet: start a second server and merge both scrapes through
   :meth:`~repro.cluster.ClusterTopology.fleet_metrics` — every sample
   gains a ``worker`` label and ``repro_worker_up`` flips to 0 when a
   worker is killed,
5. restart the first server on the same store directory and assert the
   recovered per-tenant lifecycle counters surface identically in
   ``/stats`` and ``/metrics`` (journal-backed counters survive).

Every step asserts what it claims, so CI runs this file as the metrics
smoke test (under a hard timeout).  Run with::

    python examples/metrics_demo.py [store_dir]
"""

from __future__ import annotations

import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro.api import CompileJob, MachineSpec, SweepSpec
from repro.cluster import ClusterTopology
from repro.service import ServiceClient, make_server
from repro.telemetry import TRACE_HEADER, parse_exposition, valid_trace_id

GRID = MachineSpec.nisq_grid(5, 5)
QUICK = CompileJob.for_benchmark("RD53", GRID, "square")
SWEEP = (SweepSpec().with_benchmarks("RD53", "ADDER4")
         .with_machines(GRID).with_policies("eager", "lazy"))

#: Series every scrape must expose, with the exact label names each
#: sample of the family carries.
MANDATORY_SERIES = {
    "repro_uptime_seconds": set(),
    "repro_requests_total": set(),
    "repro_jobs_run_total": set(),
    "repro_job_failures_total": set(),
    "repro_queue_depth": set(),
    "repro_queue_capacity": set(),
    "repro_queue_pushed_total": set(),
    "repro_queue_rejected_total": set(),
    "repro_workers": set(),
    "repro_workers_busy": set(),
    "repro_entries_per_second": set(),
    "repro_cache_hits_total": {"tier"},
    "repro_cache_misses_total": {"tier"},
    "repro_cache_entries": {"tier"},
}


def start_server(store_dir: str, cache_dir: str):
    server = make_server("127.0.0.1", 0, workers=1, queue_size=16,
                         store_dir=store_dir, cache_dir=cache_dir)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


def stop_server(server) -> None:
    server.shutdown()
    server.server_close()


def scrape(url: str) -> dict:
    """One parsed /metrics scrape."""
    client = ServiceClient(url)
    return parse_exposition(client.metrics_text())


def value(families: dict, name: str, **labels) -> float:
    # Histogram _bucket/_sum/_count samples live under their family's
    # base name, so resolve the family by longest matching prefix.
    family = families.get(name)
    if family is None:
        base = max((candidate for candidate in families
                    if name.startswith(candidate)), key=len)
        family = families[base]
    for sample_name, pairs, raw in family["samples"]:
        if sample_name == name and dict(pairs) == labels:
            return float(raw)
    raise AssertionError(f"no sample {name} with labels {labels}")


def main() -> None:
    root = Path(sys.argv[1] if len(sys.argv) > 1
                else tempfile.mkdtemp(prefix="repro-metrics-demo-"))
    root.mkdir(parents=True, exist_ok=True)
    store_dir = str(root / "jobs")
    cache_dir = str(root / "cache")

    server, url = start_server(store_dir, cache_dir)
    print(f"server 1 up at {url}")

    # --- 1. cold scrape: mandatory series + label sets -----------------
    families = scrape(url)
    for name, expected_labels in MANDATORY_SERIES.items():
        assert name in families, f"missing series {name}"
        for _, pairs, _ in families[name]["samples"]:
            assert set(dict(pairs)) == expected_labels, \
                (name, pairs, expected_labels)
    assert families["repro_queue_pushed_total"]["type"] == "counter"
    assert families["repro_queue_depth"]["type"] == "gauge"
    print(f"cold scrape  : {len(families)} families, all mandatory "
          f"series present with expected labels")

    # --- 2. work advances the series; /stats and /metrics agree --------
    client = ServiceClient(url)
    assert client.compile_job(QUICK)["ok"]
    ticket = client.submit_async(SWEEP)
    assert client.wait_for(ticket, timeout=300)["state"] == "DONE"
    families = scrape(url)
    stats = client.stats()
    assert value(families, "repro_jobs_run_total") \
        == stats["service"]["jobs_run"] >= 2
    assert value(families, "repro_queue_pushed_total") \
        == stats["queue"]["queue"]["pushed"]
    assert value(families, "repro_cache_misses_total", tier="memory") \
        == stats["session"]["cache_misses"]
    assert value(families, "repro_cache_entries", tier="disk") \
        == stats["session"]["disk_cache"]["size"] > 0
    # Disk-tier eviction/orphan counters surface on both surfaces.
    assert value(families, "repro_cache_evictions_total", tier="disk") \
        == stats["session"]["disk_cache"]["evictions"]
    assert value(families, "repro_cache_orphans_removed_total",
                 tier="disk") \
        == stats["session"]["disk_cache"]["orphans_removed"]
    phases = {dict(pairs).get("phase") for _, pairs, _ in
              families["repro_compile_phase_seconds"]["samples"]
              if dict(pairs).get("phase")}
    assert {"validate", "allocation"} <= phases, phases
    count = value(families, "repro_compile_phase_seconds_count",
                  phase="allocation")
    assert count >= 1
    tenant_submitted = value(families, "repro_tenant_submitted_total",
                             tenant="anonymous")
    assert tenant_submitted \
        == stats["tenants"]["anonymous"]["submitted"] >= 2
    print(f"agreement    : jobs_run={stats['service']['jobs_run']}, "
          f"phases={sorted(phases)}, tenant submitted="
          f"{tenant_submitted:g} — /stats == /metrics")

    # --- 3. tracing ----------------------------------------------------
    assert valid_trace_id(client.trace_id)
    request = urllib.request.Request(f"{url}/health",
                                     headers={TRACE_HEADER: "demo-trace"})
    with urllib.request.urlopen(request) as response:
        assert response.headers[TRACE_HEADER] == "demo-trace"
    record = client.poll(ticket)
    assert record["trace_id"] == client.trace_id, record
    print(f"tracing      : header echoed; job {ticket} carries "
          f"trace {client.trace_id}")

    # --- 4. fleet merge ------------------------------------------------
    server2, url2 = start_server(str(root / "jobs2"), str(root / "cache2"))
    topology = ClusterTopology([url, url2])
    fleet = parse_exposition(topology.fleet_metrics())
    workers = {dict(pairs)["worker"] for _, pairs, _ in
               fleet["repro_queue_depth"]["samples"]}
    assert workers == {url, url2}, workers
    assert value(fleet, "repro_worker_up", worker=url) == 1
    assert value(fleet, "repro_worker_up", worker=url2) == 1
    stop_server(server2)
    fleet = parse_exposition(topology.fleet_metrics())
    assert value(fleet, "repro_worker_up", worker=url2) == 0
    assert value(fleet, "repro_worker_up", worker=url) == 1
    print(f"fleet        : merged scrape labels both workers; killed "
          f"{url2} -> repro_worker_up 0")

    # --- 5. restart on the same store: counters survive ----------------
    pre_submitted = tenant_submitted
    stop_server(server)
    server3, url3 = start_server(store_dir, cache_dir)
    client3 = ServiceClient(url3)
    families = scrape(url3)
    stats = client3.stats()
    recovered = value(families, "repro_tenant_submitted_total",
                      tenant="anonymous")
    assert recovered == stats["tenants"]["anonymous"]["submitted"], \
        "restart broke /stats vs /metrics agreement"
    assert recovered >= pre_submitted, (recovered, pre_submitted)
    assert value(families, "repro_cache_entries", tier="disk") > 0
    stop_server(server3)
    print(f"restart      : journal-recovered tenant counters "
          f"(submitted={recovered:g}) identical on both surfaces")

    print("metrics demo OK")


if __name__ == "__main__":
    main()
