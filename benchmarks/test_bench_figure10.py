"""Benchmark: regenerate Figure 10 (normalized AQV on FT machines)."""

from benchmarks.conftest import run_once
from repro.experiments import figure10


def test_bench_figure10(benchmark):
    experiment = run_once(benchmark, figure10.run, scale="quick")
    for row in experiment.rows:
        assert abs(row["lazy"] - 1.0) < 1e-9
        assert row["square"] > 0
    # Paper shape: SQUARE reduces AQV vs Lazy on the FT machine for most
    # benchmarks (44% on average in the paper).
    wins = sum(1 for row in experiment.rows if row["square"] <= 1.05)
    assert wins >= len(experiment.rows) // 2
    print(figure10.format_report(experiment))
