"""Benchmark: regenerate Figure 9 (normalized AQV, NISQ-FT boundary)."""

from benchmarks.conftest import run_once
from repro.experiments import figure9


def test_bench_figure9(benchmark):
    experiment = run_once(benchmark, figure9.run, scale="quick")
    for row in experiment.rows:
        assert abs(row["lazy"] - 1.0) < 1e-9
        assert row["square"] > 0
    # Paper shape: on average SQUARE reduces AQV relative to Lazy.
    wins = sum(1 for row in experiment.rows if row["square"] <= 1.05)
    assert wins >= len(experiment.rows) // 2
    print(figure9.format_report(experiment))
