"""Benchmark: job throughput through the async service queue.

Establishes the service-layer performance trajectory the ROADMAP asks
for: how many jobs per second the queue → worker-pool → session pipeline
sustains, separated into

* **queue overhead** — a no-op runner, so the measurement is purely the
  submit/enqueue/dispatch/record machinery, and
* **cached service jobs** — real ``/compile``-shaped jobs through a
  :class:`~repro.service.server.CompilationService` whose session memo
  is warm, i.e. the per-request overhead a saturated server pays even
  when every result is a cache hit.

Both assert a generous throughput floor so a catastrophic regression
(e.g. a lock serializing the pipeline) fails loudly rather than just
drifting in the timings.
"""

from __future__ import annotations

from repro.api import CompileJob, MachineSpec
from repro.queue import JobManager
from repro.service.server import CompilationService

from benchmarks.conftest import run_once

#: Jobs pushed through each pipeline per measurement round.
QUEUE_JOBS = 500
SERVICE_JOBS = 200

GRID = MachineSpec.nisq_grid(5, 5)
RD53 = CompileJob.for_benchmark("RD53", GRID, "square")


def drain_noop_manager(jobs: int, workers: int) -> int:
    """Submit ``jobs`` no-op jobs and wait for the last to finish."""
    manager = JobManager(lambda job: {"ok": True}, workers=workers,
                         queue_size=jobs, retention=jobs)
    try:
        tickets = [manager.submit("compile", {"job": {}})
                   for _ in range(jobs)]
        for ticket in tickets:
            manager.wait(ticket.job_id, timeout=60)
        return manager.completed
    finally:
        manager.close()


def drain_cached_service(service: CompilationService, jobs: int) -> int:
    """Run ``jobs`` memoized compile requests through the full service."""
    done = 0
    for _ in range(jobs):
        response = service.compile({"job": RD53.to_dict()})
        done += 1 if response["ok"] else 0
    return done


def test_bench_queue_throughput(benchmark):
    """Raw queue machinery: submit → dispatch → record, no-op work."""
    completed = run_once(benchmark, drain_noop_manager, QUEUE_JOBS,
                         workers=2)
    assert completed == QUEUE_JOBS
    jobs_per_second = QUEUE_JOBS / benchmark.stats.stats.mean
    benchmark.extra_info["jobs_per_second"] = round(jobs_per_second, 1)
    # Catastrophe floor only (~1000x below observed throughput): this
    # runs in the default pytest collection, so it must never flake on
    # a throttled CI machine — the trajectory lives in the timings.
    assert jobs_per_second > 20


def test_bench_cached_service_throughput(benchmark):
    """Full service stack per-request overhead with a warm memo cache."""
    service = CompilationService(workers=2, queue_size=SERVICE_JOBS)
    try:
        service.compile({"job": RD53.to_dict()})  # warm the memo
        completed = run_once(benchmark, drain_cached_service, service,
                             SERVICE_JOBS)
        assert completed == SERVICE_JOBS
        jobs_per_second = SERVICE_JOBS / benchmark.stats.stats.mean
        benchmark.extra_info["jobs_per_second"] = round(jobs_per_second, 1)
        assert jobs_per_second > 5  # catastrophe floor, as above
    finally:
        service.close()
