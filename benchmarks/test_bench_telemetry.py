"""Benchmark: telemetry costs — scrape latency, counter increments,
and compile overhead of the always-on phase timers.

Writes ``BENCH_telemetry.json`` at the repo root with the headline
numbers the observability acceptance gate cares about:

* **scrape latency** — one full ``/metrics`` collection + render over a
  populated service registry (the path a Prometheus scraper hits);
* **counter increment ns** — cost of one labeled-counter increment
  (the per-event instrumentation primitive);
* **phase-timing compile overhead** — compile time with
  ``phase_timing=True`` divided by the same suite with it off.  The
  timers only earn their always-on default if this stays a rounding
  error; the ISSUE acceptance bar is < 2 %, asserted here.
* **span-recording compile overhead** — compile time inside a live
  ``SpanRecorder.span`` (plus the per-phase child spans
  ``record_compile_spans`` synthesizes) divided by the same suite bare.
  Same < 2 % bar: the waterfall must be free enough to leave on.

The overhead runs alternate off/on timings per compile, keep each
item's minimum on both sides, and take the best of several whole-suite
trials — so one scheduler hiccup cannot fake a regression.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.api import CompileJob, MachineSpec, Session
from repro.core.compiler import SquareCompiler
from repro.service.server import CompilationService
from repro.telemetry import EventLog, MetricsRegistry, SpanRecorder
from repro.telemetry.spans import record_compile_spans

from benchmarks.conftest import run_once

#: Registry cross-section: small oracles on a fixed lattice plus quick
#: arithmetic on a large machine, so the overhead number reflects both
#: event-dense tiny compiles and routing-dominated big ones.
SMALL = ("RD53", "6SYM", "2OF5", "ADDER4")
LARGE = ("ADDER32", "MUL32")
POLICIES = ("eager", "lazy", "square")
GRID = MachineSpec.nisq_grid(5, 5)
BIG = MachineSpec(kind="nisq", num_qubits=256)

#: Acceptance bar: phase timing must cost less than this fraction of
#: compile time (ISSUE 8 criterion).
MAX_OVERHEAD_RATIO = 0.02

#: Alternating off/on timings kept per item; best of these trials wins.
TRIALS = 3
#: Timings per item per side within one trial (minimum is kept).
REPEATS = 5

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"

#: Filled by the tests, flushed to ``BENCH_telemetry.json`` on teardown.
RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Flush a versioned benchmark record after the module runs.

    ``REPRO_BENCH_HISTORY=<dir>`` also appends the record to the
    ``<dir>/telemetry.jsonl`` trajectory journal that
    ``bench compare`` / ``bench trend`` read.
    """
    yield
    if not RESULTS:
        return
    from repro.bench import write_bench

    write_bench(str(BENCH_PATH), "telemetry", RESULTS,
                history_dir=os.environ.get("REPRO_BENCH_HISTORY") or None)


def test_bench_counter_increment(benchmark):
    """Nanoseconds per labeled-counter increment."""
    registry = MetricsRegistry()
    child = registry.counter("bench_events_total", "bench",
                             labelnames=("tenant",)).labels(tenant="t")
    increments = 100_000

    def spin():
        for _ in range(increments):
            child.inc()

    benchmark.pedantic(spin, rounds=5, iterations=1, warmup_rounds=1)
    nanoseconds = benchmark.stats.stats.min / increments * 1e9
    benchmark.extra_info["increment_ns"] = round(nanoseconds, 1)
    RESULTS["counter_increment_ns"] = round(nanoseconds, 1)
    assert child.value == increments * 6  # 5 rounds + 1 warmup


def test_bench_scrape_latency(benchmark):
    """One full /metrics collection + render on a populated service."""
    service = CompilationService(session=Session(), workers=1)
    try:
        tenant = service.authenticate(None)
        job = CompileJob.for_benchmark("RD53", GRID, "square")
        service.compile({"job": job.to_dict()}, tenant=tenant)

        text = benchmark.pedantic(service.metrics_text, rounds=20,
                                  iterations=5, warmup_rounds=1)
    finally:
        service.close()
    assert "repro_compile_phase_seconds" in text
    milliseconds = benchmark.stats.stats.min * 1e3
    benchmark.extra_info["scrape_ms"] = round(milliseconds, 3)
    RESULTS["scrape_latency_ms"] = round(milliseconds, 3)
    RESULTS["scrape_bytes"] = len(text.encode("utf-8"))


def _suite():
    """Prebuilt (program, machine, config) triples: rounds time only
    compiles, never program loading or lattice construction."""
    from repro.workloads.registry import benchmark_overrides

    triples = []
    for name in SMALL:
        for policy in POLICIES:
            job = CompileJob.for_benchmark(name, GRID, policy)
            triples.append((job.load_program(), GRID.build(), job.config))
    for name in LARGE:
        for policy in POLICIES:
            overrides = benchmark_overrides(name, "quick")
            job = CompileJob.for_benchmark(name, BIG, policy,
                                           overrides=overrides)
            triples.append((job.load_program(), BIG.build(), job.config))
    return triples


def _time_one(program, machine, config, phase_timing) -> float:
    started = time.perf_counter()
    result = SquareCompiler(machine, config,
                            phase_timing=phase_timing).compile(program)
    elapsed = time.perf_counter() - started
    assert bool(result.phase_seconds) is phase_timing
    return elapsed


def _trial(triples) -> tuple:
    """One whole-suite pass: sum of per-item minimums, off and on.

    Off/on timings alternate per compile, so slow drift (thermal,
    co-tenant load) hits both sides equally; the per-item minimum
    filters out scheduler spikes at the finest granularity."""
    total_off = total_on = 0.0
    for program, machine, config in triples:
        offs, ons = [], []
        for _ in range(REPEATS):
            offs.append(_time_one(program, machine, config, False))
            ons.append(_time_one(program, machine, config, True))
        total_off += min(offs)
        total_on += min(ons)
    return total_off, total_on


def test_bench_phase_timing_overhead(benchmark):
    """Compile-time cost of the always-on phase timers (< 2 %)."""
    triples = _suite()
    _trial(triples)  # warm every code path once

    def measure():
        return [_trial(triples) for _ in range(TRIALS)]

    trials = run_once(benchmark, measure)
    ratios = sorted(on / off - 1.0 for off, on in trials)
    overhead = ratios[0]  # best trial: the least noise-contaminated
    baseline, timed = min(trials)

    benchmark.extra_info["overhead_ratio"] = round(overhead, 4)
    RESULTS["compiles_per_trial"] = 2 * REPEATS * len(triples)
    RESULTS["compile_seconds_timing_off"] = round(baseline, 4)
    RESULTS["compile_seconds_timing_on"] = round(timed, 4)
    RESULTS["phase_timing_overhead_ratio"] = round(overhead, 4)
    RESULTS["phase_timing_overhead_trials"] = [round(r, 4) for r in ratios]

    # The acceptance bar: always-on telemetry must be a rounding error.
    assert overhead < MAX_OVERHEAD_RATIO, (
        f"phase timing cost {overhead:.2%} of compile time "
        f"(bar: {MAX_OVERHEAD_RATIO:.0%})")


def _time_one_spanned(program, machine, config,
                      recorder: SpanRecorder) -> float:
    """One compile inside the full span path a worker job takes: a live
    parent span plus the synthesized per-phase children."""
    started = time.perf_counter()
    with recorder.span("job.run") as parent:
        result = SquareCompiler(machine, config).compile(program)
        record_compile_spans(parent, [(program.name, result)])
    return time.perf_counter() - started


def _span_trial(triples, recorder: SpanRecorder) -> tuple:
    """One whole-suite pass: sum of per-item minimums, bare and spanned.

    Like :func:`_trial` the sides alternate per compile, but the order
    within each pair also flips every repeat — whichever side runs
    first in a pair pays any cold-cache / fresh-GC cost, so a fixed
    order would bias one side systematically."""
    total_bare = total_spanned = 0.0
    for program, machine, config in triples:
        bares, spanned = [], []
        for repeat in range(REPEATS):
            if repeat % 2:
                spanned.append(
                    _time_one_spanned(program, machine, config, recorder))
                bares.append(_time_one(program, machine, config, True))
            else:
                bares.append(_time_one(program, machine, config, True))
                spanned.append(
                    _time_one_spanned(program, machine, config, recorder))
        total_bare += min(bares)
        total_spanned += min(spanned)
    return total_bare, total_spanned


def test_bench_span_recording_overhead(benchmark):
    """Compile-time cost of span recording + phase bridging (< 2 %).

    Both sides compile with phase timing on (its default), so the ratio
    isolates exactly what PR 9 added: the contextvar push/pop, the ring
    append, and the synthesized compile/phase child spans.
    """
    triples = _suite()
    recorder = SpanRecorder()
    _span_trial(triples, recorder)  # warm every code path once

    def measure():
        return [_span_trial(triples, recorder) for _ in range(TRIALS)]

    trials = run_once(benchmark, measure)
    ratios = sorted(spanned / bare - 1.0 for bare, spanned in trials)
    overhead = ratios[0]  # best trial: the least noise-contaminated
    baseline, spanned = min(trials)

    stats = recorder.stats()
    assert stats["recorded"] > 0  # spans really were recorded

    benchmark.extra_info["overhead_ratio"] = round(overhead, 4)
    RESULTS["compile_seconds_spans_off"] = round(baseline, 4)
    RESULTS["compile_seconds_spans_on"] = round(spanned, 4)
    RESULTS["span_overhead_ratio"] = round(overhead, 4)
    RESULTS["span_overhead_trials"] = [round(r, 4) for r in ratios]
    RESULTS["spans_recorded"] = stats["recorded"]

    # ISSUE 9 acceptance bar: the waterfall must be cheap enough to
    # leave on for every job.
    assert overhead < MAX_OVERHEAD_RATIO, (
        f"span recording cost {overhead:.2%} of compile time "
        f"(bar: {MAX_OVERHEAD_RATIO:.0%})")


def _time_one_bare_span(program, machine, config,
                        recorder: SpanRecorder) -> float:
    """One compile inside a live span but with no event emission —
    the baseline side of the logging-overhead pair."""
    started = time.perf_counter()
    with recorder.span("job.run", labels={"job_id": "bench",
                                          "tenant": "bench"}):
        SquareCompiler(machine, config).compile(program)
    return time.perf_counter() - started


def _time_one_logged(program, machine, config, recorder: SpanRecorder,
                     events: EventLog) -> float:
    """One compile emitting the events a service job emits: worker
    pickup, both cache-tier consults, and the done record — each one
    pulling trace/tenant/job correlation off the active span, exactly
    the hot path :meth:`EventLog.emit` runs in production."""
    started = time.perf_counter()
    with recorder.span("job.run", labels={"job_id": "bench",
                                          "tenant": "bench"}):
        events.info("worker picked up job", component="worker",
                    fields={"kind": "benchmark", "wait_seconds": 0.0})
        SquareCompiler(machine, config).compile(program)
        events.debug("cache.memory consulted", component="cache",
                     fields={"tier": "memory", "hits": 0, "misses": 1})
        events.debug("cache.disk consulted", component="cache",
                     fields={"tier": "disk", "lookups": 1, "hits": 0})
        events.info("job done", component="manager",
                    fields={"kind": "benchmark", "entries": 1})
    return time.perf_counter() - started


def _log_trial(triples, recorder: SpanRecorder,
               events: EventLog) -> tuple:
    """One whole-suite pass: sum of per-item minimums, bare and logged,
    with the same alternating order-flipping discipline as
    :func:`_span_trial`."""
    total_bare = total_logged = 0.0
    for program, machine, config in triples:
        bares, logged = [], []
        for repeat in range(REPEATS):
            if repeat % 2:
                logged.append(_time_one_logged(
                    program, machine, config, recorder, events))
                bares.append(_time_one_bare_span(
                    program, machine, config, recorder))
            else:
                bares.append(_time_one_bare_span(
                    program, machine, config, recorder))
                logged.append(_time_one_logged(
                    program, machine, config, recorder, events))
        total_bare += min(bares)
        total_logged += min(logged)
    return total_bare, total_logged


def test_bench_log_overhead(benchmark):
    """Compile-time cost of structured event logging (< 2 %).

    Both sides compile inside a live span, so the ratio isolates
    exactly what the event log adds per job: four :meth:`EventLog.emit`
    calls, each with span-context correlation and a ring append.
    """
    triples = _suite()
    recorder = SpanRecorder()
    events = EventLog()
    _log_trial(triples, recorder, events)  # warm every code path once

    def measure():
        return [_log_trial(triples, recorder, events)
                for _ in range(TRIALS)]

    trials = run_once(benchmark, measure)
    ratios = sorted(logged / bare - 1.0 for bare, logged in trials)
    overhead = ratios[0]  # best trial: the least noise-contaminated
    baseline, logged = min(trials)

    stats = events.stats()
    assert stats["recorded"] > 0  # events really were recorded

    benchmark.extra_info["overhead_ratio"] = round(overhead, 4)
    RESULTS["compile_seconds_logs_off"] = round(baseline, 4)
    RESULTS["compile_seconds_logs_on"] = round(logged, 4)
    RESULTS["log_overhead_ratio"] = round(overhead, 4)
    RESULTS["log_overhead_trials"] = [round(r, 4) for r in ratios]
    RESULTS["log_events_recorded"] = stats["recorded"]

    # ISSUE 10 acceptance bar: narrating every job must stay a
    # rounding error next to compiling it.
    assert overhead < MAX_OVERHEAD_RATIO, (
        f"event logging cost {overhead:.2%} of compile time "
        f"(bar: {MAX_OVERHEAD_RATIO:.0%})")
