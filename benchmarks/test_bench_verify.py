"""Benchmark: static-verifier throughput and overhead vs compile time.

Writes ``BENCH_verify.json`` at the repo root with the headline numbers
the verifier's acceptance gate cares about:

* **verifier gates/sec** — scheduled-gate events checked per second of
  verification (one linear pass over the recorded schedule, segments
  and mapping replay);
* **verify overhead ratio** — total verification time divided by total
  compile time over the same results.  The verifier only earns its
  place as an always-on safety net if this stays a small fraction; the
  ISSUE acceptance bar is < 20 %, asserted here.

The measured sweep compiles a cross-section of the registry (small
oracles through mid-size arithmetic) under all three reclamation
policies with ``record_schedule=True``, so the verifier runs at full
rule coverage (RV001-RV006) and every report must come back clean.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.api import Session, SweepSpec
from repro.verify import verify_result

from benchmarks.conftest import run_once

#: Registry cross-section: the three small oracles plus mid-size
#: arithmetic — big enough for tens of thousands of scheduled events.
BENCHMARKS = ("RD53", "6SYM", "2OF5", "ADDER4", "ADDER32", "MUL32")
POLICIES = ("eager", "lazy", "square")

#: Acceptance bar: verification must cost less than this fraction of
#: compile time (ISSUE 7 criterion).
MAX_OVERHEAD_RATIO = 0.20

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_verify.json"

#: Filled by the test, flushed to ``BENCH_verify.json`` on teardown.
RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Flush a versioned benchmark record after the module runs.

    ``REPRO_BENCH_HISTORY=<dir>`` also appends the record to the
    ``<dir>/verify.jsonl`` trajectory journal that ``bench compare`` /
    ``bench trend`` read.
    """
    yield
    if not RESULTS:
        return
    from repro.bench import write_bench

    write_bench(str(BENCH_PATH), "verify", RESULTS,
                history_dir=os.environ.get("REPRO_BENCH_HISTORY") or None)


def _compile_suite():
    """Compile the measured sweep, returning (results, compile_seconds)."""
    spec = (SweepSpec()
            .with_benchmarks(*BENCHMARKS)
            .with_policies(*POLICIES)
            .with_scales("quick")
            .with_config(record_schedule=True))
    session = Session()
    started = time.perf_counter()
    sweep = session.run(spec)
    compile_seconds = time.perf_counter() - started
    assert sweep.ok, sweep.failures()
    return sweep.results(), compile_seconds


def _verify_all(results):
    """One full verification pass over every compiled result."""
    return [verify_result(result) for result in results]


def test_bench_verifier_overhead(benchmark):
    """Verifier gates/sec and verify-vs-compile overhead ratio."""
    results, compile_seconds = _compile_suite()
    reports = run_once(benchmark, _verify_all, results)

    for report in reports:
        assert not report.findings, report.summary()
        assert not report.skipped_rules, report.skipped_rules

    verify_seconds = benchmark.stats.stats.mean
    checked_gates = sum(report.checked_gates for report in reports)
    gates_per_second = checked_gates / verify_seconds
    overhead = verify_seconds / compile_seconds

    benchmark.extra_info["gates_per_second"] = round(gates_per_second, 1)
    benchmark.extra_info["overhead_ratio"] = round(overhead, 4)
    RESULTS["results_verified"] = len(reports)
    RESULTS["checked_gates"] = checked_gates
    RESULTS["verify_gates_per_second"] = round(gates_per_second, 1)
    RESULTS["compile_seconds"] = round(compile_seconds, 3)
    RESULTS["verify_seconds"] = round(verify_seconds, 3)
    RESULTS["verify_overhead_ratio"] = round(overhead, 4)

    # The acceptance bar: a safety net must stay a small fraction of
    # the work it guards.
    assert overhead < MAX_OVERHEAD_RATIO, (
        f"verification cost {overhead:.1%} of compile time "
        f"(bar: {MAX_OVERHEAD_RATIO:.0%})")
