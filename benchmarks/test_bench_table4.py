"""Benchmark: regenerate Table IV (noise-model parameters)."""

from benchmarks.conftest import run_once
from repro.experiments import table4


def test_bench_table4(benchmark):
    experiment = run_once(benchmark, table4.run)
    devices = {row["device"] for row in experiment.rows}
    assert devices == {"IBM-Sup", "IonQ-Trap", "Our Simulation"}
    simulation = next(row for row in experiment.rows
                      if row["device"] == "Our Simulation")
    assert simulation["single"] == "0.1%"
    assert simulation["two"] == "1.0%"
    print(table4.format_report(experiment))
