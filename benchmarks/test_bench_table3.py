"""Benchmark: regenerate Table III (NISQ compilation results)."""

from benchmarks.conftest import run_once
from repro.experiments import table3


def test_bench_table3(benchmark):
    experiment = run_once(benchmark, table3.run)
    by_benchmark = {}
    for row in experiment.rows:
        by_benchmark.setdefault(row["benchmark"], {})[row["policy"]] = row
    for name, policies in by_benchmark.items():
        # Paper shape: Eager pays extra gates for uncomputation, Lazy does
        # not; no policy may exceed the 25-qubit machine.
        assert policies["eager"]["gates"] >= policies["lazy"]["gates"], name
        for row in policies.values():
            assert row["qubits"] <= 25
    print(table3.format_report(experiment))
