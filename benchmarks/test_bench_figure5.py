"""Benchmark: regenerate Figure 5 (locality changes the preferred strategy)."""

from benchmarks.conftest import run_once
from repro.experiments import figure5


def test_bench_figure5(benchmark):
    experiment = run_once(benchmark, figure5.run)
    aqv = experiment.extras["aqv"]
    # On the fully-connected machine uncomputation buys nothing, so Lazy
    # must beat Eager (the right-hand side of Figure 5).
    assert aqv["fully-connected"]["lazy"] < aqv["fully-connected"]["eager"]
    # On both machines SQUARE must not lose to the better baseline by much
    # (it adapts to the machine).
    best_lattice = min(aqv["lattice"]["lazy"], aqv["lattice"]["eager"])
    assert aqv["lattice"]["square"] <= 1.2 * best_lattice
    print(figure5.format_report(experiment))
