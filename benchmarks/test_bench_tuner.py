"""Benchmark: tuning-trial throughput through the tuner machinery.

Establishes the tuner-layer performance trajectory: how many trials per
second the strategy → job-expansion → backend → scoring → journal
pipeline sustains, separated into

* **warm-session trials** — a grid search whose session memo is already
  warm, so the measurement is the per-trial tuner overhead (fingerprint
  computation, dedup, journaling, scoring) rather than compilation, and
* **journal resume** — re-running a fully journaled search, i.e. the
  restore path a killed run takes: every trial must come back from the
  JSONL journal with zero compilations.

Both assert a generous throughput floor so a catastrophic regression
(e.g. re-fingerprinting per candidate pair going quadratic, or journal
writes fsync-ing per byte) fails loudly rather than drifting in the
timings.
"""

from __future__ import annotations

from repro.api import MachineSpec, Session
from repro.tuner import GridSearch, SearchSpace, TuningRun

from benchmarks.conftest import run_once

GRID = MachineSpec.nisq_grid(5, 5)

#: Repeats of the search per measurement, to push trial counts up.
ROUNDS = 20


def tuning_run(session, journal_path=None) -> TuningRun:
    """One grid search over the full policy space on one benchmark."""
    run = TuningRun(SearchSpace.policy_space(), "aqv",
                    GridSearch(scale="quick"), ["RD53"],
                    machine=GRID, backend=session,
                    journal_path=journal_path)
    run.run()
    return run


def repeat_tuning(session, rounds: int) -> int:
    """Re-run the search ``rounds`` times against one warm session."""
    trials = 0
    for _ in range(rounds):
        trials += tuning_run(session).trials_total
    return trials


def test_bench_warm_trial_throughput(benchmark):
    """Per-trial tuner overhead with every compilation memoized."""
    session = Session()
    tuning_run(session)  # warm the memo with every candidate
    trials = run_once(benchmark, repeat_tuning, session, ROUNDS)
    trials_per_second = trials / benchmark.stats.stats.mean
    benchmark.extra_info["trials_per_second"] = round(trials_per_second, 1)
    # Catastrophe floor only (orders of magnitude below observed):
    # this runs in the default pytest collection, so it must never
    # flake on a throttled CI machine.
    assert trials_per_second > 50


def resume_many(journal_paths) -> int:
    """Resume one fully-journaled run per path; returns trials restored."""
    restored = 0
    for path in journal_paths:
        run = tuning_run(Session(), journal_path=path)
        assert run.trials_executed == 0, \
            "a complete journal must leave nothing to compile"
        restored += run.journal_restored
    return restored


def test_bench_journal_resume_throughput(benchmark, tmp_path):
    """Restoring a killed run from its journal: no compiles, fast."""
    paths = [tmp_path / f"tune-{index}.jsonl" for index in range(ROUNDS)]
    seed_session = Session()
    for path in paths:  # journal every trial once
        tuning_run(seed_session, journal_path=path)
    restored = run_once(benchmark, resume_many, paths)
    assert restored > 0
    trials_per_second = restored / benchmark.stats.stats.mean
    benchmark.extra_info["trials_per_second"] = round(trials_per_second, 1)
    assert trials_per_second > 20  # catastrophe floor, as above
