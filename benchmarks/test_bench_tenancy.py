"""Benchmark: fair-share scheduling and durable-store overhead.

Starts the machine-readable perf trajectory the ROADMAP asks for: in
addition to pytest-benchmark timings, this module writes
``BENCH_tenancy.json`` at the repo root with three headline numbers —

* **fair-share queue throughput** — jobs/sec through the full
  submit → fair-share pop → worker → record pipeline with a no-op
  runner and three tenants competing, i.e. the tenancy tax on the
  queue-machinery benchmark next door;
* **scheduler pop latency** — mean microseconds per ``pop()`` against a
  deep backlog, since the fair-share pop is an O(depth) score scan
  rather than a heap pop;
* **WAL replay time** — jobs/sec recovered when a restarted store
  replays its journal, the cost a server pays at boot.

Each also asserts a generous catastrophe floor (far below observed
numbers) so a regression that serializes the pipeline or makes replay
quadratic fails loudly on any machine.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.queue import JobManager, JobQueue, QueuedJob
from repro.tenancy import FairShareScheduler, JsonlJobStore, Tenant

from benchmarks.conftest import run_once

#: Jobs pushed through each pipeline per measurement round.
QUEUE_JOBS = 500
POP_BACKLOG = 300
WAL_JOBS = 400

TENANTS = (
    Tenant("alpha", role="admin", api_key="bk-alpha"),
    Tenant("bravo", role="standard", api_key="bk-bravo"),
    Tenant("charlie", role="batch", api_key="bk-charlie"),
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_tenancy.json"

#: Filled by the tests, flushed to ``BENCH_tenancy.json`` on teardown.
RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Flush a versioned benchmark record after the module runs.

    ``REPRO_BENCH_HISTORY=<dir>`` also appends the record to the
    ``<dir>/tenancy.jsonl`` trajectory journal that ``bench compare`` /
    ``bench trend`` read.
    """
    yield
    if not RESULTS:
        return
    from repro.bench import write_bench

    write_bench(str(BENCH_PATH), "tenancy", RESULTS,
                history_dir=os.environ.get("REPRO_BENCH_HISTORY") or None)


def drain_fairshare_manager(jobs: int, workers: int) -> int:
    """Submit ``jobs`` no-op jobs across three tenants, wait for all."""
    manager = JobManager(lambda job: {"ok": True}, workers=workers,
                         queue_size=jobs, retention=jobs,
                         scheduler=FairShareScheduler())
    try:
        tickets = [manager.submit("compile", {"job": {}},
                                  tenant=TENANTS[index % len(TENANTS)])
                   for index in range(jobs)]
        for ticket in tickets:
            manager.wait(ticket.job_id, timeout=60)
        return manager.completed
    finally:
        manager.close()


def pop_deep_backlog(depth: int) -> int:
    """Fill a fair-share queue to ``depth``, then pop it dry."""
    queue = JobQueue(capacity=depth, scheduler=FairShareScheduler())
    for index in range(depth):
        job = QueuedJob(f"job-{index:06d}", "compile", {"job": {}})
        job.tenant = TENANTS[index % len(TENANTS)]
        queue.push(job)
    popped = 0
    while queue.pop(timeout=0) is not None:
        popped += 1
    return popped


def replay_wal(root: Path) -> int:
    """Reopen a journal and replay every record (server boot path)."""
    store = JsonlJobStore(root)
    try:
        return len(store.load())
    finally:
        store.close()


def test_bench_fairshare_queue_throughput(benchmark):
    """Queue machinery with fair-share scoring and tenant accounting."""
    completed = run_once(benchmark, drain_fairshare_manager, QUEUE_JOBS,
                         workers=2)
    assert completed == QUEUE_JOBS
    jobs_per_second = QUEUE_JOBS / benchmark.stats.stats.mean
    benchmark.extra_info["jobs_per_second"] = round(jobs_per_second, 1)
    RESULTS["fairshare_queue_jobs_per_second"] = round(jobs_per_second, 1)
    # Catastrophe floor only, as in test_bench_service_throughput: this
    # runs in the default collection and must not flake on slow CI.
    assert jobs_per_second > 20


def test_bench_scheduler_pop_latency(benchmark):
    """Mean pop latency against a deep multi-tenant backlog."""
    popped = run_once(benchmark, pop_deep_backlog, POP_BACKLOG)
    assert popped == POP_BACKLOG
    pop_micros = benchmark.stats.stats.mean / POP_BACKLOG * 1e6
    benchmark.extra_info["pop_latency_us"] = round(pop_micros, 1)
    RESULTS["scheduler_pop_latency_us"] = round(pop_micros, 1)
    # The O(depth) scan must stay far under a worker's job granularity.
    assert pop_micros < 50_000


def test_bench_wal_replay(benchmark, tmp_path):
    """Journal replay throughput on the restart/recovery path."""
    store = JsonlJobStore(tmp_path)
    for index in range(WAL_JOBS):
        job = QueuedJob(f"job-{index:06d}", "compile", {"job": {}})
        job.tenant = TENANTS[index % len(TENANTS)]
        store.record_submit(job)
        job.transition("RUNNING")
        store.record_transition(job)
        job.response = {"ok": True}
        job.transition("DONE")
        store.record_transition(job)
    store.close()

    replayed = run_once(benchmark, replay_wal, tmp_path)
    assert replayed == WAL_JOBS
    jobs_per_second = WAL_JOBS / benchmark.stats.stats.mean
    benchmark.extra_info["replay_jobs_per_second"] = round(jobs_per_second, 1)
    RESULTS["wal_replay_jobs_per_second"] = round(jobs_per_second, 1)
    assert jobs_per_second > 50
