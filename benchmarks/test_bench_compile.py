"""Benchmark: the compile path itself, profiled phase by phase.

Writes ``BENCH_compile.json`` at the repo root — the first artifact of
the compile perf trajectory.  Every entry pairs a phase's wall seconds
with the machine-independent work counter that phase chewed through
(:mod:`repro.profile`), so the headline unit is **throughput** —
gates/sec through allocation, segments/sec through liveness — which is
comparable across the machines that run this suite, unlike raw
seconds.

The ladder is the same registry cross-section the telemetry bench uses:
small oracles on a fixed 5x5 lattice plus quick-scale wide arithmetic
on a 256-qubit machine, under all three reuse policies.  Compiles run
fresh and in-process (never through a cache), because phase timings are
telemetry that deliberately does not survive serialization.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.api import MachineSpec
from repro.profile import PHASE_WORK, ProfileReport, profile_benchmarks

from benchmarks.conftest import run_once

SMALL = ("RD53", "6SYM", "2OF5", "ADDER4")
LARGE = ("ADDER32", "MUL32")
POLICIES = ("eager", "lazy", "square")
GRID = MachineSpec.nisq_grid(5, 5)
BIG = MachineSpec(kind="nisq", num_qubits=256)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_compile.json"

#: Filled by the tests, flushed to ``BENCH_compile.json`` on teardown.
RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Flush a versioned benchmark record after the module runs.

    ``REPRO_BENCH_HISTORY=<dir>`` also appends the record to the
    ``<dir>/compile.jsonl`` trajectory journal that ``bench compare`` /
    ``bench trend`` read.
    """
    yield
    if not RESULTS:
        return
    from repro.bench import write_bench

    write_bench(str(BENCH_PATH), "compile", RESULTS,
                history_dir=os.environ.get("REPRO_BENCH_HISTORY") or None)


def _ladder() -> ProfileReport:
    """Profile the whole ladder: SMALL on the lattice, LARGE at quick
    scale on the big machine, every policy."""
    small = profile_benchmarks(SMALL, GRID, policies=POLICIES,
                               scale="quick")
    large = profile_benchmarks(LARGE, BIG, policies=POLICIES,
                               scale="quick")
    return ProfileReport(list(small) + list(large))


def test_bench_compile_path(benchmark):
    """Profile the paper-scale ladder; emit per-phase gates/sec."""
    _ladder()  # warm caches of everything but the compiles themselves

    report = run_once(benchmark, _ladder)
    assert len(report) == (len(SMALL) + len(LARGE)) * len(POLICIES)

    # Every profile carries every pipeline phase with live timings and
    # non-trivial deterministic work counters.
    for profile in report:
        assert set(profile.phase_seconds) == set(PHASE_WORK), profile.label
        assert profile.counters["gates"] > 0, profile.label
        assert profile.counters["liveness_events"] > 0, profile.label

    # Fleet throughput per phase: total work over total seconds.
    totals = report.phase_totals()
    work = {phase: sum(profile.phase_work(phase) for profile in report)
            for phase in totals}
    rates = {phase: round(work[phase] / seconds, 1) if seconds > 0
             else float(work[phase])
             for phase, seconds in totals.items()}
    assert all(rate > 0 for rate in rates.values())

    benchmark.extra_info["jobs"] = len(report)
    benchmark.extra_info["total_compile_seconds"] = round(
        report.total_seconds(), 4)
    RESULTS["jobs"] = len(report)
    RESULTS["total_compile_seconds"] = round(report.total_seconds(), 4)
    RESULTS["phase_seconds"] = {phase: round(seconds, 6)
                                for phase, seconds in totals.items()}
    RESULTS["phase_work"] = work
    RESULTS["phase_rates_per_second"] = rates
    RESULTS["hotspots_top5"] = [
        {"label": row["label"], "phase": row["phase"],
         "seconds": round(row["seconds"], 6),
         "share": round(row["share"], 4),
         "rate_per_second": round(row["rate"], 1)}
        for row in report.hotspots(top=5)
    ]
    RESULTS["profiles"] = [profile.to_dict() for profile in report]
