"""Benchmark: raw compiler throughput (not a paper figure).

Measures the instrumentation-driven compiler itself — how long one
compilation of a mid-sized benchmark takes under each policy — which is
the quantity the paper's Section III-D argues scales linearly with the
number of reclamation points.
"""

import pytest

from repro.arch.nisq import NISQMachine
from repro.core.compiler import compile_program
from repro.workloads import load_benchmark

POLICIES = ("lazy", "eager", "square")


@pytest.mark.parametrize("policy", POLICIES)
def test_bench_compile_adder32(benchmark, policy):
    program = load_benchmark("ADDER32")
    machine = NISQMachine.with_qubits(192)
    result = benchmark(compile_program, program, machine, policy=policy)
    assert result.gate_count > 0


@pytest.mark.parametrize("policy", POLICIES)
def test_bench_compile_sha2_small(benchmark, policy):
    program = load_benchmark("SHA2", word_width=4, rounds=2)
    machine = NISQMachine.with_qubits(256)
    result = benchmark(compile_program, program, machine, policy=policy)
    assert result.gate_count > 0
