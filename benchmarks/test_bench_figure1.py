"""Benchmark: regenerate Figure 1 (qubit usage over time for MODEXP)."""

from benchmarks.conftest import run_once
from repro.experiments import figure1


def test_bench_figure1(benchmark):
    experiment = run_once(benchmark, figure1.run, scale="quick")
    areas = {row["policy"]: row["area (AQV)"] for row in experiment.rows}
    peaks = {row["policy"]: row["peak qubits"] for row in experiment.rows}
    # Paper shape: Eager trades qubits for time, Lazy the reverse, SQUARE
    # has the smallest area under the curve.
    assert peaks["eager"] < peaks["lazy"]
    assert areas["square"] <= areas["lazy"]
    assert areas["square"] <= areas["eager"]
    print(figure1.format_report(experiment))
