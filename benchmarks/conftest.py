"""Benchmark-harness configuration.

Each benchmark regenerates one table or figure of the paper's evaluation
at "quick" scale (reduced register widths / round counts) so the full
sweep finishes in minutes.  Pass ``--benchmark-only`` to run them; the
reported wall-clock is the end-to-end experiment time, and every
benchmark also asserts the qualitative result ("who wins") that the
corresponding figure reports.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
