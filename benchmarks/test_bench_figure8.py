"""Benchmarks: regenerate the three panels of Figure 8 (NISQ impact)."""

from benchmarks.conftest import run_once
from repro.experiments import figure8


def test_bench_figure8a_aqv(benchmark):
    experiment = run_once(benchmark, figure8.run_aqv)
    wins = sum(1 for row in experiment.rows if row["square"] <= row["lazy"])
    # Paper shape: SQUARE's AQV is at or below Lazy's for most benchmarks.
    assert wins >= len(experiment.rows) // 2
    print(figure8.format_report(experiment))


def test_bench_figure8b_success_rate(benchmark):
    experiment = run_once(benchmark, figure8.run_success)
    for row in experiment.rows:
        for policy in ("lazy", "eager", "square"):
            assert 0.0 < row[policy] <= 1.0
    # Paper headline: SQUARE improves mean success rate vs Eager.
    assert experiment.extras["mean_improvement_vs_eager"] > 1.0
    print(figure8.format_report(experiment))
    print(f"mean improvement vs eager: "
          f"{experiment.extras['mean_improvement_vs_eager']:.2f}x, "
          f"vs lazy: {experiment.extras['mean_improvement_vs_lazy']:.2f}x")


def test_bench_figure8c_noise_simulation(benchmark):
    experiment = run_once(benchmark, figure8.run_noise, shots=1024)
    for row in experiment.rows:
        for policy in ("lazy", "eager", "square"):
            assert 0.0 <= row[policy] <= 1.0
    # Paper shape: SQUARE reaches the lowest (or tied) distance for most
    # benchmarks.
    wins = sum(
        1 for row in experiment.rows
        if row["square"] <= min(row["lazy"], row["eager"]) + 0.05
    )
    assert wins >= len(experiment.rows) // 2
    print(figure8.format_report(experiment))
