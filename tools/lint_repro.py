#!/usr/bin/env python3
"""Project-specific static lint for concurrency and timing hazards.

Pure-stdlib (``ast``) checks for the failure modes this codebase has
actually hit in its threaded service stack — the classes of bug the
generic linters don't know about:

* **LR001 wall-clock** — ``time.time()`` inside the queue/service/
  cluster layers.  Durations and deadlines there must use
  ``time.monotonic()`` (wall clocks jump under NTP/DST and corrupt
  uptimes and timeouts).  Genuine wall-clock timestamps (wire records,
  file-mtime comparisons) are annotated ``# lint: wall-clock``.
* **LR002 bare-except** — ``except:`` swallows ``KeyboardInterrupt``
  and ``SystemExit``; catch ``Exception`` (or narrower) instead.
* **LR003 thread-daemon** — ``threading.Thread(...)`` without
  ``daemon=``: a forgotten non-daemon thread blocks interpreter exit.
  Threads that are explicitly joined carry ``# lint: joined-thread``.
* **LR004 lock-guard** — an attribute mutated under ``with self.<lock>``
  in one method but mutated bare in another method of the same class is
  a data race.  Constructors are exempt (no sharing yet); intentional
  unguarded writes carry ``# lint: unlocked``.
* **LR005 telemetry-clock** — ``time.time()`` anywhere in
  ``src/repro/telemetry/`` or in the compiler's phase timers
  (``core/compiler.py``).  Timing instruments (histograms, EWMA rates,
  phase timers) must read ``time.monotonic()`` or
  ``time.perf_counter()``; a wall clock that steps under NTP produces
  negative or wildly wrong durations.  Genuine timestamps are annotated
  ``# lint: wall-clock`` like LR001.
* **LR006 manual-span** — a ``Span`` started via ``.start()`` with no
  ``finally`` that finishes it (and ``Span(...).start()`` inline, which
  nothing can ever finish).  An unfinished span never reaches its
  recorder, so the leak is invisible until a waterfall comes up empty;
  open spans with ``with recorder.span(...)`` instead, or close the
  manual start in a ``try/finally``.  Deliberate manual lifecycles
  carry ``# lint: manual-span``.

Suppression: a ``# lint: <tag>[, <tag>...]`` comment on the offending
line disables the matching rule there (``# lint: off`` disables all).

Usage::

    python tools/lint_repro.py            # lint src/repro + tools
    python tools/lint_repro.py PATH ...   # lint specific files/trees

Exit status 1 when any finding is reported, 0 when clean.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

#: Rule id -> (pragma tag, one-line description).
RULES: Dict[str, Tuple[str, str]] = {
    "LR001": ("wall-clock",
              "time.time() in queue/service/cluster code; use "
              "time.monotonic() for durations"),
    "LR002": ("bare-except",
              "bare `except:` swallows KeyboardInterrupt/SystemExit"),
    "LR003": ("joined-thread",
              "threading.Thread(...) without daemon=; non-daemon "
              "threads block interpreter exit"),
    "LR004": ("unlocked",
              "lock-guarded attribute mutated outside `with self.<lock>`"),
    "LR005": ("wall-clock",
              "time.time() in telemetry/phase-timing code; timing "
              "instruments must use time.monotonic()/perf_counter()"),
    "LR006": ("manual-span",
              "Span started manually without a finally/with closing "
              "it; unfinished spans never reach their recorder"),
}

#: Directory names whose files get the LR001 wall-clock rule.
MONOTONIC_LAYERS = ("queue", "service", "cluster", "tenancy")

#: Files whose durations feed metrics directly: the LR005 rule.
TELEMETRY_LAYER = "telemetry"
PHASE_TIMER_FILES = (("core", "compiler.py"),)

_PRAGMA = re.compile(r"#\s*lint:\s*([\w\-, ]+)")

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore"}


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _pragmas(source: str) -> Dict[int, Set[str]]:
    """Per-line suppression tags from ``# lint: ...`` comments."""
    tags: Dict[int, Set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match:
            tags[number] = {tag.strip()
                            for tag in match.group(1).split(",")}
    return tags


def _suppressed(pragmas: Dict[int, Set[str]], line: int, rule: str) -> bool:
    tags = pragmas.get(line, set())
    return "off" in tags or RULES[rule][0] in tags


def _is_call_to(node: ast.AST, module: str, name: str) -> bool:
    """True for ``module.name(...)`` and bare ``name(...)`` calls."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return (func.attr == name and isinstance(func.value, ast.Name)
                and func.value.id == module)
    return isinstance(func, ast.Name) and func.id == name


# ----------------------------------------------------------------------
# LR001 / LR002 / LR003: single-pass node checks
# ----------------------------------------------------------------------
def _check_wall_clock(tree: ast.AST) -> Iterable[Tuple[int, str]]:
    for node in ast.walk(tree):
        if _is_call_to(node, "time", "time"):
            yield (node.lineno,
                   "time.time() used here; durations/deadlines need "
                   "time.monotonic() (annotate `# lint: wall-clock` for "
                   "genuine timestamps)")


def _time_aliases(tree: ast.AST) -> Tuple[Set[str], Set[str]]:
    """Names the ``time`` module (and its ``time`` function) is bound to.

    Returns ``(module_names, function_names)`` covering ``import time``,
    ``import time as _time`` and ``from time import time [as now]`` —
    the phase timers alias the module, so a literal ``time.time`` match
    would miss them.
    """
    modules: Set[str] = set()
    functions: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    functions.add(alias.asname or alias.name)
    return modules, functions


def _check_telemetry_clock(tree: ast.AST) -> Iterable[Tuple[int, str]]:
    modules, functions = _time_aliases(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        module_call = (isinstance(func, ast.Attribute)
                       and func.attr == "time"
                       and isinstance(func.value, ast.Name)
                       and func.value.id in modules)
        bare_call = (isinstance(func, ast.Name) and func.id in functions)
        if module_call or bare_call:
            yield (node.lineno,
                   "wall clock read in timing instrumentation; use "
                   "time.monotonic()/time.perf_counter() (annotate "
                   "`# lint: wall-clock` for genuine timestamps)")


def _check_bare_except(tree: ast.AST) -> Iterable[Tuple[int, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield (node.lineno,
                   "bare `except:`; catch Exception (or narrower) so "
                   "KeyboardInterrupt/SystemExit still propagate")


def _check_thread_daemon(tree: ast.AST) -> Iterable[Tuple[int, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        named_thread = (isinstance(func, ast.Attribute)
                        and func.attr == "Thread"
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "threading")
        bare_thread = isinstance(func, ast.Name) and func.id == "Thread"
        if not (named_thread or bare_thread):
            continue
        if any(keyword.arg == "daemon" for keyword in node.keywords):
            continue
        yield (node.lineno,
               "threading.Thread without daemon=; pass daemon=True, or "
               "annotate `# lint: joined-thread` when the thread is "
               "explicitly joined")


# ----------------------------------------------------------------------
# LR006: span lifecycle discipline
# ----------------------------------------------------------------------
def _is_span_ctor(node: ast.AST) -> bool:
    """True for ``Span(...)`` / ``spans.Span(...)`` constructor calls."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "Span"
    return isinstance(func, ast.Name) and func.id == "Span"


def _target_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a simple target (``span``, ``self.span``)."""
    if isinstance(node, ast.Name):
        return node.id
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)):
        return f"{node.value.id}.{node.attr}"
    return None


def _check_manual_span(tree: ast.AST) -> Iterable[Tuple[int, str]]:
    """Flag ``Span`` objects started manually with nothing closing them.

    A span that is never finished never reaches its recorder — the job
    silently vanishes from every waterfall.  The safe forms are a
    ``with recorder.span(...)`` / ``with Span(...)`` block, or a manual
    ``.start()`` inside a ``try`` whose ``finally`` calls ``.finish()``
    (or ``.close()``) on the same name.
    """
    span_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_span_ctor(node.value):
            for target in node.targets:
                name = _target_name(target)
                if name is not None:
                    span_names.add(name)

    # Line ranges of try-bodies whose finally finishes a given name.
    protected: List[Tuple[int, int, Set[str]]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        finished: Set[str] = set()
        for statement in node.finalbody:
            for call in ast.walk(statement):
                if (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in ("finish", "close")):
                    name = _target_name(call.func.value)
                    if name is not None:
                        finished.add(name)
        if finished:
            low = node.lineno
            high = max(statement.end_lineno or statement.lineno
                       for statement in node.body)
            protected.append((low, high, finished))

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "start"):
            continue
        if _is_span_ctor(func.value):
            yield (node.lineno,
                   "Span(...).start() discards the only reference; the "
                   "span can never be finished — use `with "
                   "recorder.span(...)` instead")
            continue
        name = _target_name(func.value)
        if name is None or name not in span_names:
            continue
        if any(low <= node.lineno <= high and name in names
               for low, high, names in protected):
            continue
        yield (node.lineno,
               f"{name}.start() has no finally/with closing it; an "
               f"unfinished span never reaches its recorder — use "
               f"`with recorder.span(...)`, close it in try/finally, or "
               f"annotate `# lint: manual-span`")


# ----------------------------------------------------------------------
# LR004: lock-guarded attribute discipline, per class
# ----------------------------------------------------------------------
class _Mutation(NamedTuple):
    attr: str
    line: int
    guarded: bool
    method: str


def _lock_attrs(class_node: ast.ClassDef) -> Set[str]:
    """Attributes assigned a ``threading.Lock()``-family object."""
    locks: Set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_lock = any(_is_call_to(value, "threading", factory)
                      for factory in _LOCK_FACTORIES)
        if not is_lock:
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                locks.add(target.attr)
    return locks


def _with_holds_lock(node: ast.With, locks: Set[str]) -> bool:
    for item in node.items:
        expr = item.context_expr
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and expr.attr in locks):
            return True
    return False


def _self_attr_targets(node: ast.stmt) -> List[Tuple[str, int]]:
    """``self.<attr>`` names written by an Assign/AugAssign statement."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return []
    written = []
    for target in targets:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            written.append((target.attr, node.lineno))
    return written


def _collect_mutations(method: ast.FunctionDef, locks: Set[str],
                       inside: bool = False) -> List[_Mutation]:
    mutations: List[_Mutation] = []

    def visit(statements: Iterable[ast.stmt], guarded: bool) -> None:
        for statement in statements:
            for attr, line in _self_attr_targets(statement):
                mutations.append(_Mutation(attr, line, guarded,
                                           method.name))
            if isinstance(statement, ast.With):
                visit(statement.body,
                      guarded or _with_holds_lock(statement, locks))
            elif isinstance(statement, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                continue  # nested defs run later, under their own rules
            else:
                for field in ("body", "orelse", "finalbody"):
                    visit(getattr(statement, field, []) or [], guarded)
                for handler in getattr(statement, "handlers", []) or []:
                    visit(handler.body, guarded)

    visit(method.body, inside)
    return mutations


def _check_lock_guard(tree: ast.AST) -> Iterable[Tuple[int, str]]:
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        locks = _lock_attrs(class_node)
        if not locks:
            continue
        mutations: List[_Mutation] = []
        for node in class_node.body:
            if isinstance(node, ast.FunctionDef):
                mutations.extend(_collect_mutations(node, locks))
        guarded_attrs = {m.attr for m in mutations
                         if m.guarded and m.method != "__init__"}
        for mutation in mutations:
            if mutation.guarded or mutation.method == "__init__":
                continue
            if mutation.attr in locks or mutation.attr not in guarded_attrs:
                continue
            yield (mutation.line,
                   f"self.{mutation.attr} is mutated under a lock "
                   f"elsewhere in {class_node.name} but bare here in "
                   f"{mutation.method}(); wrap in `with self.<lock>` or "
                   f"annotate `# lint: unlocked`")


# ----------------------------------------------------------------------
def lint_file(path: Path, root: Path) -> List[Finding]:
    """Run every applicable rule over one file."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Finding(str(path), error.lineno or 0, "LR000",
                        f"syntax error: {error.msg}")]
    pragmas = _pragmas(source)
    relative = path.relative_to(root) if path.is_relative_to(root) else path
    checks = [("LR002", _check_bare_except),
              ("LR003", _check_thread_daemon),
              ("LR004", _check_lock_guard),
              ("LR006", _check_manual_span)]
    if any(layer in relative.parts for layer in MONOTONIC_LAYERS):
        checks.insert(0, ("LR001", _check_wall_clock))
    if (TELEMETRY_LAYER in relative.parts
            or relative.parts[-2:] in [tuple(p) for p in PHASE_TIMER_FILES]):
        checks.append(("LR005", _check_telemetry_clock))
    findings = []
    for rule, check in checks:
        for line, message in check(tree):
            if not _suppressed(pragmas, line, rule):
                findings.append(Finding(str(relative), line, rule, message))
    return sorted(findings)


def lint_paths(paths: Iterable[Path], root: Path) -> List[Finding]:
    findings: List[Finding] = []
    for path in paths:
        if path.is_dir():
            findings.extend(finding
                            for file in sorted(path.rglob("*.py"))
                            for finding in lint_file(file, root))
        else:
            findings.extend(lint_file(path, root))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Repo-specific concurrency/timing lint (see module "
                    "docstring for the rule table).")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: src/repro and tools)")
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parent.parent
    paths = args.paths or [root / "src" / "repro", root / "tools"]
    findings = lint_paths(paths, root)
    for finding in findings:
        print(finding.describe())
    if findings:
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("lint_repro: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
