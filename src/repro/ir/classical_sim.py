"""Bit-level simulation of classical reversible circuits.

Reversible arithmetic (adders, multipliers, oracles) maps computational
basis states to computational basis states, so its functional correctness
can be checked with plain bit operations in O(#gates) — no state vector
required.  This simulator backs the workload unit tests and the
reversibility validator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import NonClassicalGateError, SimulationError
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate


def apply_classical_gate(bits: List[int], gate: Gate) -> None:
    """Apply a classical reversible gate to ``bits`` in place."""
    name = gate.name
    qubits = gate.qubits
    if name == "x":
        bits[qubits[0]] ^= 1
    elif name == "cx":
        bits[qubits[1]] ^= bits[qubits[0]]
    elif name == "ccx":
        bits[qubits[2]] ^= bits[qubits[0]] & bits[qubits[1]]
    elif name == "swap":
        a, b = qubits
        bits[a], bits[b] = bits[b], bits[a]
    elif name == "barrier":
        return
    else:
        raise NonClassicalGateError(
            f"gate {name!r} is not classical reversible logic"
        )


def simulate_classical(
    circuit: Circuit,
    initial: Optional[Mapping[int, int] | Sequence[int]] = None,
) -> List[int]:
    """Run a classical reversible circuit on a basis-state input.

    Args:
        circuit: Circuit containing only x / cx / ccx / swap / barrier gates.
        initial: Either a full bit list of length ``circuit.num_qubits`` or a
            sparse mapping from wire index to bit; missing wires start at 0.

    Returns:
        The final bit values for every wire.

    Raises:
        NonClassicalGateError: On any non-classical gate.
        SimulationError: If the initial assignment is malformed.
    """
    bits = [0] * circuit.num_qubits
    if initial is not None:
        if isinstance(initial, Mapping):
            for wire, value in initial.items():
                if not 0 <= wire < circuit.num_qubits:
                    raise SimulationError(f"initial wire {wire} out of range")
                bits[wire] = 1 if value else 0
        else:
            values = list(initial)
            if len(values) > circuit.num_qubits:
                raise SimulationError(
                    f"initial assignment has {len(values)} bits for a "
                    f"{circuit.num_qubits}-qubit circuit"
                )
            for wire, value in enumerate(values):
                bits[wire] = 1 if value else 0
    for gate in circuit:
        apply_classical_gate(bits, gate)
    return bits


def bits_to_int(bits: Iterable[int]) -> int:
    """Interpret ``bits`` little-endian (bits[0] is the least significant)."""
    value = 0
    for position, bit in enumerate(bits):
        if bit:
            value |= 1 << position
    return value


def int_to_bits(value: int, width: int) -> List[int]:
    """Little-endian bit decomposition of ``value`` padded to ``width``."""
    if value < 0:
        raise SimulationError("value must be non-negative")
    if width < 0:
        raise SimulationError("width must be non-negative")
    if value >= (1 << width) and width > 0:
        raise SimulationError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def truth_table(circuit: Circuit, input_wires: Sequence[int],
                output_wires: Sequence[int]) -> Dict[int, int]:
    """Exhaustively evaluate a classical circuit over all inputs.

    Only practical for small input widths (used by oracle unit tests).
    """
    width = len(input_wires)
    table: Dict[int, int] = {}
    for value in range(1 << width):
        assignment = {wire: bit for wire, bit in zip(input_wires, int_to_bits(value, width))}
        final = simulate_classical(circuit, assignment)
        table[value] = bits_to_int(final[w] for w in output_wires)
    return table
