"""Gate decomposition to the Clifford+T instruction set.

Section II-C of the paper assumes the target instruction set is
Clifford+T.  Toffoli gates are decomposed into the standard 7-T circuit
(Nielsen & Chuang, also [27]-[31] in the paper) and SWAP gates into three
CNOTs.  Decomposition is used when estimating fault-tolerant gate costs
(T-count) and when feeding circuits to the state-vector simulator in a
restricted basis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.exceptions import UnknownGateError
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate, make_gate

#: Gates considered native to a Clifford+T machine.
CLIFFORD_T_BASIS = frozenset({
    "x", "y", "z", "h", "s", "sdg", "t", "tdg", "cx", "cz",
    "measure", "reset", "barrier",
})


def decompose_toffoli(control_a: int, control_b: int, target: int) -> List[Gate]:
    """Standard 7-T decomposition of a Toffoli gate.

    Returns a list of 15 Clifford+T gates implementing CCX exactly.
    """
    a, b, c = control_a, control_b, target
    sequence = [
        ("h", (c,)),
        ("cx", (b, c)),
        ("tdg", (c,)),
        ("cx", (a, c)),
        ("t", (c,)),
        ("cx", (b, c)),
        ("tdg", (c,)),
        ("cx", (a, c)),
        ("t", (b,)),
        ("t", (c,)),
        ("h", (c,)),
        ("cx", (a, b)),
        ("t", (a,)),
        ("tdg", (b,)),
        ("cx", (a, b)),
    ]
    return [make_gate(name, qubits) for name, qubits in sequence]


def decompose_swap(a: int, b: int) -> List[Gate]:
    """A SWAP is three alternating CNOTs."""
    return [
        make_gate("cx", (a, b)),
        make_gate("cx", (b, a)),
        make_gate("cx", (a, b)),
    ]


def decompose_gate(gate: Gate) -> List[Gate]:
    """Decompose one gate into the Clifford+T basis (identity if native)."""
    if gate.name in CLIFFORD_T_BASIS:
        return [gate]
    if gate.name == "ccx":
        return decompose_toffoli(*gate.qubits)
    if gate.name == "swap":
        return decompose_swap(*gate.qubits)
    raise UnknownGateError(
        f"no Clifford+T decomposition registered for gate {gate.name!r}"
    )


def decompose_circuit(circuit: Circuit) -> Circuit:
    """Return an equivalent circuit using only Clifford+T gates."""
    result = Circuit(circuit.num_qubits, name=f"{circuit.name}_cliffordt")
    for gate in circuit:
        result.extend(decompose_gate(gate))
    return result


def t_count(circuit: Circuit) -> int:
    """Number of T/T-dagger gates after Clifford+T decomposition."""
    counts = clifford_t_counts(circuit)
    return counts.get("t", 0) + counts.get("tdg", 0)


def cnot_count(circuit: Circuit) -> int:
    """Number of CNOT gates after Clifford+T decomposition."""
    return clifford_t_counts(circuit).get("cx", 0)


def clifford_t_counts(circuit: Circuit) -> Dict[str, int]:
    """Gate-name histogram of the Clifford+T decomposition of ``circuit``.

    Computed without materialising the decomposed circuit, so it is cheap
    even for large workloads.
    """
    counts: Dict[str, int] = {}

    def bump(name: str, amount: int = 1) -> None:
        counts[name] = counts.get(name, 0) + amount

    for gate in circuit:
        if gate.name in CLIFFORD_T_BASIS:
            bump(gate.name)
        elif gate.name == "ccx":
            bump("h", 2)
            bump("cx", 6)
            bump("t", 4)
            bump("tdg", 3)
        elif gate.name == "swap":
            bump("cx", 3)
        else:
            raise UnknownGateError(
                f"no Clifford+T decomposition registered for gate {gate.name!r}"
            )
    return counts
