"""Dependency-DAG analysis of flat circuits.

Gates that share a qubit are data-dependent; gates on disjoint qubits can
run in parallel.  The DAG view provides circuit depth, the critical path,
per-layer parallelism and an ASAP layering, all of which feed the gate
scheduler and the evaluation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.ir.circuit import Circuit
from repro.ir.gates import Gate


def build_dependency_dag(circuit: Circuit) -> "nx.DiGraph":
    """Build the gate dependency DAG.

    Nodes are gate positions (integers); an edge u -> v means gate v must
    run after gate u because they share at least one qubit and v appears
    later in program order.  Only the most recent writer per qubit is
    linked, so the graph is the transitive reduction along each wire.
    """
    graph = nx.DiGraph()
    last_on_wire: Dict[int, int] = {}
    for index, gate in enumerate(circuit):
        graph.add_node(index, gate=gate)
        predecessors = {last_on_wire[q] for q in gate.qubits if q in last_on_wire}
        for pred in predecessors:
            graph.add_edge(pred, index)
        for q in gate.qubits:
            last_on_wire[q] = index
    return graph


def asap_layers(circuit: Circuit) -> List[List[int]]:
    """Partition gate indices into ASAP layers (greedy earliest start)."""
    layer_of: Dict[int, int] = {}
    wire_layer: Dict[int, int] = {}
    for index, gate in enumerate(circuit):
        if not gate.qubits:
            layer_of[index] = 0
            continue
        start = max((wire_layer.get(q, 0) for q in gate.qubits), default=0)
        layer_of[index] = start
        for q in gate.qubits:
            wire_layer[q] = start + 1
    if not layer_of:
        return []
    depth = max(layer_of.values()) + 1
    layers: List[List[int]] = [[] for _ in range(depth)]
    for index, layer in layer_of.items():
        layers[layer].append(index)
    return layers


def critical_path(circuit: Circuit) -> List[int]:
    """Return gate indices along one longest dependency chain."""
    graph = build_dependency_dag(circuit)
    if graph.number_of_nodes() == 0:
        return []
    return nx.dag_longest_path(graph)


@dataclass(frozen=True)
class ParallelismProfile:
    """Summary of available gate-level parallelism in a circuit.

    Attributes:
        depth: Number of ASAP layers.
        total_gates: Total gate count.
        max_width: Maximum gates in any single layer.
        average_width: Mean gates per layer.
    """

    depth: int
    total_gates: int
    max_width: int
    average_width: float


def parallelism_profile(circuit: Circuit) -> ParallelismProfile:
    """Compute the parallelism profile of ``circuit``."""
    layers = asap_layers(circuit)
    total = sum(len(layer) for layer in layers)
    if not layers:
        return ParallelismProfile(depth=0, total_gates=0, max_width=0, average_width=0.0)
    return ParallelismProfile(
        depth=len(layers),
        total_gates=total,
        max_width=max(len(layer) for layer in layers),
        average_width=total / len(layers),
    )


def interaction_graph(circuit: Circuit) -> "nx.Graph":
    """Weighted qubit-interaction graph (edge weight = #two-qubit gates)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for gate in circuit:
        if gate.num_qubits < 2:
            continue
        qubits: Tuple[int, ...] = gate.qubits
        for i in range(len(qubits)):
            for j in range(i + 1, len(qubits)):
                a, b = qubits[i], qubits[j]
                if graph.has_edge(a, b):
                    graph[a][b]["weight"] += 1
                else:
                    graph.add_edge(a, b, weight=1)
    return graph
