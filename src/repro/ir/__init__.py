"""Quantum intermediate representation: gates, circuits and modular programs."""

from repro.ir.builder import ModuleBuilder
from repro.ir.circuit import Circuit, concatenate
from repro.ir.classical_sim import (
    bits_to_int,
    int_to_bits,
    simulate_classical,
    truth_table,
)
from repro.ir.dag import (
    ParallelismProfile,
    asap_layers,
    build_dependency_dag,
    critical_path,
    interaction_graph,
    parallelism_profile,
)
from repro.ir.decompose import (
    CLIFFORD_T_BASIS,
    clifford_t_counts,
    cnot_count,
    decompose_circuit,
    decompose_gate,
    decompose_swap,
    decompose_toffoli,
    t_count,
)
from repro.ir.flatten import FlatCircuit, Flattener, flatten_module, flatten_program
from repro.ir.gates import (
    CLASSICAL_GATES,
    GATE_SPECS,
    Gate,
    GateSpec,
    gate_spec,
    inverse_gate_name,
    is_classical_gate,
    make_gate,
)
from repro.ir.inverse import (
    check_uncomputable,
    inverse_module,
    invert_statements,
    uncompute_block,
)
from repro.ir.program import (
    CallStmt,
    GateStmt,
    Program,
    QModule,
    Qubit,
    QubitRegister,
    Statement,
)
from repro.ir.validate import (
    validate_program,
    verify_ancilla_restored,
    verify_explicit_uncompute,
)

__all__ = [
    "CLASSICAL_GATES",
    "CLIFFORD_T_BASIS",
    "CallStmt",
    "Circuit",
    "FlatCircuit",
    "Flattener",
    "GATE_SPECS",
    "Gate",
    "GateSpec",
    "GateStmt",
    "ModuleBuilder",
    "ParallelismProfile",
    "Program",
    "QModule",
    "Qubit",
    "QubitRegister",
    "Statement",
    "asap_layers",
    "bits_to_int",
    "build_dependency_dag",
    "check_uncomputable",
    "clifford_t_counts",
    "cnot_count",
    "concatenate",
    "critical_path",
    "decompose_circuit",
    "decompose_gate",
    "decompose_swap",
    "decompose_toffoli",
    "flatten_module",
    "flatten_program",
    "gate_spec",
    "int_to_bits",
    "interaction_graph",
    "inverse_gate_name",
    "inverse_module",
    "invert_statements",
    "is_classical_gate",
    "make_gate",
    "parallelism_profile",
    "simulate_classical",
    "t_count",
    "truth_table",
    "uncompute_block",
    "validate_program",
    "verify_ancilla_restored",
    "verify_explicit_uncompute",
]
