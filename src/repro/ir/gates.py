"""Gate set definitions for the quantum intermediate representation.

The paper (Section II-C) targets the Clifford+T instruction set plus the
reversible-logic gates NOT, CNOT and Toffoli, with SWAP used by the NISQ
router.  Each gate is described by a :class:`GateSpec` (arity, inverse,
whether it is classical reversible logic, default duration) and a circuit
holds lightweight :class:`Gate` instances that reference operand qubits by
index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Tuple

from repro.exceptions import UnknownGateError


@dataclass(frozen=True)
class GateSpec:
    """Static description of a named gate.

    Attributes:
        name: Canonical lower-case gate name (e.g. ``"cx"``).
        num_qubits: Number of operand qubits.
        inverse: Name of the inverse gate (itself for self-inverse gates).
        classical: True when the gate maps computational basis states to
            computational basis states (NOT / CNOT / Toffoli / SWAP), i.e.
            it is classical reversible logic that can be uncomputed.
        duration: Default logical duration in scheduler time units.
        diagonal: True for gates diagonal in the computational basis.
    """

    name: str
    num_qubits: int
    inverse: str
    classical: bool = False
    duration: int = 1
    diagonal: bool = False


def _spec(name, num_qubits, inverse=None, classical=False, duration=1, diagonal=False):
    return GateSpec(
        name=name,
        num_qubits=num_qubits,
        inverse=inverse if inverse is not None else name,
        classical=classical,
        duration=duration,
        diagonal=diagonal,
    )


#: Registry of every gate the IR understands, keyed by canonical name.
GATE_SPECS: Mapping[str, GateSpec] = {
    # Classical reversible logic (uncomputable).
    "x": _spec("x", 1, classical=True),
    "cx": _spec("cx", 2, classical=True, duration=2),
    "ccx": _spec("ccx", 3, classical=True, duration=6),
    "swap": _spec("swap", 2, classical=True, duration=6),
    # Clifford gates.
    "h": _spec("h", 1),
    "z": _spec("z", 1, diagonal=True),
    "s": _spec("s", 1, inverse="sdg", diagonal=True),
    "sdg": _spec("sdg", 1, inverse="s", diagonal=True),
    "y": _spec("y", 1),
    "cz": _spec("cz", 2, duration=2, diagonal=True),
    # Non-Clifford gates.
    "t": _spec("t", 1, inverse="tdg", diagonal=True),
    "tdg": _spec("tdg", 1, inverse="t", diagonal=True),
    # Non-unitary operations.
    "measure": _spec("measure", 1),
    "reset": _spec("reset", 1),
    "barrier": _spec("barrier", 0),
}

#: Gate names that represent classical reversible logic.
CLASSICAL_GATES = frozenset(name for name, spec in GATE_SPECS.items() if spec.classical)

#: Gate names that are not unitary and therefore cannot be inverted.
NON_UNITARY_GATES = frozenset({"measure", "reset"})


def gate_spec(name: str) -> GateSpec:
    """Return the :class:`GateSpec` for ``name``.

    Raises:
        UnknownGateError: If the gate name is not registered.
    """
    try:
        return GATE_SPECS[name]
    except KeyError:
        raise UnknownGateError(f"unknown gate {name!r}") from None


def inverse_gate_name(name: str) -> str:
    """Return the name of the inverse of gate ``name``.

    Raises:
        UnknownGateError: If the gate is unknown.
        ValueError: If the gate is not unitary (measure / reset).
    """
    spec = gate_spec(name)
    if name in NON_UNITARY_GATES:
        raise ValueError(f"gate {name!r} is not unitary and has no inverse")
    return spec.inverse


def is_classical_gate(name: str) -> bool:
    """Return True if ``name`` is classical reversible logic."""
    return gate_spec(name).classical


@dataclass(frozen=True)
class Gate:
    """A gate instance acting on concrete qubit indices.

    Attributes:
        name: Canonical gate name registered in :data:`GATE_SPECS`.
        qubits: Operand qubit indices, control(s) first then target.
    """

    name: str
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        spec = gate_spec(self.name)
        if spec.num_qubits and len(self.qubits) != spec.num_qubits:
            raise UnknownGateError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise UnknownGateError(
                f"gate {self.name!r} has duplicate operand qubits {self.qubits}"
            )

    @property
    def spec(self) -> GateSpec:
        """The static description of this gate."""
        return gate_spec(self.name)

    @property
    def num_qubits(self) -> int:
        """Number of operand qubits."""
        return len(self.qubits)

    @property
    def is_classical(self) -> bool:
        """True when the gate is classical reversible logic."""
        return self.spec.classical

    @property
    def is_unitary(self) -> bool:
        """True when the gate is unitary (invertible)."""
        return self.name not in NON_UNITARY_GATES

    @property
    def duration(self) -> int:
        """Default logical duration in scheduler time units."""
        return self.spec.duration

    def inverse(self) -> "Gate":
        """Return the inverse gate acting on the same qubits."""
        return Gate(inverse_gate_name(self.name), self.qubits)

    def remap(self, mapping: Mapping[int, int]) -> "Gate":
        """Return a copy with qubit indices substituted through ``mapping``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits))

    def __str__(self) -> str:
        operands = " ".join(f"q{q}" for q in self.qubits)
        return f"{self.name} {operands}".strip()


def make_gate(name: str, qubits: Sequence[int]) -> Gate:
    """Construct a :class:`Gate`, validating the name and arity."""
    return Gate(name, tuple(int(q) for q in qubits))
