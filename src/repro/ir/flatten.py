"""Flatten a modular program into a flat gate-level circuit.

The flattener expands every call with *Eager* semantics (each module
uncomputes and frees its own ancillas), which makes every call a clean
unitary on its parameter wires.  This yields the logical reference
circuit used for functional-correctness tests of the workload library
and as input to the state-vector simulator when no architecture is in
play.  Policy-aware expansion (Eager / Lazy / SQUARE with routing and
scheduling) lives in :mod:`repro.core.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CompilationError
from repro.ir.circuit import Circuit
from repro.ir.gates import inverse_gate_name, make_gate
from repro.ir.program import CallStmt, GateStmt, Program, QModule, Qubit, Statement


@dataclass
class FlatCircuit:
    """A flattened program.

    Attributes:
        circuit: The flat gate-level circuit.
        param_wires: Wire index of each parameter qubit of the entry module,
            in parameter order (inputs then outputs).
        max_ancilla_in_use: Peak number of ancilla wires live at any time.
        total_ancilla_wires: Number of distinct ancilla wires ever created.
    """

    circuit: Circuit
    param_wires: Tuple[int, ...]
    max_ancilla_in_use: int
    total_ancilla_wires: int


class _WirePool:
    """Allocates integer wires, optionally reusing freed ancilla wires."""

    def __init__(self, circuit: Circuit, reuse: bool) -> None:
        self._circuit = circuit
        self._reuse = reuse
        self._free: List[int] = []
        self.in_use = 0
        self.peak_in_use = 0
        self.total_created = 0

    def allocate(self) -> int:
        self.in_use += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        if self._reuse and self._free:
            return self._free.pop()
        self.total_created += 1
        return self._circuit.add_qubit()

    def release(self, wire: int) -> None:
        self.in_use -= 1
        if self._reuse:
            self._free.append(wire)


class Flattener:
    """Expand a :class:`~repro.ir.program.Program` into a flat circuit.

    Args:
        reuse_ancilla: When True (default), ancilla wires freed by a module
            are reused by later allocations, mimicking an ideal ancilla heap.
        max_depth: Safety limit on call nesting to catch accidental cycles.
    """

    def __init__(self, reuse_ancilla: bool = True, max_depth: int = 64) -> None:
        self._reuse_ancilla = reuse_ancilla
        self._max_depth = max_depth

    def flatten(self, program: Program) -> FlatCircuit:
        """Flatten ``program`` with Eager (self-cleaning) call semantics."""
        program.validate()
        entry = program.entry
        circuit = Circuit(0, name=program.name)
        pool = _WirePool(circuit, self._reuse_ancilla)
        param_wires = tuple(circuit.add_qubit() for _ in entry.params)
        binding = dict(zip(entry.params, param_wires))
        self._emit_body(entry, binding, circuit, pool, inverted=False, depth=0,
                        top_level=True)
        return FlatCircuit(
            circuit=circuit,
            param_wires=param_wires,
            max_ancilla_in_use=pool.peak_in_use,
            total_ancilla_wires=pool.total_created,
        )

    # ------------------------------------------------------------------
    def _emit_body(
        self,
        module: QModule,
        binding: Dict[Qubit, int],
        circuit: Circuit,
        pool: _WirePool,
        inverted: bool,
        depth: int,
        top_level: bool = False,
    ) -> None:
        """Emit one (possibly inverted) self-cleaning execution of a module."""
        if depth > self._max_depth:
            raise CompilationError(
                f"call depth exceeded {self._max_depth}; recursive program?"
            )
        ancilla_wires = [pool.allocate() for _ in module.ancillas]
        local = dict(binding)
        local.update(zip(module.ancillas, ancilla_wires))

        compute = list(module.compute)
        store = list(module.store)
        # Modules without ancilla have nothing to clean up: their Compute
        # block acts directly on parameters and is never uncomputed.
        if not module.ancillas:
            if not inverted:
                blocks = [(compute, False), (store, False)]
            else:
                blocks = [(store, True), (compute, True)]
        else:
            # The final block is the inverse of Compute: either the explicit
            # Uncompute block written by the programmer (emitted verbatim) or
            # the Compute block emitted in inverted order.
            if module.has_explicit_uncompute:
                final_block = (list(module.uncompute), False)
            else:
                final_block = (compute, True)
            if not inverted:
                blocks = [(compute, False), (store, False), final_block]
            else:
                # (C ; S ; C^-1)^-1  =  C ; S^-1 ; C^-1
                blocks = [(compute, False), (store, True), final_block]

        for statements, block_inverted in blocks:
            self._emit_statements(statements, local, circuit, pool,
                                  block_inverted, depth)

        for wire in ancilla_wires:
            pool.release(wire)

    def _emit_statements(
        self,
        statements: Sequence[Statement],
        binding: Dict[Qubit, int],
        circuit: Circuit,
        pool: _WirePool,
        inverted: bool,
        depth: int,
    ) -> None:
        ordered = reversed(statements) if inverted else statements
        for stmt in ordered:
            if isinstance(stmt, GateStmt):
                name = inverse_gate_name(stmt.name) if inverted else stmt.name
                wires = tuple(binding[q] for q in stmt.qubits)
                circuit.append(make_gate(name, wires))
            elif isinstance(stmt, CallStmt):
                child_binding = {
                    param: binding[arg]
                    for param, arg in zip(stmt.module.params, stmt.args)
                }
                self._emit_body(stmt.module, child_binding, circuit, pool,
                                inverted=inverted, depth=depth + 1)
            else:  # pragma: no cover - defensive
                raise CompilationError(f"unknown statement type {type(stmt)!r}")

def flatten_program(program: Program, reuse_ancilla: bool = True) -> FlatCircuit:
    """Convenience wrapper around :class:`Flattener`."""
    return Flattener(reuse_ancilla=reuse_ancilla).flatten(program)


def flatten_module(module: QModule, reuse_ancilla: bool = True) -> FlatCircuit:
    """Flatten a single module as if it were a whole program."""
    return flatten_program(Program(module), reuse_ancilla=reuse_ancilla)
