"""Scaffold-style builder for modular programs.

:class:`ModuleBuilder` wraps a :class:`~repro.ir.program.QModule` with
context managers that mirror the paper's Compute-Store-Uncompute syntax
(Figure 6)::

    builder = ModuleBuilder("fun1", num_inputs=3, num_outputs=1, num_ancilla=1)
    in_, out, anc = builder.inputs, builder.outputs, builder.ancillas
    with builder.compute():
        builder.ccx(in_[0], in_[1], in_[2])
        builder.cx(in_[2], anc[0])
        builder.ccx(in_[1], in_[0], anc[0])
    with builder.store():
        builder.cx(anc[0], out[0])
    builder.auto_uncompute()          # equivalent to invoking Inverse()
    module = builder.build()

Leaving out ``auto_uncompute`` (and not writing an explicit uncompute
block) means the compiler generates the inverse of the Compute block on
demand, which is the common case.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Sequence, Tuple

from repro.exceptions import IRError
from repro.ir.inverse import invert_statements
from repro.ir.program import Program, QModule, Qubit


class ModuleBuilder:
    """Imperative builder producing a :class:`QModule`.

    Args:
        name: Module (function) name.
        num_inputs: Number of input parameter qubits.
        num_outputs: Number of output parameter qubits.
        num_ancilla: Number of scratch qubits the module allocates.
    """

    def __init__(
        self,
        name: str,
        num_inputs: int,
        num_outputs: int = 0,
        num_ancilla: int = 0,
    ) -> None:
        self._module = QModule(
            name,
            num_inputs=num_inputs,
            num_outputs=num_outputs,
            num_ancilla=num_ancilla,
        )
        self._built = False

    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[Qubit, ...]:
        """Input parameter qubits."""
        return self._module.inputs

    @property
    def outputs(self) -> Tuple[Qubit, ...]:
        """Output parameter qubits."""
        return self._module.outputs

    @property
    def ancillas(self) -> Tuple[Qubit, ...]:
        """Ancilla qubits allocated by the module."""
        return self._module.ancillas

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def compute(self) -> Iterator["ModuleBuilder"]:
        """Direct statements into the Compute block while active."""
        previous = self._module._current_block
        self._module.begin_compute()
        try:
            yield self
        finally:
            self._module._current_block = previous

    @contextlib.contextmanager
    def store(self) -> Iterator["ModuleBuilder"]:
        """Direct statements into the Store block while active."""
        previous = self._module._current_block
        self._module.begin_store()
        try:
            yield self
        finally:
            self._module._current_block = previous

    @contextlib.contextmanager
    def uncompute(self) -> Iterator["ModuleBuilder"]:
        """Direct statements into an explicit Uncompute block while active."""
        previous = self._module._current_block
        self._module.begin_uncompute()
        try:
            yield self
        finally:
            self._module._current_block = previous

    def auto_uncompute(self) -> None:
        """Populate the Uncompute block as the inverse of Compute.

        Only valid for modules whose Compute block contains plain gates; a
        module that calls children should leave the Uncompute block implicit
        so the compiler can invert the call structure with the correct
        per-call-site reclamation records.

        Raises:
            IRError: If the Compute block contains a call statement.
        """
        from repro.ir.program import CallStmt

        if any(isinstance(stmt, CallStmt) for stmt in self._module.compute):
            raise IRError(
                "auto_uncompute() only supports gate-only Compute blocks; "
                "leave the Uncompute block implicit for modules with calls"
            )
        self._module.uncompute = invert_statements(self._module.compute)

    # ------------------------------------------------------------------
    # Gate helpers simply forward to the underlying module.
    def gate(self, name: str, *qubits: Qubit) -> "ModuleBuilder":
        """Append gate ``name`` on ``qubits``."""
        self._module.gate(name, *qubits)
        return self

    def x(self, q: Qubit) -> "ModuleBuilder":
        """Append a NOT gate."""
        return self.gate("x", q)

    def cx(self, control: Qubit, target: Qubit) -> "ModuleBuilder":
        """Append a CNOT gate."""
        return self.gate("cx", control, target)

    def ccx(self, a: Qubit, b: Qubit, target: Qubit) -> "ModuleBuilder":
        """Append a Toffoli gate."""
        return self.gate("ccx", a, b, target)

    def swap(self, a: Qubit, b: Qubit) -> "ModuleBuilder":
        """Append a SWAP gate."""
        return self.gate("swap", a, b)

    def h(self, q: Qubit) -> "ModuleBuilder":
        """Append a Hadamard gate."""
        return self.gate("h", q)

    def call(self, module: QModule, *args: Qubit) -> "ModuleBuilder":
        """Append a call to a child module."""
        self._module.call(module, *args)
        return self

    # ------------------------------------------------------------------
    def build(self) -> QModule:
        """Finalize and return the module (validates structure)."""
        if self._built:
            raise IRError("ModuleBuilder.build() may only be called once")
        self._module.validate()
        self._built = True
        return self._module

    def build_program(self, name: Optional[str] = None) -> Program:
        """Finalize the module and wrap it as a single-module program."""
        return Program(self.build(), name=name)
