"""Modular program representation: the paper's Compute–Store–Uncompute IR.

A program is a tree of :class:`QModule` function definitions.  Each module
mirrors the Scaffold syntactic construct of Figure 6 in the paper::

    void fun(qbit* in, qbit* out) {
        qbit anc[k];
        Allocate(anc, k);
        Compute   { ... }      # forward computation, may call child modules
        Store     { ... }      # copy results onto output qubits
        Uncompute { ... }      # inverse of Compute (may be auto-generated)
        Free(anc, k);
    }

Statements reference symbolic :class:`Qubit` wires.  The SQUARE compiler
(:mod:`repro.core.compiler`) walks this structure, deciding at every
``Free`` whether to execute the Uncompute block (reclaim the ancillas) or
to skip it (defer the garbage to the caller).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import networkx as nx

from repro.exceptions import IRError, QubitBindingError, ValidationError
from repro.ir.gates import gate_spec

_QUBIT_COUNTER = itertools.count()


@dataclass(frozen=True, eq=False)
class Qubit:
    """A symbolic wire local to a module (parameter or ancilla).

    Identity semantics: two Qubit objects are equal only if they are the
    same object, so distinct wires with the same name never collide.
    """

    name: str
    index: int
    uid: int = field(default_factory=lambda: next(_QUBIT_COUNTER))

    def __repr__(self) -> str:
        return f"{self.name}[{self.index}]"


class QubitRegister(Sequence):
    """An ordered collection of symbolic qubits sharing a base name."""

    def __init__(self, name: str, size: int) -> None:
        if size < 1:
            raise IRError("register size must be positive")
        self.name = name
        self._qubits: Tuple[Qubit, ...] = tuple(Qubit(name, i) for i in range(size))

    def __len__(self) -> int:
        return len(self._qubits)

    def __getitem__(self, index):
        return self._qubits[index]

    def __iter__(self) -> Iterator[Qubit]:
        return iter(self._qubits)

    def __repr__(self) -> str:
        return f"QubitRegister({self.name!r}, size={len(self)})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GateStmt:
    """Apply gate ``name`` to the given symbolic qubits."""

    name: str
    qubits: Tuple[Qubit, ...]

    def __post_init__(self) -> None:
        spec = gate_spec(self.name)
        if spec.num_qubits and len(self.qubits) != spec.num_qubits:
            raise IRError(
                f"gate {self.name!r} expects {spec.num_qubits} operands, "
                f"got {len(self.qubits)}"
            )

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.qubits))
        return f"{self.name}({args})"


@dataclass(frozen=True)
class CallStmt:
    """Call a child module, binding ``args`` to the child's parameters."""

    module: "QModule"
    args: Tuple[Qubit, ...]

    def __post_init__(self) -> None:
        if len(self.args) != len(self.module.params):
            raise IRError(
                f"call to {self.module.name!r} expects "
                f"{len(self.module.params)} arguments, got {len(self.args)}"
            )
        if len(set(self.args)) != len(self.args):
            raise IRError(f"call to {self.module.name!r} has duplicate arguments")

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        return f"call {self.module.name}({args})"


Statement = Union[GateStmt, CallStmt]

_BLOCK_NAMES = ("compute", "store", "uncompute")


class QModule:
    """A modular reversible function with Compute / Store / Uncompute blocks.

    Modules are built imperatively: create the module, add gates or calls
    while a block is selected (``compute`` by default), then optionally call
    :meth:`set_explicit_uncompute` or rely on automatic inversion of the
    Compute block at compile time.

    Args:
        name: Function name (used in reports and the call graph).
        num_inputs: Number of input parameter qubits.
        num_outputs: Number of output parameter qubits.
        num_ancilla: Number of scratch qubits allocated by this module.
    """

    def __init__(
        self,
        name: str,
        num_inputs: int,
        num_outputs: int = 0,
        num_ancilla: int = 0,
    ) -> None:
        if num_inputs < 0 or num_outputs < 0 or num_ancilla < 0:
            raise IRError("qubit counts must be non-negative")
        if num_inputs + num_outputs == 0:
            raise IRError(f"module {name!r} must have at least one parameter")
        self.name = name
        self.inputs: Tuple[Qubit, ...] = tuple(
            Qubit(f"{name}.in", i) for i in range(num_inputs)
        )
        self.outputs: Tuple[Qubit, ...] = tuple(
            Qubit(f"{name}.out", i) for i in range(num_outputs)
        )
        self.ancillas: Tuple[Qubit, ...] = tuple(
            Qubit(f"{name}.anc", i) for i in range(num_ancilla)
        )
        self.compute: List[Statement] = []
        self.store: List[Statement] = []
        self.uncompute: Optional[List[Statement]] = None
        self._current_block = "compute"
        self._scope = set(self.inputs) | set(self.outputs) | set(self.ancillas)

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    @property
    def params(self) -> Tuple[Qubit, ...]:
        """All parameter qubits (inputs followed by outputs)."""
        return self.inputs + self.outputs

    @property
    def num_params(self) -> int:
        """Number of parameter qubits."""
        return len(self.params)

    @property
    def num_ancilla(self) -> int:
        """Number of ancilla qubits allocated by this module."""
        return len(self.ancillas)

    @property
    def has_explicit_uncompute(self) -> bool:
        """True when the programmer wrote the Uncompute block explicitly."""
        return self.uncompute is not None

    # ------------------------------------------------------------------
    # Block selection
    # ------------------------------------------------------------------
    def begin_compute(self) -> "QModule":
        """Direct subsequent statements into the Compute block."""
        self._current_block = "compute"
        return self

    def begin_store(self) -> "QModule":
        """Direct subsequent statements into the Store block."""
        self._current_block = "store"
        return self

    def begin_uncompute(self) -> "QModule":
        """Direct subsequent statements into an explicit Uncompute block."""
        if self.uncompute is None:
            self.uncompute = []
        self._current_block = "uncompute"
        return self

    def _target_block(self) -> List[Statement]:
        if self._current_block == "compute":
            return self.compute
        if self._current_block == "store":
            return self.store
        assert self.uncompute is not None
        return self.uncompute

    # ------------------------------------------------------------------
    # Statement construction
    # ------------------------------------------------------------------
    def _check_scope(self, qubits: Iterable[Qubit]) -> None:
        for qubit in qubits:
            if qubit not in self._scope:
                raise QubitBindingError(
                    f"qubit {qubit!r} is not a parameter or ancilla of "
                    f"module {self.name!r}"
                )

    def gate(self, name: str, *qubits: Qubit) -> "QModule":
        """Append gate ``name`` on ``qubits`` to the current block."""
        self._check_scope(qubits)
        self._target_block().append(GateStmt(name, tuple(qubits)))
        return self

    def x(self, q: Qubit) -> "QModule":
        """Append a NOT gate."""
        return self.gate("x", q)

    def cx(self, control: Qubit, target: Qubit) -> "QModule":
        """Append a CNOT gate."""
        return self.gate("cx", control, target)

    def ccx(self, a: Qubit, b: Qubit, target: Qubit) -> "QModule":
        """Append a Toffoli gate."""
        return self.gate("ccx", a, b, target)

    def swap(self, a: Qubit, b: Qubit) -> "QModule":
        """Append a SWAP gate."""
        return self.gate("swap", a, b)

    def h(self, q: Qubit) -> "QModule":
        """Append a Hadamard gate."""
        return self.gate("h", q)

    def t(self, q: Qubit) -> "QModule":
        """Append a T gate."""
        return self.gate("t", q)

    def call(self, module: "QModule", *args: Qubit) -> "QModule":
        """Append a call to ``module`` binding ``args`` to its parameters."""
        self._check_scope(args)
        self._target_block().append(CallStmt(module, tuple(args)))
        return self

    def set_explicit_uncompute(self, statements: Sequence[Statement]) -> None:
        """Provide the Uncompute block explicitly (as in Figure 6)."""
        for stmt in statements:
            qubits = stmt.qubits if isinstance(stmt, GateStmt) else stmt.args
            self._check_scope(qubits)
        self.uncompute = list(statements)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def statements(self) -> Iterator[Tuple[str, Statement]]:
        """Yield (block name, statement) pairs in program order."""
        for stmt in self.compute:
            yield "compute", stmt
        for stmt in self.store:
            yield "store", stmt
        if self.uncompute is not None:
            for stmt in self.uncompute:
                yield "uncompute", stmt

    def child_modules(self) -> Tuple["QModule", ...]:
        """Distinct modules called directly from any block of this module."""
        seen: Dict[int, QModule] = {}
        for _, stmt in self.statements():
            if isinstance(stmt, CallStmt) and id(stmt.module) not in seen:
                seen[id(stmt.module)] = stmt.module
        return tuple(seen.values())

    def static_gate_count(self, _cache: Optional[Dict[int, int]] = None) -> int:
        """Number of gates in one forward execution (Compute + Store).

        Child calls are counted recursively assuming the child also only
        executes its forward blocks.  This is the quantity used by the CER
        cost model as an estimate of ``G_uncomp``.
        """
        if _cache is None:
            _cache = {}
        if id(self) in _cache:
            return _cache[id(self)]
        total = 0
        for block_name, stmt in self.statements():
            if block_name == "uncompute":
                continue
            if isinstance(stmt, GateStmt):
                total += 1
            else:
                total += stmt.module.static_gate_count(_cache)
        _cache[id(self)] = total
        return total

    def validate(self) -> None:
        """Check structural invariants of this module.

        Raises:
            ValidationError: If the module allocates ancilla but has an
                empty Compute block (nothing to uncompute).
        """
        if self.ancillas and not self.compute:
            raise ValidationError(
                f"module {self.name!r} allocates ancilla but has an empty "
                "Compute block"
            )

    def __repr__(self) -> str:
        return (
            f"QModule({self.name!r}, params={self.num_params}, "
            f"ancilla={self.num_ancilla}, compute={len(self.compute)}, "
            f"store={len(self.store)})"
        )


class Program:
    """A whole program: an entry :class:`QModule` plus derived metadata."""

    def __init__(self, entry: QModule, name: Optional[str] = None) -> None:
        self.entry = entry
        self.name = name or entry.name

    # ------------------------------------------------------------------
    def call_graph(self) -> "nx.DiGraph":
        """Return the static call graph (module name -> module name)."""
        graph = nx.DiGraph()
        seen = set()

        def visit(module: QModule) -> None:
            if id(module) in seen:
                return
            seen.add(id(module))
            graph.add_node(module.name, module=module)
            for child in module.child_modules():
                graph.add_edge(module.name, child.name)
                visit(child)

        visit(self.entry)
        return graph

    def modules(self) -> Tuple[QModule, ...]:
        """Every distinct module reachable from the entry, entry first."""
        ordered: List[QModule] = []
        seen = set()

        def visit(module: QModule) -> None:
            if id(module) in seen:
                return
            seen.add(id(module))
            ordered.append(module)
            for child in module.child_modules():
                visit(child)

        visit(self.entry)
        return tuple(ordered)

    def num_levels(self) -> int:
        """Depth of the call graph (1 for a program with no calls)."""
        cache: Dict[int, int] = {}

        def depth(module: QModule) -> int:
            if id(module) in cache:
                return cache[id(module)]
            children = module.child_modules()
            value = 1 + (max((depth(c) for c in children), default=0))
            cache[id(module)] = value
            return value

        return depth(self.entry)

    def total_declared_ancilla(self) -> int:
        """Sum of declared ancilla over all distinct modules."""
        return sum(m.num_ancilla for m in self.modules())

    def static_gate_count(self) -> int:
        """Forward gate count of one execution of the entry module."""
        return self.entry.static_gate_count()

    def validate(self) -> None:
        """Validate every module and check the call graph is acyclic."""
        for module in self.modules():
            module.validate()
        graph = self.call_graph()
        if not nx.is_directed_acyclic_graph(graph):
            raise ValidationError(
                f"program {self.name!r} has a cyclic (recursive) call graph"
            )

    def __repr__(self) -> str:
        return f"Program({self.name!r}, modules={len(self.modules())})"
