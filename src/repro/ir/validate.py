"""Reversibility and structural validation of modular programs.

Verifies (by bit-level simulation) that a classical reversible module
restores its ancilla qubits to |0> after its Uncompute block, and that an
explicitly written Uncompute block is the exact inverse of the Compute
block — the correctness condition SQUARE relies on when it chooses to skip
or execute uncomputation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ValidationError
from repro.ir.circuit import Circuit
from repro.ir.classical_sim import simulate_classical
from repro.ir.flatten import flatten_module
from repro.ir.gates import inverse_gate_name, make_gate
from repro.ir.program import CallStmt, GateStmt, Program, QModule, Qubit, Statement


def _random_inputs(width: int, rng: random.Random) -> List[int]:
    return [rng.randint(0, 1) for _ in range(width)]


def verify_ancilla_restored(
    module: QModule,
    trials: int = 16,
    seed: int = 7,
    exhaustive_limit: int = 10,
) -> None:
    """Check the module leaves every ancilla wire in |0> for basis inputs.

    The module is flattened with Eager semantics (so every nested ancilla is
    also checked) and simulated classically on random — or, for narrow
    modules, all — basis-state inputs.

    Raises:
        ValidationError: If any ancilla wire ends in |1>.
    """
    flat = flatten_module(module, reuse_ancilla=False)
    circuit = flat.circuit
    if not circuit.is_classical():
        raise ValidationError(
            f"module {module.name!r} contains non-classical gates; "
            "ancilla restoration can only be checked for reversible logic"
        )
    param_wires = set(flat.param_wires)
    ancilla_wires = [w for w in range(circuit.num_qubits) if w not in param_wires]
    width = len(flat.param_wires)
    rng = random.Random(seed)
    if width <= exhaustive_limit:
        cases = [[(value >> i) & 1 for i in range(width)] for value in range(1 << width)]
    else:
        cases = [_random_inputs(width, rng) for _ in range(trials)]
    for bits in cases:
        assignment = dict(zip(flat.param_wires, bits))
        final = simulate_classical(circuit, assignment)
        dirty = [w for w in ancilla_wires if final[w] != 0]
        if dirty:
            raise ValidationError(
                f"module {module.name!r} leaves ancilla wires {dirty} dirty "
                f"for input {bits}"
            )


def verify_explicit_uncompute(
    module: QModule,
    trials: int = 16,
    seed: int = 11,
) -> None:
    """Check an explicit Uncompute block is the inverse of the Compute block.

    Simulates Compute followed by Uncompute on the module's own wires and
    verifies the identity on random basis states.  Modules without an
    explicit Uncompute block trivially pass.

    Raises:
        ValidationError: If Compute;Uncompute is not the identity.
    """
    if module.uncompute is None:
        return
    wires = {q: i for i, q in enumerate(module.params + module.ancillas)}
    circuit = Circuit(len(wires), name=f"{module.name}_roundtrip")

    def emit(statements: Sequence[Statement]) -> None:
        for stmt in statements:
            if isinstance(stmt, GateStmt):
                circuit.append(make_gate(stmt.name, tuple(wires[q] for q in stmt.qubits)))
            elif isinstance(stmt, CallStmt):
                flat = flatten_module(stmt.module, reuse_ancilla=False)
                offset = circuit.num_qubits
                mapping = {}
                for local_index in range(flat.circuit.num_qubits):
                    mapping[local_index] = offset + local_index
                for param_wire, arg in zip(flat.param_wires, stmt.args):
                    mapping[param_wire] = wires[arg]
                circuit.compose(flat.circuit, mapping)

    emit(module.compute)
    emit(module.uncompute)

    if not circuit.is_classical():
        raise ValidationError(
            f"module {module.name!r}: round-trip check requires classical gates"
        )
    rng = random.Random(seed)
    width = len(wires)
    for _ in range(trials):
        bits = _random_inputs(width, rng)
        final = simulate_classical(circuit, bits)
        if final[:width] != bits:
            raise ValidationError(
                f"module {module.name!r}: Uncompute block is not the inverse "
                f"of Compute (input {bits} -> {final[:width]})"
            )


def validate_program(program: Program, check_ancilla: bool = False) -> None:
    """Run structural validation and (optionally) ancilla-restoration checks.

    Args:
        program: The program to validate.
        check_ancilla: When True also simulate every module classically to
            verify ancillas are restored (can be slow for wide modules).
    """
    program.validate()
    for module in program.modules():
        verify_explicit_uncompute(module)
        if check_ancilla and module.num_ancilla:
            flat = flatten_module(module, reuse_ancilla=False)
            if flat.circuit.is_classical() and len(module.params) <= 12:
                verify_ancilla_restored(module)
