"""Inversion of statement blocks (automatic ``Inverse()`` of Figure 6).

Uncomputation replays a block's statements in reverse order with every
gate replaced by its inverse and every call marked as an inverse call.
The compiler uses :func:`invert_statements` when a module relies on
automatic generation of its Uncompute block, and :func:`inverse_module`
builds a standalone inverted module (useful for constructing workloads
such as the modular-exponentiation circuit).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import IrreversibleBlockError, NonClassicalGateError
from repro.ir.gates import NON_UNITARY_GATES, inverse_gate_name, is_classical_gate
from repro.ir.program import CallStmt, GateStmt, QModule, Statement


def invert_gate_stmt(stmt: GateStmt) -> GateStmt:
    """Return the inverse of a single gate statement."""
    if stmt.name in NON_UNITARY_GATES:
        raise IrreversibleBlockError(
            f"cannot invert non-unitary gate {stmt.name!r}"
        )
    return GateStmt(inverse_gate_name(stmt.name), stmt.qubits)


def invert_statements(statements: Sequence[Statement]) -> List[Statement]:
    """Return the statement-level inverse of a block.

    Gate statements are inverted in place; call statements are preserved
    (the compiler interprets a call appearing in an inverted block as an
    inverse call and consults the corresponding forward call record).

    Raises:
        IrreversibleBlockError: If the block contains measurement or reset.
    """
    inverted: List[Statement] = []
    for stmt in reversed(statements):
        if isinstance(stmt, GateStmt):
            inverted.append(invert_gate_stmt(stmt))
        else:
            inverted.append(stmt)
    return inverted


def check_uncomputable(statements: Sequence[Statement]) -> None:
    """Verify a block only contains classical reversible logic and calls.

    The paper restricts uncomputation to the classical-arithmetic parts of
    a program (Section II-D); Hadamard / T gates make a block non-classical
    and measurement makes it non-invertible.

    Raises:
        NonClassicalGateError: If a gate is unitary but not classical.
        IrreversibleBlockError: If the block contains measure or reset.
    """
    for stmt in statements:
        if isinstance(stmt, CallStmt):
            check_uncomputable(list(stmt.module.compute) + list(stmt.module.store))
            continue
        if stmt.name in NON_UNITARY_GATES:
            raise IrreversibleBlockError(
                f"block contains non-unitary gate {stmt.name!r}"
            )
        if not is_classical_gate(stmt.name):
            raise NonClassicalGateError(
                f"block contains non-classical gate {stmt.name!r}; "
                "uncomputation requires classical reversible logic"
            )


def uncompute_block(module: QModule) -> List[Statement]:
    """Return the Uncompute block of ``module``.

    If the programmer wrote it explicitly it is returned verbatim;
    otherwise it is generated as the inverse of the Compute block.
    """
    if module.uncompute is not None:
        return list(module.uncompute)
    return invert_statements(module.compute)


def inverse_module(module: QModule, name: str = "") -> QModule:
    """Build a standalone module computing the inverse of ``module``.

    The inverse of ``Compute; Store; Uncompute`` (with Uncompute equal to
    the inverse of Compute) is ``Compute; Store^-1; Uncompute``, i.e. the
    same module with the Store block inverted.  Child calls inside the
    blocks are kept as forward calls, which is correct because every child
    call is itself an involution-conjugated operation on its parameters.
    """
    inverse = QModule(
        name or f"{module.name}_inv",
        num_inputs=len(module.inputs),
        num_outputs=len(module.outputs),
        num_ancilla=module.num_ancilla,
    )
    mapping = {old: new for old, new in zip(
        module.params + module.ancillas, inverse.params + inverse.ancillas
    )}

    def remap(stmt: Statement) -> Statement:
        if isinstance(stmt, GateStmt):
            return GateStmt(stmt.name, tuple(mapping[q] for q in stmt.qubits))
        return CallStmt(stmt.module, tuple(mapping[q] for q in stmt.args))

    inverse.compute = [remap(s) for s in module.compute]
    inverse.store = [remap(s) for s in invert_statements(module.store)]
    if module.uncompute is not None:
        inverse.uncompute = [remap(s) for s in module.uncompute]
    return inverse
