"""Flat gate-level circuits.

A :class:`Circuit` is the post-compilation representation: an ordered list
of :class:`~repro.ir.gates.Gate` instances acting on integer qubit indices.
It is the unit consumed by the classical reversible simulator, the
state-vector simulator and the dependency-DAG analysis.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import IRError, IrreversibleBlockError
from repro.ir.gates import Gate, NON_UNITARY_GATES, gate_spec, make_gate


class Circuit:
    """An ordered sequence of gates on ``num_qubits`` wires.

    Args:
        num_qubits: Number of wires.  May be grown with :meth:`add_qubit`.
        gates: Optional initial gate sequence.
        name: Optional human-readable circuit name.
    """

    def __init__(
        self,
        num_qubits: int = 0,
        gates: Optional[Iterable[Gate]] = None,
        name: str = "circuit",
    ) -> None:
        if num_qubits < 0:
            raise IRError("num_qubits must be non-negative")
        self.name = name
        self._num_qubits = num_qubits
        self._gates: List[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_qubit(self, count: int = 1) -> int:
        """Add ``count`` fresh wires and return the index of the first one."""
        if count < 1:
            raise IRError("count must be positive")
        first = self._num_qubits
        self._num_qubits += count
        return first

    def append(self, gate: Gate) -> None:
        """Append ``gate``, growing the wire count if needed."""
        if gate.qubits:
            high = max(gate.qubits)
            if high >= self._num_qubits:
                self._num_qubits = high + 1
        self._gates.append(gate)

    def add(self, name: str, *qubits: int) -> None:
        """Convenience wrapper: append gate ``name`` on ``qubits``."""
        self.append(make_gate(name, qubits))

    def x(self, q: int) -> None:
        """Append a NOT gate."""
        self.add("x", q)

    def cx(self, control: int, target: int) -> None:
        """Append a CNOT gate."""
        self.add("cx", control, target)

    def ccx(self, control_a: int, control_b: int, target: int) -> None:
        """Append a Toffoli gate."""
        self.add("ccx", control_a, control_b, target)

    def swap(self, a: int, b: int) -> None:
        """Append a SWAP gate."""
        self.add("swap", a, b)

    def h(self, q: int) -> None:
        """Append a Hadamard gate."""
        self.add("h", q)

    def measure(self, q: int) -> None:
        """Append a measurement."""
        self.add("measure", q)

    def extend(self, gates: Iterable[Gate]) -> None:
        """Append every gate in ``gates``."""
        for gate in gates:
            self.append(gate)

    def compose(self, other: "Circuit", qubit_map: Optional[Dict[int, int]] = None) -> None:
        """Append ``other``'s gates, optionally remapping its qubit indices."""
        for gate in other.gates:
            if qubit_map is None:
                self.append(gate)
            else:
                self.append(gate.remap(qubit_map))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of wires in the circuit."""
        return self._num_qubits

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self._num_qubits == other._num_qubits and self._gates == other._gates

    def __repr__(self) -> str:
        return (
            f"Circuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_gates={len(self)})"
        )

    def gate_counts(self) -> Counter:
        """Return a Counter of gate names."""
        return Counter(gate.name for gate in self._gates)

    def count(self, name: str) -> int:
        """Return the number of gates named ``name``."""
        return sum(1 for gate in self._gates if gate.name == name)

    @property
    def two_qubit_gate_count(self) -> int:
        """Number of gates acting on two or more qubits."""
        return sum(1 for gate in self._gates if gate.num_qubits >= 2)

    def is_classical(self) -> bool:
        """True when every gate is classical reversible logic."""
        return all(gate.is_classical for gate in self._gates)

    def is_unitary(self) -> bool:
        """True when the circuit contains no measurement or reset."""
        return all(gate.is_unitary for gate in self._gates)

    def used_qubits(self) -> Tuple[int, ...]:
        """Sorted tuple of wire indices touched by at least one gate."""
        used = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return tuple(sorted(used))

    def depth(self) -> int:
        """Logical depth: longest chain of dependent gates (unit durations)."""
        frontier: Dict[int, int] = {}
        depth = 0
        for gate in self._gates:
            if not gate.qubits:
                continue
            start = max((frontier.get(q, 0) for q in gate.qubits), default=0)
            finish = start + 1
            for q in gate.qubits:
                frontier[q] = finish
            depth = max(depth, finish)
        return depth

    def timed_depth(self) -> int:
        """Depth weighted by per-gate default durations."""
        frontier: Dict[int, int] = {}
        depth = 0
        for gate in self._gates:
            if not gate.qubits:
                continue
            start = max((frontier.get(q, 0) for q in gate.qubits), default=0)
            finish = start + gate.duration
            for q in gate.qubits:
                frontier[q] = finish
            depth = max(depth, finish)
        return depth

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def inverse(self) -> "Circuit":
        """Return the inverse circuit (gates reversed and each inverted).

        Raises:
            IrreversibleBlockError: If the circuit contains measure/reset.
        """
        if not self.is_unitary():
            raise IrreversibleBlockError(
                f"circuit {self.name!r} contains non-unitary operations"
            )
        inverted = Circuit(self._num_qubits, name=f"{self.name}_dg")
        for gate in reversed(self._gates):
            inverted.append(gate.inverse())
        return inverted

    def remapped(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "Circuit":
        """Return a copy with wires renumbered through ``mapping``."""
        target = Circuit(num_qubits or 0, name=self.name)
        for gate in self._gates:
            target.append(gate.remap(mapping))
        if num_qubits is not None and target.num_qubits < num_qubits:
            target._num_qubits = num_qubits
        return target

    def copy(self) -> "Circuit":
        """Return a shallow copy."""
        return Circuit(self._num_qubits, self._gates, name=self.name)

    def to_text(self) -> str:
        """Serialize to the simple ``time, gate`` text format of Figure 4."""
        lines = [f"# circuit {self.name}: {self.num_qubits} qubits"]
        for index, gate in enumerate(self._gates):
            operands = " ".join(f"q{q}" for q in gate.qubits)
            lines.append(f"{index}, {gate.name.upper()} {operands}".rstrip())
        return "\n".join(lines)


def concatenate(circuits: Sequence[Circuit], name: str = "concat") -> Circuit:
    """Concatenate circuits on a shared wire numbering."""
    total = Circuit(max((c.num_qubits for c in circuits), default=0), name=name)
    for circuit in circuits:
        total.compose(circuit)
    return total
