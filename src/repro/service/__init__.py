"""Network compilation service: HTTP endpoint + persistent result cache.

Everything the in-process :mod:`repro.api` session does, served over
HTTP with results that survive restarts:

* :class:`DiskCache` — persistent on-disk result store keyed by job
  fingerprint; plugs into :class:`~repro.api.session.Session` as the
  second cache tier behind the in-memory memo, with an optional
  ``max_bytes`` size cap enforced by LRU eviction.
* :class:`CompilationService` / :func:`make_server` / :func:`serve` —
  the stdlib-only HTTP endpoint mounting a
  :class:`~repro.queue.manager.JobManager` (bounded priority queue +
  worker pool) over one shared thread-safe memoizing session:
  synchronous ``/compile``/``/sweep``, asynchronous ``/jobs`` with
  polling and cancellation, structured 503 back-pressure when full —
  plus multi-tenancy (see :mod:`repro.tenancy`): ``X-Repro-Key``
  authentication against a tenant registry, fair-share scheduling,
  per-tenant 429 quotas, and an optional ``store_dir`` job journal
  that survives restarts (QUEUED resumes, DONE serves byte-identically).
* :class:`ServiceClient` — session-shaped client with both synchronous
  calls and the async ``submit_async``/``poll``/``wait_for``/``cancel``
  surface, plus ``iter_entries`` streaming a sweep's per-entry results
  as workers finish them (the feed :mod:`repro.cluster` shards over a
  fleet); idempotent GETs retry with exponential backoff, so poll
  loops survive server restarts.

Quick start (one process)::

    from repro.service import ServiceClient, make_server
    import threading

    server = make_server("127.0.0.1", 0, cache_dir="/tmp/repro-cache",
                         workers=4)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]

    client = ServiceClient(f"http://{host}:{port}")
    result = client.compile("RD53", policy="square")   # synchronous

    ticket = client.submit_async(big_sweep_spec)       # returns at once
    record = client.wait_for(ticket)                   # poll to DONE
    rows = record["response"]["rows"]

Or from the command line: ``python -m repro.experiments serve
--cache-dir /tmp/repro-cache --workers 4 --queue-size 128``.
"""

from repro.service.cache import CACHE_VERSION, DiskCache
from repro.service.client import ServiceClient
from repro.service.server import (
    DEFAULT_PORT,
    DEFAULT_QUEUE_SIZE,
    DEFAULT_WORKERS,
    CompilationHTTPServer,
    CompilationService,
    ServiceHTTPHandler,
    make_server,
    serve,
)

__all__ = [
    "CACHE_VERSION",
    "CompilationHTTPServer",
    "CompilationService",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_SIZE",
    "DEFAULT_WORKERS",
    "DiskCache",
    "ServiceClient",
    "ServiceHTTPHandler",
    "make_server",
    "serve",
]
