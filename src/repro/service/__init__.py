"""Network compilation service: HTTP endpoint + persistent result cache.

Everything the in-process :mod:`repro.api` session does, served over
HTTP with results that survive restarts:

* :class:`DiskCache` — persistent on-disk result store keyed by job
  fingerprint; plugs into :class:`~repro.api.session.Session` as the
  second cache tier behind the in-memory memo.
* :class:`CompilationService` / :func:`make_server` / :func:`serve` —
  the stdlib-only HTTP endpoint dispatching JSON job and sweep
  descriptors to one shared memoizing session.
* :class:`ServiceClient` — session-shaped client, so experiments can
  run against a remote service by swapping one object.

Quick start (one process)::

    from repro.service import ServiceClient, make_server
    import threading

    server = make_server("127.0.0.1", 0, cache_dir="/tmp/repro-cache")
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]

    client = ServiceClient(f"http://{host}:{port}")
    result = client.compile("RD53", policy="square")

Or from the command line: ``python -m repro.experiments serve
--cache-dir /tmp/repro-cache``.
"""

from repro.service.cache import CACHE_VERSION, DiskCache
from repro.service.client import ServiceClient
from repro.service.server import (
    DEFAULT_PORT,
    CompilationService,
    ServiceHTTPHandler,
    make_server,
    serve,
)

__all__ = [
    "CACHE_VERSION",
    "CompilationService",
    "DEFAULT_PORT",
    "DiskCache",
    "ServiceClient",
    "ServiceHTTPHandler",
    "make_server",
    "serve",
]
