"""Persistent on-disk result cache keyed by job fingerprint.

The :class:`DiskCache` is the second tier behind a
:class:`~repro.api.session.Session`'s in-memory memo: every fresh
compilation is written through as one JSON file per fingerprint, so a
restarted process (or a second process sharing the cache directory)
re-serves earlier results instead of recompiling.

Layout of a cache directory::

    <root>/
        index.json            # advisory metadata listing, rebuildable
        results/
            <fingerprint>.json

Writes are atomic (temp file + ``os.replace`` in the same directory), so
a crashed or killed writer can never leave a half-written payload under
a live fingerprint.  Reads are corruption-tolerant: an unreadable,
truncated or mislabelled payload counts as a miss (and is recorded in
:meth:`DiskCache.stats`), after which the session simply recompiles and
rewrites the entry.  The index is purely advisory — membership always
comes from the payload files — and is rebuilt from them when missing or
corrupt; index rewrites take a best-effort ``fcntl`` file lock so two
servers sharing one cache directory do not interleave their rewrites.

With ``max_bytes`` set, the cache enforces a size cap by LRU eviction:
every read hit bumps the payload file's mtime (so recency is shared
across processes), and each write evicts least-recently-accessed
entries until the payload files fit the cap again.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.core.result import CompilationResult

#: Payload schema version; bump on incompatible layout changes.
CACHE_VERSION = 1


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp file)."""
    handle, temp_name = tempfile.mkstemp(dir=str(path.parent),
                                         prefix=path.name + ".",
                                         suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class DiskCache:
    """Maps job fingerprints to persisted :class:`CompilationResult` payloads.

    Safe for concurrent use from one process (writes serialize on an
    internal lock); multiple processes may share a directory — atomic
    replace keeps payloads consistent, and last-writer-wins is correct
    because equal fingerprints mean equal jobs mean (deterministic
    compiler) equal results.

    Args:
        root: Cache directory; created (with parents) if missing.
        max_bytes: Optional size cap over the payload files; writes
            beyond it evict least-recently-accessed entries (the entry
            being written is never evicted by its own put, even when it
            alone exceeds the cap).
    """

    def __init__(self, root, *, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = Path(root).expanduser()
        self.results_dir = self.root / "results"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.index_path = self.root / "index.json"
        self.lock_path = self.root / "index.lock"
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        self.evictions = 0
        self.orphans_removed = 0
        self._index_dirty = False
        self._index: Dict[str, Dict[str, object]] = self._load_index()
        #: Running payload-byte estimate so an under-cap put stays O(1);
        #: reconciled against a real directory scan on every eviction.
        self._bytes = self.total_bytes() if max_bytes is not None else 0

    # ------------------------------------------------------------------
    def _result_path(self, fingerprint: str) -> Path:
        return self.results_dir / f"{fingerprint}.json"

    def _load_index(self) -> Dict[str, Dict[str, object]]:
        """Load the advisory index, rebuilding it when missing, corrupt
        or stale (index writes are deferred to :meth:`flush_index`, so a
        killed process can leave the file behind the payload files)."""
        try:
            data = json.loads(self.index_path.read_text(encoding="utf-8"))
            entries = data["entries"]
            if data.get("version") != CACHE_VERSION or not isinstance(
                    entries, dict):
                raise ValueError("index schema mismatch")
            if len(entries) != len(self):
                raise ValueError("index is stale")
            return entries
        except (OSError, ValueError, KeyError, TypeError):
            # Constructor path: the cache is not shared yet.
            self._index_dirty = True  # lint: unlocked
            return self._rebuild_index()

    def _rebuild_index(self) -> Dict[str, Dict[str, object]]:
        """Reconstruct index metadata by scanning the payload files."""
        entries: Dict[str, Dict[str, object]] = {}
        for path in sorted(self.results_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                fingerprint = payload["fingerprint"]
                if fingerprint != path.stem:
                    continue
                entries[fingerprint] = dict(payload.get("job") or {})
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return entries

    @contextlib.contextmanager
    def _index_file_lock(self):
        """Best-effort cross-process lock for index rewrites.

        Two servers sharing one cache directory serialize their
        read-merge-write index updates on an ``fcntl`` advisory lock, so
        one writer cannot silently drop the entries another wrote.  A
        platform without :mod:`fcntl` (or a filesystem refusing to lock)
        degrades to the previous unlocked behaviour — the index is
        advisory and rebuildable, so this is safe, just less tidy.
        """
        if fcntl is None:
            yield
            return
        try:
            handle = open(self.lock_path, "w")
        except OSError:
            yield
            return
        try:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX)
            except OSError:
                pass
            yield
        finally:
            handle.close()  # closing drops any held flock

    def _merge_foreign_entries(self) -> None:
        """Fold other writers' on-disk index entries into ours.

        Our in-memory view wins for fingerprints we know about (it is
        newer, and locally-evicted keys must stay gone); entries we have
        never seen are adopted when their payload file still exists —
        that is what keeps two servers flushing over one directory from
        clobbering each other.  Called with both locks held.
        """
        try:
            data = json.loads(self.index_path.read_text(encoding="utf-8"))
            entries = data["entries"]
            if data.get("version") != CACHE_VERSION or not isinstance(
                    entries, dict):
                return
        except (OSError, ValueError, KeyError, TypeError):
            return
        for fingerprint, meta in entries.items():
            if fingerprint not in self._index and isinstance(meta, dict) \
                    and fingerprint in self:
                self._index[fingerprint] = meta

    def _write_index(self) -> None:
        with self._index_file_lock():
            self._merge_foreign_entries()
            payload = {"version": CACHE_VERSION, "entries": self._index}
            _atomic_write_text(self.index_path,
                               json.dumps(payload, sort_keys=True, indent=1))

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[CompilationResult]:
        """Fetch a persisted result, or None on miss or corruption.

        A hit bumps the payload file's mtime, which is the cache's
        shared last-access clock: LRU eviction (and any other process
        sharing the directory) orders entries by it.
        """
        path = self._result_path(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if payload.get("version") != CACHE_VERSION:
                raise ValueError("payload schema mismatch")
            if payload.get("fingerprint") != fingerprint:
                raise ValueError("payload fingerprint mismatch")
            result = CompilationResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError, AttributeError):
            with self._lock:
                self.corrupt += 1
            return None
        try:
            os.utime(path)  # mark recently used for LRU eviction
        except OSError:
            pass
        with self._lock:
            self.hits += 1
        return result

    def put(self, fingerprint: str, result: CompilationResult,
            job=None) -> None:
        """Persist one result under its fingerprint (atomic write-through).

        Only the payload file is written here; the advisory index is
        updated in memory and persisted by :meth:`flush_index` (which a
        :class:`~repro.api.session.Session` calls once per batch), so a
        large shared cache is not re-serialized on every single put.

        Args:
            fingerprint: The job fingerprint keying the entry.
            result: The compilation result to persist.
            job: Optional :class:`~repro.api.job.CompileJob`; when given,
                its coordinates are recorded in the payload and the
                index, making cache directories self-describing.
        """
        payload: Dict[str, object] = {
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "result": result.to_dict(),
        }
        meta: Dict[str, object] = {}
        if job is not None:
            meta = {
                "benchmark": job.program_label,
                "policy": job.policy_label,
                "machine": job.machine.describe(),
            }
            payload["job"] = meta
        path = self._result_path(fingerprint)
        with self._lock:
            if self.max_bytes is not None:
                try:
                    overwritten = path.stat().st_size
                except OSError:
                    overwritten = 0
            _atomic_write_text(path, json.dumps(payload, sort_keys=True))
            self._index[fingerprint] = meta
            self._index_dirty = True
            self.writes += 1
            if self.max_bytes is not None:
                try:
                    written = path.stat().st_size
                except OSError:
                    written = 0
                self._bytes += written - overwritten
                if self._bytes > self.max_bytes:
                    self._evict_locked(keep=fingerprint)

    def _evict_locked(self, keep: str) -> None:
        """Drop least-recently-accessed payloads until under the cap.

        Last access is the payload file's mtime (bumped by :meth:`get`
        hits and by writes), so processes sharing the directory agree on
        recency.  The entry just written (``keep``) is never evicted by
        its own put.  Caller holds the internal lock; the directory scan
        here also reconciles the running byte estimate (which can drift
        when other processes write the same directory).
        """
        entries = []
        total = 0
        for path in self.results_dir.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda entry: entry[0])
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if path.stem == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self._index.pop(path.stem, None)
            self._index_dirty = True  # lint: unlocked (caller holds lock)
            self.evictions += 1
        self._bytes = total  # lint: unlocked (caller holds lock)

    def flush_index(self) -> None:
        """Persist pending index updates (cheap no-op when clean).

        Membership and reads never depend on the index, and a stale
        index is rebuilt on the next :class:`DiskCache` construction, so
        deferring this between batches is always safe.
        """
        with self._lock:
            if self._index_dirty:
                self._write_index()
                self._index_dirty = False

    # ------------------------------------------------------------------
    def __contains__(self, fingerprint: str) -> bool:
        return self._result_path(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.results_dir.glob("*.json"))

    def fingerprints(self) -> List[str]:
        """Every persisted fingerprint, sorted."""
        return sorted(path.stem for path in self.results_dir.glob("*.json"))

    def entries(self) -> Dict[str, Dict[str, object]]:
        """Advisory metadata (job coordinates) per fingerprint."""
        return dict(self._index)

    def clear(self) -> None:
        """Delete every persisted result and reset the index."""
        with self._lock:
            for path in self.results_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
            self._index = {}
            self._bytes = 0
            self._write_index()
            self._index_dirty = False

    def gc_orphans(self, min_age_seconds: float = 60.0) -> int:
        """Remove orphaned files a crashed writer left behind; returns
        the number of files deleted.

        Orphans are files in ``results/`` that are not live committed
        cache entries:

        * leftover ``*.tmp`` files from an interrupted atomic write, and
        * payload files whose fingerprint no index ever committed — a
          writer that died between ``put`` and ``flush_index`` in a
          *shared* cache directory (a fresh process over its own
          directory adopts such payloads at startup instead), or
          mislabelled/corrupt strays that never validated into any
          index rebuild.

        Entries committed by other writers sharing the directory are
        merged in first (under the index file lock) and never removed,
        and only files older than ``min_age_seconds`` are candidates —
        a concurrent writer's *in-flight* temp file (mkstemp done,
        ``os.replace`` pending) or just-written payload must never be
        yanked out from under it.  Hygiene for long-lived servers
        sharing one cache directory; safe to call any time — at worst a
        not-yet-flushed entry older than the threshold is swept, which
        only costs a recompile.
        """
        removed = 0
        # Compared against st_mtime, which is wall-clock by definition.
        cutoff = time.time() - max(0.0, min_age_seconds)  # lint: wall-clock
        with self._lock:
            with self._index_file_lock():
                self._merge_foreign_entries()
                for path in sorted(self.results_dir.iterdir()):
                    try:
                        if path.stat().st_mtime > cutoff:
                            continue
                    except OSError:
                        continue
                    if not self._is_orphan_locked(path):
                        continue
                    try:
                        path.unlink()
                    except OSError:
                        continue
                    removed += 1
                # Drop index entries whose payloads are gone (another
                # process may have evicted them) and persist the tidied
                # index so the next load is not flagged stale.
                self._index = {fingerprint: meta for fingerprint, meta
                               in self._index.items() if fingerprint in self}
                payload = {"version": CACHE_VERSION, "entries": self._index}
                _atomic_write_text(self.index_path,
                                   json.dumps(payload, sort_keys=True,
                                              indent=1))
                self._index_dirty = False
            self.orphans_removed += removed
            if self.max_bytes is not None:
                self._bytes = self.total_bytes()
        return removed

    def _is_orphan_locked(self, path: Path) -> bool:
        """True when ``path`` is not a live committed cache entry.

        Pure metadata checks — committed entries (the overwhelming
        common case) are recognised by the merged index without reading
        the payload, so a sweep over a large cache stays cheap while
        both locks are held.  Corrupt-but-committed payloads are left
        alone; the next read miss recompiles over them anyway.
        """
        if not path.is_file():
            return False
        if path.suffix != ".json":
            return True  # stray temp file from an interrupted write
        return path.stem not in self._index

    def total_bytes(self) -> int:
        """Current payload size on disk (what ``max_bytes`` caps)."""
        total = 0
        for path in self.results_dir.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def stats(self) -> Dict[str, object]:
        """Counters + size, JSON-compatible (for service telemetry).

        The counters are snapshotted under the cache lock so one call
        reports a mutually consistent set — a concurrent put cannot
        show up in ``writes`` but not yet in ``evictions`` — which is
        what lets ``/stats`` and ``/metrics`` agree on the disk tier.
        """
        size = len(self)
        total = self.total_bytes()
        with self._lock:
            return {
                "root": str(self.root),
                "size": size,
                "bytes": total,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "corrupt": self.corrupt,
                "writes": self.writes,
                "evictions": self.evictions,
                "orphans_removed": self.orphans_removed,
            }

    def __repr__(self) -> str:
        return (f"DiskCache(root={str(self.root)!r}, size={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
