"""Persistent on-disk result cache keyed by job fingerprint.

The :class:`DiskCache` is the second tier behind a
:class:`~repro.api.session.Session`'s in-memory memo: every fresh
compilation is written through as one JSON file per fingerprint, so a
restarted process (or a second process sharing the cache directory)
re-serves earlier results instead of recompiling.

Layout of a cache directory::

    <root>/
        index.json            # advisory metadata listing, rebuildable
        results/
            <fingerprint>.json

Writes are atomic (temp file + ``os.replace`` in the same directory), so
a crashed or killed writer can never leave a half-written payload under
a live fingerprint.  Reads are corruption-tolerant: an unreadable,
truncated or mislabelled payload counts as a miss (and is recorded in
:meth:`DiskCache.stats`), after which the session simply recompiles and
rewrites the entry.  The index is purely advisory — membership always
comes from the payload files — and is rebuilt from them when missing or
corrupt.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.result import CompilationResult

#: Payload schema version; bump on incompatible layout changes.
CACHE_VERSION = 1


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp file)."""
    handle, temp_name = tempfile.mkstemp(dir=str(path.parent),
                                         prefix=path.name + ".",
                                         suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class DiskCache:
    """Maps job fingerprints to persisted :class:`CompilationResult` payloads.

    Safe for concurrent use from one process (writes serialize on an
    internal lock); multiple processes may share a directory — atomic
    replace keeps payloads consistent, and last-writer-wins is correct
    because equal fingerprints mean equal jobs mean (deterministic
    compiler) equal results.

    Args:
        root: Cache directory; created (with parents) if missing.
    """

    def __init__(self, root) -> None:
        self.root = Path(root).expanduser()
        self.results_dir = self.root / "results"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.index_path = self.root / "index.json"
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        self._index_dirty = False
        self._index: Dict[str, Dict[str, object]] = self._load_index()

    # ------------------------------------------------------------------
    def _result_path(self, fingerprint: str) -> Path:
        return self.results_dir / f"{fingerprint}.json"

    def _load_index(self) -> Dict[str, Dict[str, object]]:
        """Load the advisory index, rebuilding it when missing, corrupt
        or stale (index writes are deferred to :meth:`flush_index`, so a
        killed process can leave the file behind the payload files)."""
        try:
            data = json.loads(self.index_path.read_text(encoding="utf-8"))
            entries = data["entries"]
            if data.get("version") != CACHE_VERSION or not isinstance(
                    entries, dict):
                raise ValueError("index schema mismatch")
            if len(entries) != len(self):
                raise ValueError("index is stale")
            return entries
        except (OSError, ValueError, KeyError, TypeError):
            self._index_dirty = True
            return self._rebuild_index()

    def _rebuild_index(self) -> Dict[str, Dict[str, object]]:
        """Reconstruct index metadata by scanning the payload files."""
        entries: Dict[str, Dict[str, object]] = {}
        for path in sorted(self.results_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                fingerprint = payload["fingerprint"]
                if fingerprint != path.stem:
                    continue
                entries[fingerprint] = dict(payload.get("job") or {})
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return entries

    def _write_index(self) -> None:
        payload = {"version": CACHE_VERSION, "entries": self._index}
        _atomic_write_text(self.index_path,
                           json.dumps(payload, sort_keys=True, indent=1))

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[CompilationResult]:
        """Fetch a persisted result, or None on miss or corruption."""
        path = self._result_path(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if payload.get("version") != CACHE_VERSION:
                raise ValueError("payload schema mismatch")
            if payload.get("fingerprint") != fingerprint:
                raise ValueError("payload fingerprint mismatch")
            result = CompilationResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError, AttributeError):
            self.corrupt += 1
            return None
        self.hits += 1
        return result

    def put(self, fingerprint: str, result: CompilationResult,
            job=None) -> None:
        """Persist one result under its fingerprint (atomic write-through).

        Only the payload file is written here; the advisory index is
        updated in memory and persisted by :meth:`flush_index` (which a
        :class:`~repro.api.session.Session` calls once per batch), so a
        large shared cache is not re-serialized on every single put.

        Args:
            fingerprint: The job fingerprint keying the entry.
            result: The compilation result to persist.
            job: Optional :class:`~repro.api.job.CompileJob`; when given,
                its coordinates are recorded in the payload and the
                index, making cache directories self-describing.
        """
        payload: Dict[str, object] = {
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "result": result.to_dict(),
        }
        meta: Dict[str, object] = {}
        if job is not None:
            meta = {
                "benchmark": job.program_label,
                "policy": job.policy_label,
                "machine": job.machine.describe(),
            }
            payload["job"] = meta
        with self._lock:
            _atomic_write_text(self._result_path(fingerprint),
                               json.dumps(payload, sort_keys=True))
            self._index[fingerprint] = meta
            self._index_dirty = True
            self.writes += 1

    def flush_index(self) -> None:
        """Persist pending index updates (cheap no-op when clean).

        Membership and reads never depend on the index, and a stale
        index is rebuilt on the next :class:`DiskCache` construction, so
        deferring this between batches is always safe.
        """
        with self._lock:
            if self._index_dirty:
                self._write_index()
                self._index_dirty = False

    # ------------------------------------------------------------------
    def __contains__(self, fingerprint: str) -> bool:
        return self._result_path(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.results_dir.glob("*.json"))

    def fingerprints(self) -> List[str]:
        """Every persisted fingerprint, sorted."""
        return sorted(path.stem for path in self.results_dir.glob("*.json"))

    def entries(self) -> Dict[str, Dict[str, object]]:
        """Advisory metadata (job coordinates) per fingerprint."""
        return dict(self._index)

    def clear(self) -> None:
        """Delete every persisted result and reset the index."""
        with self._lock:
            for path in self.results_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
            self._index = {}
            self._write_index()
            self._index_dirty = False

    def stats(self) -> Dict[str, object]:
        """Counters + size, JSON-compatible (for service telemetry)."""
        return {
            "root": str(self.root),
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
        }

    def __repr__(self) -> str:
        return (f"DiskCache(root={str(self.root)!r}, size={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
