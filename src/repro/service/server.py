"""HTTP compilation service: the `repro.api` Session over a network endpoint.

Pure stdlib (:class:`http.server.ThreadingHTTPServer`), one shared
memoizing :class:`~repro.api.session.Session` behind a lock, optional
persistent :class:`~repro.service.cache.DiskCache` — so any number of
clients share one warm cache that survives restarts.  Jobs always run
with failure isolation: a request for an impossible machine comes back
as a structured error entry, never as a dead batch or a dead server.

Endpoints (all JSON):

* ``GET  /health``   — liveness probe.
* ``GET  /stats``    — session/cache/telemetry counters.
* ``GET  /registry`` — available benchmarks, policies, machine kinds,
  scales.
* ``POST /compile``  — one job descriptor (see
  :meth:`~repro.api.job.CompileJob.from_dict`); returns the result
  payload plus ``cached``/``disk_hit`` provenance flags.
* ``POST /sweep``    — ``{"spec": {...}}`` sweep descriptor or
  ``{"jobs": [...]}`` explicit job list; returns per-entry payloads,
  table rows and cache stats.

Start one from the CLI with ``python -m repro.experiments serve`` or
programmatically with :func:`make_server`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional

from repro.exceptions import ReproError, ServiceError
from repro.api.job import CompileJob, MACHINE_KINDS
from repro.api.session import Session
from repro.api.sweep import SweepSpec
from repro.core.compiler import POLICY_PRESETS
from repro.workloads.registry import SCALES, benchmark_names

#: Default TCP port for the compilation service.
DEFAULT_PORT = 8731


class CompilationService:
    """The transport-independent service core: one shared session + lock.

    A :class:`~repro.api.session.Session` is not thread-safe, and the
    threading HTTP server handles each request on its own thread, so
    every session interaction serializes on one lock.  Parallelism still
    comes from the session's own :class:`~repro.api.executors.ParallelExecutor`
    workers — the lock only orders *batches*, it does not serialize
    compilation itself.

    Args:
        session: Explicit session to serve; defaults to a new one.
        jobs: Worker process count for the default session.
        cache_dir: Persistent cache directory for the default session.
    """

    def __init__(self, session: Optional[Session] = None, *, jobs: int = 1,
                 cache_dir: Optional[str] = None) -> None:
        if session is None:
            session = Session(jobs=jobs, cache_dir=cache_dir)
        self.session = session
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests = 0
        self.jobs_run = 0
        self.job_failures = 0

    # ------------------------------------------------------------------
    def compile(self, payload: Mapping[str, object]) -> Dict[str, object]:
        """Run one job descriptor; never raises for job-level failures.

        Accepts either a bare :meth:`~repro.api.job.CompileJob.from_dict`
        descriptor or ``{"job": {...}}``.
        """
        descriptor = payload.get("job", payload)
        if not isinstance(descriptor, Mapping):
            raise ServiceError("'job' must be a job descriptor object")
        job = CompileJob.from_dict(descriptor)
        with self._lock:
            disk_hits_before = self.session.disk_hits
            entry = self.session.run([job], isolate_failures=True)[0]
            disk_hit = self.session.disk_hits > disk_hits_before
            self.requests += 1
            self.jobs_run += 1
            if not entry.ok:
                self.job_failures += 1
        response: Dict[str, object] = {
            "ok": entry.ok,
            "fingerprint": job.fingerprint(),
            "cached": entry.cached,
            "disk_hit": disk_hit,
        }
        if entry.ok:
            response["result"] = entry.result.to_dict()
            response["row"] = entry.row()
        else:
            response["error"] = entry.error.to_dict()
        return response

    def sweep(self, payload: Mapping[str, object]) -> Dict[str, object]:
        """Run a sweep descriptor or explicit job list with isolation."""
        if "jobs" in payload:
            descriptors = payload["jobs"]
            if not isinstance(descriptors, list):
                raise ServiceError("'jobs' must be a list of job descriptors")
            work = [CompileJob.from_dict(descriptor)
                    for descriptor in descriptors]
        else:
            spec = payload.get("spec", payload)
            if not isinstance(spec, Mapping):
                raise ServiceError("'spec' must be a sweep descriptor object")
            work = SweepSpec.from_dict(spec)
        with self._lock:
            disk_hits_before = self.session.disk_hits
            sweep = self.session.run(work, isolate_failures=True)
            disk_hits = self.session.disk_hits - disk_hits_before
            self.requests += 1
            self.jobs_run += len(sweep)
            self.job_failures += len(sweep.failures())
        entries = []
        for entry in sweep:
            record: Dict[str, object] = {
                "ok": entry.ok,
                "fingerprint": entry.job.fingerprint(),
                "benchmark": entry.job.program_label,
                "policy": entry.job.policy_label,
                "machine": entry.job.machine.describe(),
                "cached": entry.cached,
            }
            if entry.ok:
                record["result"] = entry.result.to_dict()
            else:
                record["error"] = entry.error.to_dict()
            entries.append(record)
        return {
            "ok": sweep.ok,
            "count": len(sweep),
            "cache_hits": sweep.cache_hits,
            "disk_hits": disk_hits,
            "entries": entries,
            "rows": sweep.rows(),
        }

    def stats(self) -> Dict[str, object]:
        """Telemetry snapshot: service counters + session/cache stats."""
        with self._lock:
            self.requests += 1
            return {
                "service": {
                    "uptime_seconds": time.time() - self.started_at,
                    "requests": self.requests,
                    "jobs_run": self.jobs_run,
                    "job_failures": self.job_failures,
                },
                "session": self.session.stats(),
            }

    def registry(self) -> Dict[str, object]:
        """What the service can compile: benchmarks, policies, machines."""
        with self._lock:
            self.requests += 1
        return {
            "benchmarks": list(benchmark_names()),
            "policies": sorted(POLICY_PRESETS),
            "machine_kinds": list(MACHINE_KINDS),
            "scales": list(SCALES),
        }

    def health(self) -> Dict[str, object]:
        """Liveness payload."""
        with self._lock:
            self.requests += 1
        return {"status": "ok",
                "uptime_seconds": time.time() - self.started_at}


class ServiceHTTPHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning server's :class:`CompilationService`.

    Error mapping: malformed requests (bad JSON, bad descriptors, unknown
    benchmarks/policies — any :class:`~repro.exceptions.ReproError`) are
    400s; unknown paths 404; unexpected exceptions 500.  Job failures are
    *not* HTTP errors — they ride inside 200 responses as structured
    entries.
    """

    server_version = "ReproCompilationService/1.0"
    protocol_version = "HTTP/1.1"

    _GET_ROUTES = {
        "/health": "health",
        "/stats": "stats",
        "/registry": "registry",
    }
    _POST_ROUTES = {
        "/compile": "compile",
        "/sweep": "sweep",
    }

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Mapping[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, error: Exception) -> None:
        self._send_json(status, {
            "ok": False,
            "error": {"type": type(error).__name__, "message": str(error)},
        })

    def _read_payload(self) -> Mapping[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except ValueError as error:
            raise ServiceError(f"request body is not valid JSON: {error}")
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _dispatch(self, routes: Mapping[str, str],
                  with_payload: bool) -> None:
        method_name = routes.get(self.path)
        if method_name is None:
            known = sorted(set(self._GET_ROUTES) | set(self._POST_ROUTES))
            self._send_error_json(404, ServiceError(
                f"unknown endpoint {self.path!r}; available: {known}"))
            return
        service: CompilationService = self.server.service
        try:
            if with_payload:
                response = getattr(service, method_name)(self._read_payload())
            else:
                response = getattr(service, method_name)()
        except ReproError as error:
            self._send_error_json(400, error)
        except Exception as error:  # pragma: no cover - defensive 500
            self._send_error_json(500, error)
        else:
            self._send_json(200, response)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(self._GET_ROUTES, with_payload=False)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(self._POST_ROUTES, with_payload=True)

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            BaseHTTPRequestHandler.log_message(self, format, *args)


def make_server(host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                service: Optional[CompilationService] = None,
                session: Optional[Session] = None,
                jobs: int = 1, cache_dir: Optional[str] = None,
                verbose: bool = False) -> ThreadingHTTPServer:
    """Build a ready-to-serve compilation service HTTP server.

    The caller owns the life cycle: call ``serve_forever()`` (typically
    on a background thread in tests), and ``shutdown()`` +
    ``server_close()`` when done.  Pass ``port=0`` to bind an ephemeral
    port (read it back from ``server.server_address``).
    """
    server = ThreadingHTTPServer((host, port), ServiceHTTPHandler)
    server.service = service or CompilationService(session=session, jobs=jobs,
                                                   cache_dir=cache_dir)
    server.verbose = verbose
    return server


def serve(host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
          jobs: int = 1, cache_dir: Optional[str] = None,
          verbose: bool = True) -> None:
    """Run the service in the foreground until interrupted (CLI helper)."""
    server = make_server(host, port, jobs=jobs, cache_dir=cache_dir,
                         verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro compilation service on http://{bound_host}:{bound_port} "
          f"(jobs={jobs}, cache_dir={cache_dir or 'none'}) — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
