"""HTTP compilation service: the `repro.api` Session over a network endpoint.

Pure stdlib (:class:`http.server.ThreadingHTTPServer`).  Every request —
synchronous or asynchronous — flows through one
:class:`~repro.queue.manager.JobManager`: submissions enqueue onto a
bounded priority queue and a :class:`~repro.queue.workers.WorkerPool`
drains it into one shared thread-safe memoizing
:class:`~repro.api.session.Session` (optionally backed by a persistent
:class:`~repro.service.cache.DiskCache`).  A large sweep therefore
occupies one worker while other workers keep serving small requests —
nothing serializes behind a single lock any more.  Jobs always run with
failure isolation: a request for an impossible machine comes back as a
structured error entry, never as a dead batch or a dead server.

Endpoints (all JSON):

* ``GET  /health``            — liveness probe.
* ``GET  /stats``             — service/queue/session/cache counters.
* ``GET  /metrics``           — the same snapshot as ``/stats``,
  rendered as Prometheus text exposition (compile-phase histograms,
  queue/worker/cache gauges, per-tenant counters); scrape it.
* ``GET  /trace/<id>``        — every span recorded under one trace id
  (handler, queue wait, worker execution, cache tiers, compile
  phases); the ``trace`` CLI renders the payload as a waterfall and
  :meth:`~repro.cluster.topology.ClusterTopology.fleet_trace` merges
  it across shards.
* ``GET  /registry``          — benchmarks, policies, machine kinds,
  scales.
* ``POST /compile``           — one job descriptor, synchronous
  (submit + wait): returns the result payload plus ``cached``/
  ``disk_hit`` provenance flags.
* ``POST /sweep``             — sweep descriptor or explicit job list,
  synchronous: per-entry payloads, table rows, cache stats.
* ``POST /jobs``              — asynchronous submission: the same
  ``/compile``/``/sweep`` payload shapes (plus optional ``priority``);
  returns a ticket immediately.  503 + ``BackPressureError`` when the
  queue is full.
* ``GET  /jobs``              — list job records (``?status=QUEUED``
  filters by lifecycle state — ``state=`` is accepted as an alias — and
  ``?limit=N`` keeps only the N most recently submitted records).
* ``GET  /jobs/<id>``         — status; carries the full response
  payload once DONE, the error record once FAILED.  404 for unknown or
  garbage-collected ids.
* ``GET  /jobs/<id>/entries`` — per-entry result stream: long-polls
  (``?since=N&timeout=S``) until entries beyond the ``since`` cursor
  exist or the job is terminal, then returns the slice with the job's
  state; workers publish each sweep entry as it finishes, so clients
  consume results long before the whole batch completes.
* ``POST /jobs/<id>/cancel``  — cancel; only QUEUED jobs cancel (a
  cancelled job never runs), later states are reported back unchanged.

Multi-tenancy (see :mod:`repro.tenancy`): every request may carry an
``X-Repro-Key`` header, resolved against the server's
:class:`~repro.tenancy.tenants.TenantRegistry` (``--tenants`` file, the
``REPRO_TENANTS`` env var, or programmatic).  Keyless requests map to
the registry's default (anonymous) tenant, so pre-tenancy clients keep
working unchanged; an *unknown* key is a 401.  Submissions run under
fair-share scheduling (role weight + age + deadline urgency − decaying
burst score), one tenant at its ``max_queued`` cap gets a 429
(``QuotaExceededError``) while everyone else keeps submitting, and
``/stats`` grows a per-tenant section.  With ``--store-dir`` every job
lifecycle event is journaled to an append-only WAL and replayed on
restart: QUEUED work resumes, orphaned RUNNING jobs requeue, finished
results are served byte-identically.

Tracing: every request may carry an ``X-Repro-Trace`` id (client-minted
by :class:`~repro.service.client.ServiceClient`); invalid or missing
ids are replaced by a server-minted one.  The id is echoed on the
response, attached to the job record (and its journal entry), and
prefixed to verbose log lines, so one client request can be followed
from CLI through queue, server and cluster shards.

Start one from the CLI with ``python -m repro.experiments serve`` or
programmatically with :func:`make_server`.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import (
    AuthError,
    BackPressureError,
    QuotaExceededError,
    ReproError,
    ServiceError,
    UnknownJobError,
)
from repro.api.job import CompileJob, MACHINE_KINDS
from repro.api.session import Session
from repro.api.sweep import SweepResult, SweepSpec
from repro.core.compiler import POLICY_PRESETS
from repro.queue import DONE, FAILED, JobManager, QueuedJob
from repro.tenancy import (
    AUTH_HEADER,
    DEFAULT_HALF_LIFE,
    FairShareScheduler,
    JsonlJobStore,
    coerce_registry,
)
from repro.telemetry import (
    LEVELS,
    TRACE_HEADER,
    EventLog,
    JsonlSink,
    MetricsRegistry,
    SpanRecorder,
    coerce_trace_id,
    stderr_sink,
    valid_trace_id,
)
from repro.workloads.registry import SCALES, benchmark_names

#: Default TCP port for the compilation service.
DEFAULT_PORT = 8731

#: Default worker-thread and queue-capacity sizing for the service.
DEFAULT_WORKERS = 2
DEFAULT_QUEUE_SIZE = 64

#: Default and ceiling for the ``/jobs/<id>/entries`` long-poll wait, in
#: seconds.  The ceiling keeps a handler thread from parking forever on
#: a client-supplied timeout.
DEFAULT_ENTRY_POLL_SECONDS = 10.0
MAX_ENTRY_POLL_SECONDS = 30.0

#: Streaming chunk size multiplier for process-parallel sessions: a
#: :class:`~repro.api.executors.ParallelExecutor` spins up a fresh
#: process pool per ``run`` call, so sweeps stream in chunks of
#: ``jobs * PARALLEL_CHUNK_ROUNDS`` to amortize pool startup instead of
#: paying it once per entry.
PARALLEL_CHUNK_ROUNDS = 8


class CompilationService:
    """The transport-independent service core: queue + workers + session.

    The session is thread-safe with single-flight deduplication, so the
    worker threads share both cache tiers without duplicate compiles;
    the :class:`~repro.queue.manager.JobManager` provides admission
    control (bounded queue, structured back-pressure), job lifecycle
    tracking and graceful shutdown.  The synchronous endpoints are sugar
    over the asynchronous path: submit, wait, unwrap.

    Args:
        session: Explicit session to serve; defaults to a new one.
        jobs: Worker *process* count for the default session's executor.
        cache_dir: Persistent cache directory for the default session.
        cache_max_bytes: Optional size cap for the default session's
            disk cache; overflow evicts least-recently-used entries.
        workers: Worker *threads* draining the job queue.
        queue_size: Queue capacity; submissions beyond it get a 503.
        retention: Finished job records kept for polling before GC.
        tenants: Tenant registry — a
            :class:`~repro.tenancy.tenants.TenantRegistry`, a config
            mapping, or a path to a registry JSON file; None builds an
            anonymous-only registry (and honors ``REPRO_TENANTS``), so
            keyless clients always work.
        store_dir: Directory for the durable
            :class:`~repro.tenancy.store.JsonlJobStore` job journal;
            None keeps job state in memory only (pre-tenancy behavior).
        burst_half_life: Fair-share burst-score half-life, seconds.
        verify: When True the session runs the static compilation
            verifier over every result; entry records and ``/compile``
            responses carry a ``verification`` report payload and
            ``/stats`` grows verifier counters.  Opt-in because the
            extra pass costs a fraction of compile time on every job.
        clock: Monotonic time source for uptime, fair-share decay and
            the entries/sec EWMA; injectable so frozen-clock tests can
            assert two ``/metrics`` scrapes byte-identical.
    """

    def __init__(self, session: Optional[Session] = None, *, jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 cache_max_bytes: Optional[int] = None,
                 workers: int = DEFAULT_WORKERS,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 retention: int = 256,
                 tenants=None, store_dir: Optional[str] = None,
                 burst_half_life: float = DEFAULT_HALF_LIFE,
                 verify: bool = False,
                 log_path: Optional[str] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if session is None:
            if cache_dir is not None:
                from repro.service.cache import DiskCache

                disk_cache = DiskCache(cache_dir,
                                       max_bytes=cache_max_bytes)
                session = Session(jobs=jobs, disk_cache=disk_cache,
                                  verify=verify)
            else:
                session = Session(jobs=jobs, verify=verify)
        elif verify:
            session.verify = True
        self.session = session
        self.metrics = MetricsRegistry()
        # Per-service span ring buffer (not process-global): in-process
        # multi-server tests must never see each other's traces.
        self.spans = SpanRecorder()
        # Per-service event log for the same reason; sinks (stderr,
        # JSONL file) are attached by make_server / the CLI.
        self.events = EventLog()
        self._log_sink = JsonlSink(log_path) if log_path else None
        if self._log_sink is not None:
            self.events.add_sink(self._log_sink)
        if getattr(session, "metrics", None) is None:
            # The session observes compile-phase histograms straight
            # into the service registry; /metrics serves them live.
            session.metrics = self.metrics
        if getattr(session, "events", None) is None:
            # Cache-tier and verifier events narrate into the service
            # log, correlated through the worker's job.run span.
            session.events = self.events
        self.clock = clock
        self.tenants = coerce_registry(tenants)
        self.scheduler = FairShareScheduler(half_life=burst_half_life,
                                            clock=clock)
        self.store = JsonlJobStore(store_dir) if store_dir else None
        self.manager = JobManager(self._run_job, workers=workers,
                                  queue_size=queue_size,
                                  retention=retention, name="repro-service",
                                  scheduler=self.scheduler, store=self.store,
                                  events=self.events,
                                  clock=clock)
        self._counters = threading.Lock()
        # Monotonic: uptime must survive wall-clock jumps (NTP, DST).
        self.started_at = clock()
        self.requests = 0
        self.jobs_run = 0
        self.job_failures = 0

    def close(self, drain: bool = False, hard: bool = False) -> None:
        """Shut the queue and worker pool down (idempotent).

        ``hard=True`` simulates a crash instead (test/demo seam): the
        job journal freezes first and nothing is drained, cancelled or
        joined — see :meth:`~repro.queue.manager.JobManager.crash`.
        """
        if hard:
            self.manager.crash()
        else:
            self.manager.close(drain=drain)
        if self._log_sink is not None:
            self._log_sink.close()

    # ------------------------------------------------------------------
    # Authentication
    # ------------------------------------------------------------------
    def authenticate(self, api_key: Optional[str]):
        """Resolve an ``X-Repro-Key`` header value to a Tenant.

        A missing/empty key resolves to the registry's default
        (anonymous) tenant; an unknown key raises
        :class:`~repro.exceptions.AuthError` (401 on the wire).
        """
        try:
            return self.tenants.resolve(api_key)
        except AuthError:
            self.events.warning("auth rejected: unknown api key",
                                component="tenancy")
            raise

    # ------------------------------------------------------------------
    # Request admission: validation + classification
    # ------------------------------------------------------------------
    def _count_request(self) -> None:
        with self._counters:
            self.requests += 1

    @staticmethod
    def _parse_submission(payload: Mapping[str, object],
                          kind: Optional[str] = None
                          ) -> Tuple[str, Dict[str, object], int,
                                     Optional[float]]:
        """Validate a submission payload; returns
        ``(kind, work, priority, deadline_seconds)``.

        Descriptors are fully parsed here so malformed requests fail
        fast with a 400 at submission time — never later inside a
        worker.  The *raw* descriptor dict is what travels through the
        queue (JSON-compatible end to end); workers re-parse it.
        """
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ServiceError(f"'priority' must be an integer, "
                               f"got {priority!r}")
        deadline = payload.get("deadline_seconds")
        if deadline is not None:
            if isinstance(deadline, bool) \
                    or not isinstance(deadline, (int, float)) \
                    or not deadline > 0:
                raise ServiceError(f"'deadline_seconds' must be a positive "
                                   f"number, got {deadline!r}")
            deadline = float(deadline)
        declared = payload.get("kind")
        if declared is not None and declared not in ("compile", "sweep"):
            raise ServiceError(f"unknown job kind {declared!r}; "
                               f"expected 'compile' or 'sweep'")

        if "jobs" in payload:
            descriptors = payload["jobs"]
            if not isinstance(descriptors, list):
                raise ServiceError("'jobs' must be a list of job descriptors")
            for descriptor in descriptors:
                if not isinstance(descriptor, Mapping):
                    raise ServiceError("every entry in 'jobs' must be a "
                                       "job descriptor object")
                CompileJob.from_dict(descriptor)
            inferred, work = "sweep", {"jobs": list(descriptors)}
        elif "spec" in payload:
            spec = payload["spec"]
            if not isinstance(spec, Mapping):
                raise ServiceError("'spec' must be a sweep descriptor object")
            SweepSpec.from_dict(spec)
            inferred, work = "sweep", {"spec": dict(spec)}
        else:
            descriptor = payload.get("job", payload)
            if not isinstance(descriptor, Mapping):
                raise ServiceError("'job' must be a job descriptor object")
            descriptor = {key: value for key, value in descriptor.items()
                          if key not in ("kind", "priority",
                                         "deadline_seconds")}
            CompileJob.from_dict(descriptor)
            inferred, work = "compile", {"job": descriptor}
        if declared is not None and declared != inferred:
            raise ServiceError(
                f"payload shape says kind={inferred!r} but the request "
                f"declared kind={declared!r}")
        return inferred, work, priority, deadline

    # ------------------------------------------------------------------
    # Worker side: executing queued payloads against the session
    # ------------------------------------------------------------------
    def _run_job(self, queued: QueuedJob) -> Dict[str, object]:
        """Worker entry point: record queue wait, then dispatch by kind.

        Runs on a worker thread, so the submitting handler's span (if
        any) is linked through the ``span_parent`` id stamped on the job
        at submission — contextvars do not cross the queue.  The queue
        wait itself is reconstructed here as a pre-finished span (the
        job was not *doing* anything, so there was nothing to close) and
        observed into the ``repro_queue_wait_seconds`` histogram at
        event time.
        """
        trace = coerce_trace_id(queued.trace_id)
        parent = getattr(queued, "span_parent", None)
        wait = queued.wait_seconds
        if wait is not None:
            self.metrics.histogram(
                "repro_queue_wait_seconds",
                "Seconds between enqueue and worker pickup.").observe(wait)
            self.spans.add("queue.wait", trace_id=trace, parent_id=parent,
                           start_mono=time.perf_counter() - wait,
                           duration=wait,
                           labels={"job_id": queued.job_id})
        tenant = getattr(queued, "tenant", None)
        labels = {"job_id": queued.job_id, "kind": queued.kind}
        if tenant is not None:
            labels["tenant"] = tenant.name
        with self.spans.span("job.run", trace_id=trace, parent_id=parent,
                             labels=labels):
            # trace/span/tenant/job correlation rides the active span.
            self.events.info("worker picked up job", component="worker",
                             fields={"kind": queued.kind,
                                     "wait_seconds": round(wait or 0.0, 6)})
            if queued.kind == "compile":
                return self._execute_compile(queued)
            if queued.kind == "sweep":
                return self._execute_sweep(queued)
            raise ServiceError(f"unknown job kind {queued.kind!r}")

    def _execute_compile(self, queued: QueuedJob) -> Dict[str, object]:
        job = CompileJob.from_dict(queued.payload["job"])
        entry = self.session.run([job], isolate_failures=True)[0]
        with self._counters:
            self.jobs_run += 1
            if not entry.ok:
                self.job_failures += 1
        response: Dict[str, object] = {
            "ok": entry.ok,
            "fingerprint": job.fingerprint(),
            "cached": entry.cached,
            "disk_hit": entry.disk_hit,
        }
        if entry.ok:
            response["result"] = entry.result.to_dict()
            response["row"] = entry.row()
            if entry.verification is not None:
                response["verification"] = entry.verification.to_dict()
        else:
            response["error"] = entry.error.to_dict()
        self.manager.record_entry(queued, self._entry_record(entry))
        return response

    @staticmethod
    def _entry_record(entry) -> Dict[str, object]:
        """Serialize one executed sweep entry to its wire record."""
        record: Dict[str, object] = {
            "ok": entry.ok,
            "fingerprint": entry.job.fingerprint(),
            "benchmark": entry.job.program_label,
            "policy": entry.job.policy_label,
            "machine": entry.job.machine.describe(),
            "cached": entry.cached,
            "disk_hit": entry.disk_hit,
        }
        if entry.ok:
            record["result"] = entry.result.to_dict()
            if entry.verification is not None:
                record["verification"] = entry.verification.to_dict()
        else:
            record["error"] = entry.error.to_dict()
        return record

    def _execute_sweep(self, queued: QueuedJob) -> Dict[str, object]:
        """Execute a sweep incrementally, streaming per-entry records.

        Jobs run through the session in chunks — one at a time under the
        default serial executor, ``jobs * PARALLEL_CHUNK_ROUNDS`` under
        a process-parallel executor (which pays pool startup per ``run``
        call) — and every finished entry is published on the queued
        job's entry stream immediately, so ``GET /jobs/<id>/entries``
        long-pollers see results while later chunks are still
        compiling.  Session memoization makes the chunked execution
        equivalent to one batch: in-sweep duplicates still compile
        once, and cached/disk-hit provenance flags come out identical.
        """
        payload = queued.payload
        if "jobs" in payload:
            work = [CompileJob.from_dict(descriptor)
                    for descriptor in payload["jobs"]]
        else:
            work = SweepSpec.from_dict(payload["spec"]).jobs()
        width = max(1, getattr(self.session.executor, "jobs", 1))
        chunk = width if width == 1 else width * PARALLEL_CHUNK_ROUNDS
        entries = []
        records: List[Dict[str, object]] = []
        for start in range(0, len(work), chunk):
            batch = self.session.run(work[start:start + chunk],
                                     isolate_failures=True)
            for entry in batch:
                entries.append(entry)
                record = self._entry_record(entry)
                records.append(record)
                self.manager.record_entry(queued, record)
        sweep = SweepResult(entries)
        with self._counters:
            self.jobs_run += len(sweep)
            self.job_failures += len(sweep.failures())
        return {
            "ok": sweep.ok,
            "count": len(sweep),
            "cache_hits": sweep.cache_hits,
            "disk_hits": sum(1 for entry in sweep if entry.disk_hit),
            "entries": records,
            "rows": sweep.rows(),
        }

    # ------------------------------------------------------------------
    # Synchronous endpoints (submit + wait over the async path)
    # ------------------------------------------------------------------
    def _submit_and_wait(self, kind: str, work: Dict[str, object],
                         priority: int, tenant=None,
                         deadline: Optional[float] = None,
                         trace_id: Optional[str] = None
                         ) -> Dict[str, object]:
        ticket = self.manager.submit(kind, work, priority=priority,
                                     tenant=tenant,
                                     deadline_seconds=deadline,
                                     trace_id=trace_id)
        ticket.wait()
        if ticket.state == DONE:
            return ticket.response
        if ticket.state == FAILED:
            raise self.manager.failure_exception(ticket)
        raise ServiceError(
            f"job {ticket.job_id} was cancelled before completing "
            f"(service shutting down?)")

    def compile(self, payload: Mapping[str, object],
                tenant=None, trace_id: Optional[str] = None
                ) -> Dict[str, object]:
        """Run one job descriptor synchronously; job-level failures ride
        inside the 200 response as structured error entries.

        Accepts either a bare :meth:`~repro.api.job.CompileJob.from_dict`
        descriptor or ``{"job": {...}}``.
        """
        self._count_request()
        kind, work, priority, deadline = self._parse_submission(payload)
        if kind != "compile":
            raise ServiceError("/compile takes a single job descriptor; "
                               "POST sweeps to /sweep or /jobs")
        return self._submit_and_wait(kind, work, priority,
                                     tenant=tenant, deadline=deadline,
                                     trace_id=trace_id)

    def sweep(self, payload: Mapping[str, object],
              tenant=None, trace_id: Optional[str] = None
              ) -> Dict[str, object]:
        """Run a sweep descriptor or explicit job list synchronously."""
        self._count_request()
        if "jobs" not in payload and "spec" not in payload:
            payload = {"spec": payload.get("spec", payload)}
        kind, work, priority, deadline = self._parse_submission(payload)
        return self._submit_and_wait(kind, work, priority,
                                     tenant=tenant, deadline=deadline,
                                     trace_id=trace_id)

    # ------------------------------------------------------------------
    # Asynchronous endpoints
    # ------------------------------------------------------------------
    def submit_job(self, payload: Mapping[str, object],
                   tenant=None, trace_id: Optional[str] = None
                   ) -> Dict[str, object]:
        """``POST /jobs``: validate, enqueue, return the ticket at once."""
        self._count_request()
        kind, work, priority, deadline = self._parse_submission(payload)
        ticket = self.manager.submit(kind, work, priority=priority,
                                     tenant=tenant,
                                     deadline_seconds=deadline,
                                     trace_id=trace_id)
        return {
            "ok": True,
            "job_id": ticket.job_id,
            "kind": ticket.kind,
            "state": ticket.state,
            "priority": ticket.priority,
            "tenant": ticket.tenant.name if ticket.tenant else None,
            "trace_id": ticket.trace_id,
            "queue_depth": len(self.manager.queue),
        }

    def job_status(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/<id>``: lifecycle record, result inline once DONE."""
        self._count_request()
        return self.manager.status(job_id)

    def job_entries(self, job_id: str, since: int = 0,
                    timeout: Optional[float] = None) -> Dict[str, object]:
        """``GET /jobs/<id>/entries``: long-poll the per-entry stream.

        Blocks up to ``timeout`` seconds (default
        :data:`DEFAULT_ENTRY_POLL_SECONDS`, capped at
        :data:`MAX_ENTRY_POLL_SECONDS`) for entries beyond the ``since``
        cursor; a terminal ``state`` in the response means the returned
        slice completes the stream.
        """
        self._count_request()
        if timeout is None:
            timeout = DEFAULT_ENTRY_POLL_SECONDS
        timeout = max(0.0, min(timeout, MAX_ENTRY_POLL_SECONDS))
        return self.manager.entries_since(job_id, since=since,
                                          timeout=timeout)

    def list_jobs(self, state: Optional[str] = None,
                  limit: Optional[int] = None) -> Dict[str, object]:
        """``GET /jobs[?status=...&limit=N]``: compact job listing."""
        self._count_request()
        records = self.manager.jobs(state=state, limit=limit)
        return {
            "count": len(records),
            "jobs": [{
                "job_id": job.job_id,
                "kind": job.kind,
                "state": job.state,
                "priority": job.priority,
                "tenant": job.tenant.name if job.tenant else None,
                "submitted_at": job.submitted_at,
            } for job in records],
        }

    def cancel_job(self, job_id: str) -> Dict[str, object]:
        """``POST /jobs/<id>/cancel``: cancel a QUEUED job."""
        self._count_request()
        job, cancelled = self.manager.cancel(job_id)
        return {"ok": True, "job_id": job.job_id, "cancelled": cancelled,
                "state": job.state}

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def _collect(self) -> Dict[str, object]:
        """One stats snapshot — the single source for ``/stats`` *and*
        ``/metrics``, so the two surfaces can never disagree about what
        the service looked like at collection time."""
        manager = self.manager.stats()
        with self._counters:
            service = {
                "uptime_seconds": self.clock() - self.started_at,
                "requests": self.requests,
                "jobs_run": self.jobs_run,
                "job_failures": self.job_failures,
                "verify_enabled": self.session.verify,
                "queue_depth": manager["queue"]["depth"],
                "queue_capacity": manager["queue"]["capacity"],
                "workers": manager["pool"]["workers"],
                "busy_workers": manager["pool"]["busy"],
                "worker_utilization": manager["pool"]["utilization"],
            }
        return {
            "service": service,
            "queue": manager,
            "session": self.session.stats(),
            "tenants": self._tenant_stats(manager),
            "events": self.events.stats(),
        }

    def stats(self) -> Dict[str, object]:
        """Telemetry snapshot: service + queue/worker + session stats."""
        self._count_request()
        return self._collect()

    def metrics_text(self) -> str:
        """``GET /metrics``: Prometheus text exposition of the registry.

        Samples the authoritative counters (the same :meth:`_collect`
        snapshot ``/stats`` serves) into the registry, then renders it
        together with the live compile-phase histograms the session
        observes directly.  Scrapes are deliberately *not* counted as
        service requests: a scrape must not perturb what it measures,
        which is also what makes two frozen-clock scrapes byte-identical.
        """
        snapshot = self._collect()
        self._sample_metrics(snapshot)
        return self.metrics.render()

    def _sample_metrics(self, snapshot: Mapping[str, object]) -> None:
        """Project one stats snapshot onto the metrics registry.

        Counters are *sampled* (``Counter.set`` clamps monotonically)
        rather than incremented at every site, so the manager/queue/
        session counters stay authoritative and the registry can never
        drift from what ``/stats`` reports.
        """
        service = snapshot["service"]
        manager = snapshot["queue"]
        session = snapshot["session"]
        queue = manager["queue"]
        counter, gauge = self.metrics.counter, self.metrics.gauge

        gauge("repro_uptime_seconds",
              "Service uptime (monotonic clock).").set(
            service["uptime_seconds"])
        counter("repro_requests_total",
                "HTTP requests served (scrapes excluded).").set(
            service["requests"])
        counter("repro_jobs_run_total",
                "Compile jobs executed by the workers.").set(
            service["jobs_run"])
        counter("repro_job_failures_total",
                "Compile jobs that ended in a structured failure.").set(
            service["job_failures"])

        gauge("repro_queue_depth", "Jobs waiting in the queue.").set(
            queue["depth"])
        gauge("repro_queue_capacity",
              "Queue back-pressure threshold.").set(queue["capacity"])
        counter("repro_queue_pushed_total",
                "Jobs accepted onto the queue.").set(queue["pushed"])
        counter("repro_queue_rejected_total",
                "Submissions rejected by global back-pressure.").set(
            queue["rejected"])
        counter("repro_queue_quota_rejected_total",
                "Submissions rejected by per-tenant quotas.").set(
            queue["quota_rejected"])
        gauge("repro_workers", "Worker threads draining the queue.").set(
            service["workers"])
        gauge("repro_workers_busy",
              "Worker threads currently running a job.").set(
            service["busy_workers"])

        counter("repro_jobs_submitted_total",
                "Jobs registered by the manager.").set(manager["submitted"])
        counter("repro_jobs_completed_total",
                "Jobs that reached DONE.").set(manager["completed"])
        counter("repro_jobs_failed_total",
                "Jobs that reached FAILED.").set(manager["failed"])
        counter("repro_jobs_cancelled_total",
                "Jobs that reached CANCELLED.").set(manager["cancelled"])
        counter("repro_entries_recorded_total",
                "Per-entry sweep records streamed to clients.").set(
            manager["entries_recorded"])
        gauge("repro_entries_per_second",
              "Half-life-decayed EWMA of entry completion rate.").set(
            manager["entries_per_second"])

        hits = counter("repro_cache_hits_total",
                       "Result-cache hits by tier.", labelnames=("tier",))
        misses = counter("repro_cache_misses_total",
                         "Result-cache misses by tier.",
                         labelnames=("tier",))
        entries = gauge("repro_cache_entries",
                        "Result-cache entries by tier.",
                        labelnames=("tier",))
        hits.labels(tier="memory").set(session["cache_hits"])
        misses.labels(tier="memory").set(session["cache_misses"])
        entries.labels(tier="memory").set(session["cache_size"])
        disk = session.get("disk_cache")
        if disk:
            hits.labels(tier="disk").set(disk["hits"])
            misses.labels(tier="disk").set(disk["misses"])
            entries.labels(tier="disk").set(disk["size"])
            gauge("repro_cache_bytes", "Result-cache bytes by tier.",
                  labelnames=("tier",)).labels(tier="disk").set(
                disk["bytes"])
            counter("repro_cache_evictions_total",
                    "Cache entries evicted by the size cap.",
                    labelnames=("tier",)).labels(tier="disk").set(
                disk["evictions"])
            counter("repro_cache_orphans_removed_total",
                    "Orphaned cache files removed by gc.",
                    labelnames=("tier",)).labels(tier="disk").set(
                disk["orphans_removed"])

        events = snapshot.get("events")
        if events:
            per_level = counter("repro_log_events_total",
                                "Structured log events recorded, by level.",
                                labelnames=("level",))
            for level in LEVELS:
                per_level.labels(level=level).set(
                    events["by_level"].get(level, 0))
            counter("repro_log_events_dropped_total",
                    "Structured log events evicted from the ring.").set(
                events["dropped"])

        verify = session.get("verify")
        if verify:
            counter("repro_verify_results_total",
                    "Results checked by the static verifier.").set(
                verify["verified_results"])
            counter("repro_verify_findings_total",
                    "Findings raised by the static verifier.").set(
                verify["findings"])

        tenant_families = {
            key: counter(f"repro_tenant_{key}_total",
                         f"Jobs {key} per tenant.", labelnames=("tenant",))
            for key in ("submitted", "completed", "failed", "cancelled",
                        "rejected")}
        queued = gauge("repro_tenant_queued",
                       "Jobs waiting in the queue per tenant.",
                       labelnames=("tenant",))
        burst = gauge("repro_tenant_burst_score",
                      "Decayed fair-share burst score per tenant.",
                      labelnames=("tenant",))
        for name, bucket in snapshot["tenants"].items():
            for key, family in tenant_families.items():
                if key in bucket:
                    family.labels(tenant=name).set(bucket[key])
            queued.labels(tenant=name).set(bucket.get("queued", 0))
            if "burst_score" in bucket:
                burst.labels(tenant=name).set(bucket["burst_score"])

    @staticmethod
    def _tenant_stats(manager: Dict[str, object]) -> Dict[str, object]:
        """Per-tenant ``/stats`` section: lifecycle counters joined with
        the live queue depth and current (decayed) burst score."""
        tenants: Dict[str, Dict[str, object]] = {
            name: dict(counters)
            for name, counters in manager.get("tenants", {}).items()}
        for name, depth in manager["queue"].get("tenant_depths",
                                                {}).items():
            tenants.setdefault(name, {})["queued"] = depth
        fair_share = manager.get("fair_share", {})
        for name, score in fair_share.get("burst_scores", {}).items():
            tenants.setdefault(name, {})["burst_score"] = score
        return tenants

    def trace(self, trace_id: str) -> Dict[str, object]:
        """``GET /trace/<id>``: every recorded span of one trace.

        Spans come back deterministically ordered (start, name,
        span_id) in their ``to_dict`` wire form; the ``trace`` CLI
        renders them as a waterfall and the cluster topology merges
        payloads from every shard of a fan-out (same trace id, disjoint
        span ids).  An unknown-but-valid id returns an empty list — the
        ring buffer may simply have evicted it.
        """
        self._count_request()
        if not valid_trace_id(trace_id):
            raise ServiceError(f"invalid trace id {trace_id!r}")
        spans = self.spans.for_trace(trace_id)
        return {"trace_id": trace_id, "count": len(spans),
                "spans": [span.to_dict() for span in spans]}

    def logs(self, *, trace: Optional[str] = None,
             tenant: Optional[str] = None,
             level: Optional[str] = None,
             since: Optional[float] = None,
             limit: Optional[int] = None) -> Dict[str, object]:
        """``GET /logs``: filtered structured events from the ring.

        Filters compose (AND): ``trace=`` an exact trace id, ``tenant=``
        an exact tenant name, ``level=`` a *minimum* severity, ``since=``
        a wall-clock lower bound (exclusive), ``limit=`` keeps the
        newest N matches.  Events come back deterministically ordered by
        ``(ts, event_id)`` in their ``to_dict`` wire form; the cluster
        topology merges payloads from every shard, deduping on
        ``(worker, event_id)``.
        """
        self._count_request()
        if trace is not None and not valid_trace_id(trace):
            raise ServiceError(f"invalid trace id {trace!r}")
        if level is not None and str(level).upper() not in LEVELS:
            raise ServiceError(f"unknown log level {level!r}; "
                               f"expected one of {list(LEVELS)}")
        events = self.events.events(trace=trace, tenant=tenant,
                                    level=level, since=since, limit=limit)
        return {"count": len(events),
                "events": [event.to_dict() for event in events]}

    def registry(self) -> Dict[str, object]:
        """What the service can compile: benchmarks, policies, machines."""
        self._count_request()
        return {
            "benchmarks": list(benchmark_names()),
            "policies": sorted(POLICY_PRESETS),
            "machine_kinds": list(MACHINE_KINDS),
            "scales": list(SCALES),
        }

    def health(self) -> Dict[str, object]:
        """Liveness payload (includes worker liveness for probes)."""
        self._count_request()
        return {"status": "ok",
                "uptime_seconds": self.clock() - self.started_at,
                "workers_alive": self.manager.pool.alive}


class ServiceHTTPHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning server's :class:`CompilationService`.

    Error mapping: malformed requests (bad JSON, bad descriptors, unknown
    benchmarks/policies — any :class:`~repro.exceptions.ReproError`) are
    400s; an unknown ``X-Repro-Key`` 401; unknown paths and job ids 404;
    a tenant at its queued-job quota 429 (with ``tenant``/``depth``/
    ``capacity`` in the error record); a full queue 503 (with ``depth``/
    ``capacity``); unexpected exceptions 500.  Job failures are *not*
    HTTP errors — they ride inside 200 responses as structured entries.
    """

    server_version = "ReproCompilationService/2.0"
    protocol_version = "HTTP/1.1"

    _KNOWN = ["GET /health", "GET /stats", "GET /metrics", "GET /registry",
              "GET /trace/<id>", "GET /logs",
              "GET /jobs", "GET /jobs/<id>", "GET /jobs/<id>/entries",
              "POST /compile", "POST /sweep", "POST /jobs",
              "POST /jobs/<id>/cancel"]

    #: Prometheus text exposition content type (``GET /metrics``).
    _METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    #: The request's coerced trace id (set per request in ``_route``).
    _trace_id: Optional[str] = None

    #: True while handling an observability read (no access-log event).
    _quiet: bool = False

    @staticmethod
    def _query_int(params: Dict[str, List[str]], name: str):
        """Parse an optional integer query parameter (400 on junk)."""
        raw = params.get(name, [None])[0]
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            raise ServiceError(
                f"query parameter {name}={raw!r} is not an integer")

    @staticmethod
    def _query_float(params: Dict[str, List[str]], name: str):
        """Parse an optional float query parameter (400 on junk)."""
        raw = params.get(name, [None])[0]
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            raise ServiceError(
                f"query parameter {name}={raw!r} is not a number")

    # ------------------------------------------------------------------
    def _send_body(self, status: int, body: bytes,
                   content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id:
            # Echo the (possibly server-minted) trace id, so a client
            # that sent none learns the id its job records carry.
            self.send_header(TRACE_HEADER, self._trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Mapping[str, object]) -> None:
        self._send_body(status, json.dumps(payload).encode("utf-8"),
                        "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send_body(status, text.encode("utf-8"),
                        self._METRICS_CONTENT_TYPE)

    def _send_error_json(self, status: int, error: Exception) -> None:
        record: Dict[str, object] = {
            "type": type(error).__name__, "message": str(error),
        }
        if isinstance(error, BackPressureError):
            record["depth"] = error.depth
            record["capacity"] = error.capacity
        if isinstance(error, QuotaExceededError):
            record["tenant"] = error.tenant
        self._send_json(status, {"ok": False, "error": record})

    def _read_payload(self) -> Mapping[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except ValueError as error:
            raise ServiceError(f"request body is not valid JSON: {error}")
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    def _resolve(self, method: str, path: str, query: str, tenant):
        """Map (method, path) to a zero-argument service call.

        ``tenant`` is the already-authenticated request principal; only
        the submission endpoints consume it (reads are tenant-blind).
        A call returning a string is sent as Prometheus text exposition
        instead of JSON (the ``/metrics`` surface).
        """
        service: CompilationService = self.server.service
        trace = self._trace_id
        parts = [part for part in path.split("/") if part]
        if method == "GET":
            if path == "/health":
                return service.health
            if path == "/stats":
                return service.stats
            if path == "/metrics":
                return service.metrics_text
            if path == "/registry":
                return service.registry
            if path == "/jobs":
                params = urllib.parse.parse_qs(query)
                # ``status`` is the documented filter name; ``state`` is
                # kept as an alias for older clients.
                state = params.get("status", params.get("state", [None]))[0]
                return lambda: service.list_jobs(
                    state=state, limit=self._query_int(params, "limit"))
            if path == "/logs":
                params = urllib.parse.parse_qs(query)
                return lambda: service.logs(
                    trace=params.get("trace", [None])[0],
                    tenant=params.get("tenant", [None])[0],
                    level=params.get("level", [None])[0],
                    since=self._query_float(params, "since"),
                    limit=self._query_int(params, "limit"))
            if len(parts) == 2 and parts[0] == "trace":
                return lambda: service.trace(parts[1])
            if len(parts) == 2 and parts[0] == "jobs":
                return lambda: service.job_status(parts[1])
            if len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "entries":
                params = urllib.parse.parse_qs(query)
                return lambda: service.job_entries(
                    parts[1],
                    since=self._query_int(params, "since") or 0,
                    timeout=self._query_float(params, "timeout"))
        else:
            if path == "/compile":
                return lambda: service.compile(self._read_payload(), tenant,
                                               trace_id=trace)
            if path == "/sweep":
                return lambda: service.sweep(self._read_payload(), tenant,
                                             trace_id=trace)
            if path == "/jobs":
                return lambda: service.submit_job(self._read_payload(),
                                                  tenant, trace_id=trace)
            if len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "cancel":
                return lambda: service.cancel_job(parts[1])
        return None

    def _route(self, method: str) -> None:
        path, _, query = self.path.partition("?")
        # Valid inbound trace ids propagate; anything else (including
        # absence) gets a fresh server-minted id, so every job record
        # and verbose log line carries one.
        self._trace_id = coerce_trace_id(self.headers.get(TRACE_HEADER))
        # Observability reads must not perturb what they observe: no
        # access-log event for scrapes/log fetches (the same reason
        # they are not counted as requests).
        self._quiet = path in ("/metrics", "/logs")
        try:
            service: CompilationService = self.server.service
            tenant = service.authenticate(self.headers.get(AUTH_HEADER))
            call = self._resolve(method, path, query, tenant)
            if call is None:
                self._send_error_json(404, ServiceError(
                    f"unknown endpoint {method} {path!r}; "
                    f"available: {self._KNOWN}"))
                return
            if method == "POST":
                # Submissions get a handler span: the queue worker
                # links its spans back to it through the job's
                # ``span_parent`` id.  GET traffic (status polls,
                # scrapes, trace fetches) stays span-free so a sweep's
                # waterfall is not buried under its own polling.
                with service.spans.span("server.handle",
                                        trace_id=self._trace_id,
                                        labels={"method": method,
                                                "path": path}):
                    response = call()
            else:
                response = call()
        except AuthError as error:
            self._send_error_json(401, error)
        except QuotaExceededError as error:
            self._send_error_json(429, error)
        except BackPressureError as error:
            self._send_error_json(503, error)
        except UnknownJobError as error:
            self._event(404, method, path, error)
            self._send_error_json(404, error)
        except ReproError as error:
            self._event(400, method, path, error)
            self._send_error_json(400, error)
        except Exception as error:  # pragma: no cover - defensive 500
            self._event(500, method, path, error)
            self._send_error_json(500, error)
        else:
            if isinstance(response, str):
                self._send_text(200, response)
            else:
                self._send_json(200, response)

    def _event(self, status: int, method: str, path: str,
               error: Exception) -> None:
        """Narrate a request failure into the service event log.

        401/429/503 are *not* emitted here — their sources (tenancy
        auth, quota shed, queue back-pressure) already emit richer
        structured events; double-logging them would skew the counts.
        """
        service = getattr(self.server, "service", None)
        if service is None:
            return
        service.events.warning(
            f"request failed: {type(error).__name__}: {error}",
            component="server", trace_id=self._trace_id,
            fields={"method": method, "path": path, "status": status})

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._route("POST")

    def log_message(self, format: str, *args) -> None:
        """The classic http.server access line, as a structured event.

        Every line lands in the service event log carrying the
        request's trace id (and tenant/job ids when a span is active);
        the human-readable stderr form is produced by the
        :func:`~repro.telemetry.events.stderr_sink` that ``make_server``
        attaches for verbose servers — so ``serve --verbose`` output
        looks like before, but now greps by ``trace=``.
        """
        service = getattr(self.server, "service", None)
        if service is None:  # pragma: no cover - bare handler use
            if getattr(self.server, "verbose", False):
                BaseHTTPRequestHandler.log_message(self, format, *args)
            return
        if getattr(self, "_quiet", False):
            return
        service.events.debug(format % args, component="http",
                             trace_id=self._trace_id,
                             fields={"client": self.address_string()})


class CompilationHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that owns a :class:`CompilationService`.

    ``server_close`` also shuts the service's worker pool down, so the
    ``shutdown()`` + ``server_close()`` idiom used by tests and the CLI
    never leaks worker threads or strands queued jobs.
    """

    service: CompilationService

    def server_close(self) -> None:
        super().server_close()
        service = getattr(self, "service", None)
        if service is not None:
            service.close()


def make_server(host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                service: Optional[CompilationService] = None,
                session: Optional[Session] = None,
                jobs: int = 1, cache_dir: Optional[str] = None,
                cache_max_bytes: Optional[int] = None,
                workers: int = DEFAULT_WORKERS,
                queue_size: int = DEFAULT_QUEUE_SIZE,
                tenants=None, store_dir: Optional[str] = None,
                burst_half_life: Optional[float] = None,
                verify: bool = False,
                log_path: Optional[str] = None,
                verbose: bool = False) -> CompilationHTTPServer:
    """Build a ready-to-serve compilation service HTTP server.

    The caller owns the life cycle: call ``serve_forever()`` (typically
    on a background thread in tests), and ``shutdown()`` +
    ``server_close()`` when done (``server_close`` also stops the worker
    pool).  Pass ``port=0`` to bind an ephemeral port (read it back from
    ``server.server_address``).  ``verbose`` attaches the human-readable
    stderr sink to the service event log; ``log_path`` a rotating JSONL
    sink.
    """
    server = CompilationHTTPServer((host, port), ServiceHTTPHandler)
    server.service = service or CompilationService(
        session=session, jobs=jobs, cache_dir=cache_dir,
        cache_max_bytes=cache_max_bytes,
        workers=workers, queue_size=queue_size,
        tenants=tenants, store_dir=store_dir,
        burst_half_life=(DEFAULT_HALF_LIFE if burst_half_life is None
                         else burst_half_life),
        verify=verify, log_path=log_path)
    server.verbose = verbose
    if verbose:
        server.service.events.add_sink(stderr_sink())
    return server


def serve(host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
          jobs: int = 1, cache_dir: Optional[str] = None,
          cache_max_bytes: Optional[int] = None,
          workers: int = DEFAULT_WORKERS,
          queue_size: int = DEFAULT_QUEUE_SIZE,
          tenants=None, store_dir: Optional[str] = None,
          burst_half_life: Optional[float] = None,
          verify: bool = False,
          log_path: Optional[str] = None,
          verbose: bool = True) -> None:
    """Run the service in the foreground until interrupted (CLI helper)."""
    server = make_server(host, port, jobs=jobs, cache_dir=cache_dir,
                         cache_max_bytes=cache_max_bytes,
                         workers=workers, queue_size=queue_size,
                         tenants=tenants, store_dir=store_dir,
                         burst_half_life=burst_half_life,
                         verify=verify, log_path=log_path,
                         verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro compilation service on http://{bound_host}:{bound_port} "
          f"(workers={workers}, queue_size={queue_size}, jobs={jobs}, "
          f"cache_dir={cache_dir or 'none'}, "
          f"store_dir={store_dir or 'none'}, "
          f"verify={'on' if verify else 'off'}) — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
