"""Thin HTTP client for the compilation service.

:class:`ServiceClient` mirrors the :class:`~repro.api.session.Session`
surface — ``compile``/``submit``/``run`` — but executes on a remote
service, so an experiment script can switch between in-process and
remote compilation by swapping one object::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8731")
    result = client.compile("RD53", policy="square")
    sweep = client.run(SweepSpec().with_benchmarks("RD53", "ADDER4"))

On top of the synchronous surface sits the asynchronous job API:
``submit_async`` returns a ticket id immediately (the server queues the
work), ``poll``/``wait_for`` watch it to a terminal state (polling with
adaptive backoff so long compilations don't hammer the server),
``cancel`` withdraws a still-queued job, ``result_of`` unwraps a
finished ticket into the usual result objects, and ``iter_entries``
streams a sweep's per-entry results as workers finish them — the feed
the :mod:`repro.cluster` coordinator merges across servers.

Pure stdlib (``urllib``).  Transport and protocol problems raise
:class:`~repro.exceptions.ServiceError` — except a full server queue,
which raises the structured
:class:`~repro.exceptions.BackPressureError` so callers can tell
"retry later" from "bad request".  Idempotent GETs (health, stats,
polling) retry with exponential backoff on connection refused/reset, so
a poll loop survives a server restart.  A job that failed on the server
re-raises client-side as its original library exception type (via
:meth:`~repro.core.result.JobFailure.to_exception`), exactly like a
local session would.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.exceptions import (
    AuthError,
    BackPressureError,
    QuotaExceededError,
    ServiceError,
    UnknownJobError,
)
from repro.api.job import CompileJob, MachineSpec
from repro.api.sweep import SweepEntry, SweepResult, SweepSpec
from repro.core.compiler import preset
from repro.core.result import CompilationResult, JobFailure
from repro.telemetry import TRACE_HEADER, SpanRecorder, coerce_trace_id

#: Job states a ticket can never leave (mirror of repro.queue).
_TERMINAL_STATES = ("DONE", "FAILED", "CANCELLED")


class ServiceClient:
    """Talks JSON to a running compilation service endpoint.

    Args:
        base_url: Service root, e.g. ``"http://127.0.0.1:8731"``.
        timeout: Per-request timeout in seconds.  Synchronous
            compilation happens inside the request, so size this to the
            largest job you submit (async submissions return at once
            and are not affected).
        retries: Connection-level retries for idempotent GET requests
            (POSTs are never retried — a submission must not double).
        backoff: Base delay between GET retries; doubles each attempt.
        api_key: Tenant credential sent as the ``X-Repro-Key`` header on
            every request; None (default) makes keyless requests, which
            the server maps to its anonymous tenant.
        trace_id: Request-trace correlation id sent as the
            ``X-Repro-Trace`` header on every request; None (default)
            mints a fresh id at construction, so all of one client's
            requests — and the job records they create, on every
            cluster shard — share one id.
        spans: Optional :class:`~repro.telemetry.SpanRecorder`.  When
            attached, every request records a client-side
            ``client.request`` span under the client's trace id — the
            client end of the waterfall whose server end ``GET
            /trace/<id>`` returns.  None (default) records nothing and
            costs nothing.
    """

    def __init__(self, base_url: str, timeout: float = 300.0, *,
                 retries: int = 3, backoff: float = 0.2,
                 api_key: Optional[str] = None,
                 trace_id: Optional[str] = None,
                 spans: Optional[SpanRecorder] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.api_key = api_key
        self.trace_id = coerce_trace_id(trace_id)
        self.spans = spans

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Mapping[str, object]] = None,
                 raw: bool = False):
        if self.spans is None:
            return self._send(method, path, payload, raw)
        with self.spans.span("client.request", trace_id=self.trace_id,
                             labels={"method": method,
                                     "path": path.partition("?")[0]}):
            return self._send(method, path, payload, raw)

    def _send(self, method: str, path: str,
              payload: Optional[Mapping[str, object]] = None,
              raw: bool = False):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json",
                   TRACE_HEADER: self.trace_id}
        if self.api_key:
            headers["X-Repro-Key"] = self.api_key
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        attempts = 1 + (self.retries if method == "GET" else 0)
        for attempt in range(attempts):
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    body = response.read()
                break
            except urllib.error.HTTPError as error:
                raise self._http_error(path, error) from None
            except urllib.error.URLError as error:
                # Only connection refused/reset retries: those are the
                # restart-in-progress signatures, and only for GETs,
                # which are idempotent against this service.
                transient = isinstance(error.reason, (ConnectionRefusedError,
                                                      ConnectionResetError))
                if transient and attempt + 1 < attempts:
                    time.sleep(self.backoff * (2 ** attempt))
                    continue
                raise ServiceError(
                    f"cannot reach compilation service at {self.base_url}: "
                    f"{error.reason}"
                ) from None
            except (ConnectionError, http.client.HTTPException) as error:
                # A server dying *mid-request* surfaces as a raw socket
                # reset or a half-written HTTP response rather than a
                # URLError; same transient treatment, same GET-only
                # retry (a died long-poll is safe to reissue).
                if method == "GET" and attempt + 1 < attempts:
                    time.sleep(self.backoff * (2 ** attempt))
                    continue
                raise ServiceError(
                    f"connection to {self.base_url} failed mid-request "
                    f"on {path}: {error!r}"
                ) from None
        if raw:
            return body.decode("utf-8")
        try:
            decoded = json.loads(body)
        except ValueError as error:
            raise ServiceError(
                f"{path} returned invalid JSON: {error}"
            ) from None
        if not isinstance(decoded, dict):
            raise ServiceError(f"{path} returned a non-object JSON payload")
        return decoded

    @staticmethod
    def _http_error(path: str,
                    error: urllib.error.HTTPError) -> ServiceError:
        """Rebuild the service-side error as the right client exception.

        The returned exception carries the HTTP status as
        ``http_status``, so callers (e.g. the cluster coordinator) can
        tell a deterministic rejection (4xx: the request is bad on any
        server) from a transport-level failure (no status at all).
        """
        detail = ""
        record: Dict[str, object] = {}
        try:
            payload = json.loads(error.read())
            record = payload["error"]
            detail = record["message"]
        except Exception:
            pass
        suffix = f": {detail}" if detail else ""
        message = f"{path} failed with HTTP {error.code}{suffix}"
        if record.get("type") == "QuotaExceededError":
            rebuilt: ServiceError = QuotaExceededError(
                message, tenant=str(record.get("tenant", "")),
                depth=int(record.get("depth", 0)),
                capacity=int(record.get("capacity", 0)))
        elif record.get("type") == "BackPressureError":
            rebuilt = BackPressureError(
                message, depth=int(record.get("depth", 0)),
                capacity=int(record.get("capacity", 0)))
        elif record.get("type") == "AuthError":
            rebuilt = AuthError(message)
        elif record.get("type") == "UnknownJobError":
            rebuilt = UnknownJobError(message)
        else:
            rebuilt = ServiceError(message)
        rebuilt.http_status = error.code
        return rebuilt

    def _get(self, path: str) -> Dict:
        return self._request("GET", path)

    def _post(self, path: str, payload: Mapping[str, object]) -> Dict:
        return self._request("POST", path, payload)

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        """``GET /health`` payload."""
        return self._get("/health")

    def stats(self) -> Dict:
        """``GET /stats`` payload (session/cache/telemetry counters)."""
        return self._get("/stats")

    def metrics_text(self) -> str:
        """``GET /metrics``: the raw Prometheus text exposition.

        Returned verbatim (not parsed), so a fleet merge or a file dump
        preserves the worker's exact bytes; parse it client-side with
        :func:`repro.telemetry.parse_exposition` when needed.
        """
        return self._request("GET", "/metrics", raw=True)

    def registry(self) -> Dict:
        """``GET /registry`` payload (benchmarks, policies, machines)."""
        return self._get("/registry")

    def trace(self, trace_id: Optional[str] = None) -> Dict:
        """``GET /trace/<id>``: the server's recorded spans for one
        trace (defaults to this client's own trace id)."""
        return self._get(f"/trace/{trace_id or self.trace_id}")

    def logs(self, trace: Optional[str] = None, *,
             tenant: Optional[str] = None,
             level: Optional[str] = None,
             since: Optional[float] = None,
             limit: Optional[int] = None) -> Dict:
        """``GET /logs``: the server's structured events, filtered.

        ``trace`` defaults to this client's own trace id; pass
        ``trace=""`` explicitly to fetch events across all traces.
        Filters compose (AND); ``level`` is a minimum severity.
        """
        if trace is None:
            trace = self.trace_id
        params = []
        if trace:
            params.append(f"trace={trace}")
        if tenant:
            params.append(f"tenant={urllib.parse.quote(tenant)}")
        if level:
            params.append(f"level={level}")
        if since is not None:
            params.append(f"since={since}")
        if limit is not None:
            params.append(f"limit={limit}")
        suffix = f"?{'&'.join(params)}" if params else ""
        return self._get(f"/logs{suffix}")

    # ------------------------------------------------------------------
    def compile_job(self, job: Union[CompileJob, Mapping[str, object]]
                    ) -> Dict:
        """``POST /compile`` one job; returns the raw response payload.

        The payload keeps the provenance flags (``cached``,
        ``disk_hit``) alongside the serialized result or error — use
        :meth:`submit` when only the result matters.
        """
        descriptor = job.to_dict() if isinstance(job, CompileJob) else job
        return self._post("/compile", {"job": descriptor})

    def submit(self, job: Union[CompileJob, Mapping[str, object]]
               ) -> CompilationResult:
        """Compile one job remotely, raising its error on failure."""
        response = self.compile_job(job)
        if not response.get("ok"):
            raise JobFailure.from_dict(response["error"]).to_exception()
        return CompilationResult.from_dict(response["result"])

    def compile(self, benchmark: str,
                machine: Optional[MachineSpec] = None,
                policy: str = "square",
                overrides: Optional[Dict[str, object]] = None,
                **config_overrides) -> CompilationResult:
        """Convenience single compilation, mirroring ``Session.compile``.

        Only registered benchmark names work remotely — in-memory
        programs cannot cross the service boundary.
        """
        job = CompileJob(
            benchmark=benchmark,
            machine=machine or MachineSpec.nisq_autosize(),
            config=preset(policy, **config_overrides),
            overrides=tuple(sorted((overrides or {}).items())),
        )
        return self.submit(job)

    def run(self, work: Union[SweepSpec, Sequence[CompileJob]]
            ) -> SweepResult:
        """Execute a sweep spec or job list remotely, like ``Session.run``.

        Failed jobs come back as failure entries (the service always
        isolates), so one impossible job never loses the rest of the
        batch.
        """
        if isinstance(work, SweepSpec):
            jobs = work.jobs()
            response = self._post("/sweep", {"spec": work.to_dict()})
        else:
            jobs = list(work)
            response = self._post(
                "/sweep", {"jobs": [job.to_dict() for job in jobs]})
        records = response.get("entries")
        if not isinstance(records, list) or len(records) != len(jobs):
            got = len(records) if isinstance(records, list) else "no"
            raise ServiceError(
                f"/sweep returned {got} entries for {len(jobs)} submitted "
                f"job(s)"
            )
        entries: List[SweepEntry] = []
        for job, record in zip(jobs, records):
            if record.get("ok"):
                verification = None
                if record.get("verification") is not None:
                    from repro.verify import VerificationReport

                    verification = VerificationReport.from_dict(
                        record["verification"])
                entries.append(SweepEntry(
                    job=job,
                    result=CompilationResult.from_dict(record["result"]),
                    cached=bool(record.get("cached", False)),
                    disk_hit=bool(record.get("disk_hit", False)),
                    verification=verification,
                ))
            else:
                entries.append(SweepEntry(
                    job=job,
                    result=None,
                    error=JobFailure.from_dict(record["error"]),
                    cached=bool(record.get("cached", False)),
                ))
        return SweepResult(entries)

    # ------------------------------------------------------------------
    # Asynchronous job API
    # ------------------------------------------------------------------
    def submit_async(self,
                     work: Union[CompileJob, SweepSpec,
                                 Sequence[CompileJob], Mapping[str, object]],
                     priority: int = 0,
                     deadline_seconds: Optional[float] = None) -> str:
        """``POST /jobs``: enqueue work, return its ticket id at once.

        Accepts the same shapes as the synchronous surface — a
        :class:`CompileJob` (or raw descriptor), a :class:`SweepSpec`,
        or a job list.  The server replies before compiling anything;
        poll the returned id with :meth:`poll`/:meth:`wait_for`.
        ``deadline_seconds`` declares a time budget the server's
        fair-share scheduler treats as growing urgency.

        Raises:
            QuotaExceededError: This client's tenant is at its
                queued-job cap; other tenants are unaffected.
            BackPressureError: The server queue is full; retry later.
        """
        payload: Dict[str, object]
        if isinstance(work, CompileJob):
            payload = {"job": work.to_dict()}
        elif isinstance(work, SweepSpec):
            payload = {"spec": work.to_dict()}
        elif isinstance(work, Mapping):
            payload = dict(work)
        else:
            payload = {"jobs": [job.to_dict() for job in work]}
        if priority:
            payload["priority"] = priority
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        response = self._post("/jobs", payload)
        job_id = response.get("job_id")
        if not isinstance(job_id, str):
            raise ServiceError(f"/jobs returned no job id: {response}")
        return job_id

    def poll(self, job_id: str) -> Dict:
        """``GET /jobs/<id>``: one status snapshot (result inline once
        DONE, error record once FAILED)."""
        return self._get(f"/jobs/{job_id}")

    def wait_for(self, job_id: str, timeout: Optional[float] = None,
                 interval: float = 0.05, max_interval: float = 2.0) -> Dict:
        """Poll until the job is terminal; returns the final record.

        The poll interval backs off adaptively: it starts at
        ``interval`` and grows geometrically to ``max_interval``, so a
        quick job is noticed within milliseconds while a long
        compilation costs the server a few polls per second at most.

        Args:
            job_id: Ticket from :meth:`submit_async`.
            timeout: Give up (with :class:`ServiceError`) after this
                many seconds; None waits forever.
            interval: Initial seconds between polls.
            max_interval: Ceiling the growing interval never exceeds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = max(0.0, interval)
        while True:
            record = self.poll(job_id)
            if record.get("state") in _TERMINAL_STATES:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for {job_id} "
                    f"(state={record.get('state')})")
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            time.sleep(delay)
            delay = min(max(delay, 0.001) * 1.6, max_interval)

    def entries_since(self, job_id: str, since: int = 0,
                      poll_timeout: Optional[float] = None) -> Dict:
        """``GET /jobs/<id>/entries``: one long-poll for the entry stream.

        Returns the raw payload: ``entries`` past the ``since`` cursor,
        the job ``state`` (terminal means the slice completes the
        stream) and ``next``, the cursor to resume from.
        """
        suffix = f"/jobs/{job_id}/entries?since={since}"
        if poll_timeout is not None:
            suffix += f"&timeout={poll_timeout}"
        return self._get(suffix)

    def iter_entries(self, job_id: str, since: int = 0,
                     timeout: Optional[float] = None,
                     poll_timeout: float = 10.0):
        """Stream a job's per-entry results as the server finishes them.

        Yields ``(index, record)`` pairs in entry order, long-polling
        ``GET /jobs/<id>/entries`` under the hood; the generator ends
        when the job reaches a terminal state, after every published
        entry has been yielded exactly once.  For a sweep submitted as N
        jobs, entry ``index`` corresponds to the N-th submitted job, so
        the first results arrive long before the batch completes.

        Check the job's final state with :meth:`poll` afterwards when it
        matters: a FAILED or CANCELLED job ends the stream the same way,
        just with fewer entries than submitted jobs.

        Args:
            job_id: Ticket from :meth:`submit_async`.
            since: Entry cursor to start from (0 = first entry).
            timeout: Overall deadline in seconds; ``ServiceError`` when
                exceeded.  None streams until the job is terminal.
            poll_timeout: Seconds each underlying long-poll is allowed
                to park on the server before returning empty-handed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = since
        while True:
            # Clamp each long-poll to the remaining budget so the
            # overall timeout cannot overshoot by a poll_timeout.
            park = poll_timeout
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"timed out after {timeout}s streaming entries "
                        f"of {job_id} (got {cursor - since} so far)")
                park = min(poll_timeout, remaining)
            payload = self.entries_since(job_id, since=cursor,
                                         poll_timeout=park)
            records = payload.get("entries")
            if not isinstance(records, list):
                raise ServiceError(
                    f"/jobs/{job_id}/entries returned no entry list: "
                    f"{payload}")
            for record in records:
                yield cursor, record
                cursor += 1
            if payload.get("state") in _TERMINAL_STATES:
                return

    def result_of(self, job_id: str, timeout: Optional[float] = None) -> Dict:
        """Wait for a job and unwrap its response payload.

        DONE jobs return the same payload the synchronous endpoint
        would have (``/compile`` or ``/sweep`` shape); FAILED jobs
        re-raise their original library exception; CANCELLED jobs raise
        :class:`ServiceError`.
        """
        record = self.wait_for(job_id, timeout=timeout)
        state = record.get("state")
        if state == "DONE":
            return record["response"]
        if state == "FAILED" and isinstance(record.get("error"), dict):
            raise JobFailure.from_dict(record["error"]).to_exception()
        raise ServiceError(f"job {job_id} ended {state} without a result")

    def cancel(self, job_id: str) -> Dict:
        """``POST /jobs/<id>/cancel``: cancel a still-queued job.

        Returns the cancellation record; ``record["cancelled"]`` is
        False when the job had already started (or finished).
        """
        return self._post(f"/jobs/{job_id}/cancel", {})

    def jobs(self, state: Optional[str] = None,
             limit: Optional[int] = None) -> List[Dict]:
        """``GET /jobs``: job records, filtered server-side.

        Args:
            state: Keep only records in this lifecycle state.
            limit: Keep only the most recently submitted ``limit``
                records (applied after the state filter).
        """
        params = []
        if state:
            # Sent as `state=`: both the old filter name and the new
            # `status=` alias parse on 1.2+ servers, but only `state=`
            # is understood by pre-1.2 servers in a mixed-version fleet.
            params.append(f"state={state}")
        if limit is not None:
            params.append(f"limit={limit}")
        suffix = f"?{'&'.join(params)}" if params else ""
        response = self._get(f"/jobs{suffix}")
        records = response.get("jobs")
        if not isinstance(records, list):
            raise ServiceError(f"/jobs returned no record list: {response}")
        return records

    def __repr__(self) -> str:
        return f"ServiceClient(base_url={self.base_url!r})"
