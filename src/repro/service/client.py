"""Thin HTTP client for the compilation service.

:class:`ServiceClient` mirrors the :class:`~repro.api.session.Session`
surface — ``compile``/``submit``/``run`` — but executes on a remote
service, so an experiment script can switch between in-process and
remote compilation by swapping one object::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8731")
    result = client.compile("RD53", policy="square")
    sweep = client.run(SweepSpec().with_benchmarks("RD53", "ADDER4"))

Pure stdlib (``urllib``).  Transport and protocol problems raise
:class:`~repro.exceptions.ServiceError`; a job that failed on the server
re-raises client-side as its original library exception type (via
:meth:`~repro.core.result.JobFailure.to_exception`), exactly like a
local session would.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.exceptions import ServiceError
from repro.api.job import CompileJob, MachineSpec
from repro.api.sweep import SweepEntry, SweepResult, SweepSpec
from repro.core.compiler import preset
from repro.core.result import CompilationResult, JobFailure


class ServiceClient:
    """Talks JSON to a running compilation service endpoint.

    Args:
        base_url: Service root, e.g. ``"http://127.0.0.1:8731"``.
        timeout: Per-request timeout in seconds.  Compilation happens
            synchronously inside the request, so size this to the
            largest job you submit.
    """

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Mapping[str, object]] = None) -> Dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as error:
            raise ServiceError(self._http_error_message(path, error)) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach compilation service at {self.base_url}: "
                f"{error.reason}"
            ) from None
        try:
            decoded = json.loads(body)
        except ValueError as error:
            raise ServiceError(
                f"{path} returned invalid JSON: {error}"
            ) from None
        if not isinstance(decoded, dict):
            raise ServiceError(f"{path} returned a non-object JSON payload")
        return decoded

    @staticmethod
    def _http_error_message(path: str, error: urllib.error.HTTPError) -> str:
        detail = ""
        try:
            payload = json.loads(error.read())
            detail = payload["error"]["message"]
        except Exception:
            pass
        suffix = f": {detail}" if detail else ""
        return f"{path} failed with HTTP {error.code}{suffix}"

    def _get(self, path: str) -> Dict:
        return self._request("GET", path)

    def _post(self, path: str, payload: Mapping[str, object]) -> Dict:
        return self._request("POST", path, payload)

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        """``GET /health`` payload."""
        return self._get("/health")

    def stats(self) -> Dict:
        """``GET /stats`` payload (session/cache/telemetry counters)."""
        return self._get("/stats")

    def registry(self) -> Dict:
        """``GET /registry`` payload (benchmarks, policies, machines)."""
        return self._get("/registry")

    # ------------------------------------------------------------------
    def compile_job(self, job: Union[CompileJob, Mapping[str, object]]
                    ) -> Dict:
        """``POST /compile`` one job; returns the raw response payload.

        The payload keeps the provenance flags (``cached``,
        ``disk_hit``) alongside the serialized result or error — use
        :meth:`submit` when only the result matters.
        """
        descriptor = job.to_dict() if isinstance(job, CompileJob) else job
        return self._post("/compile", {"job": descriptor})

    def submit(self, job: Union[CompileJob, Mapping[str, object]]
               ) -> CompilationResult:
        """Compile one job remotely, raising its error on failure."""
        response = self.compile_job(job)
        if not response.get("ok"):
            raise JobFailure.from_dict(response["error"]).to_exception()
        return CompilationResult.from_dict(response["result"])

    def compile(self, benchmark: str,
                machine: Optional[MachineSpec] = None,
                policy: str = "square",
                overrides: Optional[Dict[str, object]] = None,
                **config_overrides) -> CompilationResult:
        """Convenience single compilation, mirroring ``Session.compile``.

        Only registered benchmark names work remotely — in-memory
        programs cannot cross the service boundary.
        """
        job = CompileJob(
            benchmark=benchmark,
            machine=machine or MachineSpec.nisq_autosize(),
            config=preset(policy, **config_overrides),
            overrides=tuple(sorted((overrides or {}).items())),
        )
        return self.submit(job)

    def run(self, work: Union[SweepSpec, Sequence[CompileJob]]
            ) -> SweepResult:
        """Execute a sweep spec or job list remotely, like ``Session.run``.

        Failed jobs come back as failure entries (the service always
        isolates), so one impossible job never loses the rest of the
        batch.
        """
        if isinstance(work, SweepSpec):
            jobs = work.jobs()
            response = self._post("/sweep", {"spec": work.to_dict()})
        else:
            jobs = list(work)
            response = self._post(
                "/sweep", {"jobs": [job.to_dict() for job in jobs]})
        records = response.get("entries")
        if not isinstance(records, list) or len(records) != len(jobs):
            got = len(records) if isinstance(records, list) else "no"
            raise ServiceError(
                f"/sweep returned {got} entries for {len(jobs)} submitted "
                f"job(s)"
            )
        entries: List[SweepEntry] = []
        for job, record in zip(jobs, records):
            if record.get("ok"):
                entries.append(SweepEntry(
                    job=job,
                    result=CompilationResult.from_dict(record["result"]),
                    cached=bool(record.get("cached", False)),
                ))
            else:
                entries.append(SweepEntry(
                    job=job,
                    result=None,
                    error=JobFailure.from_dict(record["error"]),
                    cached=bool(record.get("cached", False)),
                ))
        return SweepResult(entries)

    def __repr__(self) -> str:
        return f"ServiceClient(base_url={self.base_url!r})"
