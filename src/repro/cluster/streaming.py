"""Shard stream consumption: one thread per worker, entries as they land.

A :class:`ShardConsumer` owns the client side of one submitted shard: it
iterates the worker's ``GET /jobs/<id>/entries`` long-poll stream
(:meth:`~repro.service.client.ServiceClient.iter_entries`), reports each
record upward the moment it arrives, and classifies how the stream ended
— completed, job failed/cancelled server-side, or transport death.  The
coordinator runs one consumer thread per shard and re-dispatches
whatever a dead or unfinished shard left behind.

The crucial accounting rule: ``received`` counts entries actually
*delivered to this process*.  A worker may have compiled further entries
before dying, but anything not received is treated as unfinished and
re-dispatched — duplicating a little deterministic work is safe (equal
fingerprints mean equal results), losing entries is not.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Tuple

from repro.exceptions import ServiceError
from repro.api.job import CompileJob
from repro.cluster.topology import WorkerEndpoint

#: Stream outcome classifications.
COMPLETED = "completed"      # job DONE, every shard entry received
UNFINISHED = "unfinished"    # job ended FAILED/CANCELLED with entries missing
DIED = "died"                # transport to the worker failed mid-stream
CRASHED = "crashed"          # non-transport exception (e.g. callback bug)


class ShardConsumer:
    """Consumes one shard's entry stream on a dedicated thread.

    Args:
        endpoint: The worker serving the shard.
        job_id: Ticket of the submitted shard sweep.
        shard: The ``(fingerprint, job)`` pairs submitted, in order —
            entry ``i`` of the stream corresponds to ``shard[i]``.
        on_record: ``on_record(fingerprint, job, record)`` called for
            every received entry, from this consumer's thread; the
            callee handles its own locking.
        poll_timeout: Per-long-poll server park time, seconds.
        timeout: Overall per-shard streaming deadline, seconds.
    """

    def __init__(self, endpoint: WorkerEndpoint, job_id: str,
                 shard: List[Tuple[str, CompileJob]],
                 on_record: Callable[[str, CompileJob, dict], None], *,
                 poll_timeout: float = 10.0,
                 timeout: Optional[float] = None) -> None:
        self.endpoint = endpoint
        self.job_id = job_id
        self.shard = list(shard)
        self.on_record = on_record
        self.poll_timeout = poll_timeout
        self.timeout = timeout
        self.received = 0
        self.outcome: Optional[str] = None
        self.error: Optional[str] = None
        self.exception: Optional[BaseException] = None
        self.final_state: Optional[str] = None
        self._thread = threading.Thread(
            target=self._consume, daemon=True,
            name=f"repro-cluster-{endpoint.url.rsplit(':', 1)[-1]}")

    # ------------------------------------------------------------------
    def start(self) -> "ShardConsumer":
        self._thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    def unfinished(self) -> List[Tuple[str, CompileJob]]:
        """The shard suffix never received — what must re-dispatch."""
        return self.shard[self.received:]

    # ------------------------------------------------------------------
    def _consume(self) -> None:
        client = self.endpoint.client
        try:
            for index, record in client.iter_entries(
                    self.job_id, timeout=self.timeout,
                    poll_timeout=self.poll_timeout):
                if index >= len(self.shard):
                    raise ServiceError(
                        f"worker {self.endpoint.url} streamed entry "
                        f"{index} for a {len(self.shard)}-job shard")
                fingerprint, job = self.shard[index]
                self.received = index + 1
                self.on_record(fingerprint, job, record)
            if self.received == len(self.shard):
                # The stream only ends on a terminal state, and a sweep
                # that delivered every entry can only have ended DONE —
                # no follow-up poll whose transient failure would
                # misclassify a healthy worker as dead.
                self.final_state = "DONE"
                self.outcome = COMPLETED
                return
            # Under-delivered: one poll to learn why (FAILED/CANCELLED
            # server-side); a failure here is genuine unreachability.
            self.final_state = client.poll(self.job_id).get("state")
        except ServiceError as error:
            self.outcome = DIED
            self.error = str(error)
            return
        except Exception as error:
            # Not a transport problem — e.g. the caller's on_record
            # callback raised, or a record failed to deserialize.
            # Re-dispatching would just hit it again; keep the original
            # exception so the coordinator can surface it to the caller.
            self.outcome = CRASHED
            self.error = repr(error)
            self.exception = error
            return
        # The un-received suffix is re-dispatched either way.
        self.outcome = UNFINISHED
        self.error = f"shard ended {self.final_state} after " \
                     f"{self.received}/{len(self.shard)} entries"

    def __repr__(self) -> str:
        return (f"ShardConsumer(endpoint={self.endpoint.url!r}, "
                f"job_id={self.job_id!r}, received={self.received}/"
                f"{len(self.shard)}, outcome={self.outcome})")
