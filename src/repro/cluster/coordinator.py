"""The cluster coordinator: one sweep, many compile servers.

:class:`ClusterCoordinator` takes the same work a
:class:`~repro.api.session.Session` does — a
:class:`~repro.api.sweep.SweepSpec` or an explicit job list — and
executes it across a fleet of compile servers:

1. **Expand + dedup**: the sweep expands to its ordered job list; jobs
   sharing a fingerprint compile once cluster-wide.
2. **Shard**: unique jobs partition across live endpoints by rendezvous
   fingerprint hashing (:mod:`repro.cluster.sharding`), so repeated
   sweeps land on the same servers' warm disk caches; endpoint
   ``weight=`` factors in, so a heterogeneous fleet shards
   proportionally to capacity.
3. **Submit + stream**: each shard goes up as one async ``POST /jobs``
   sweep; a :class:`~repro.cluster.streaming.ShardConsumer` thread per
   shard long-polls ``GET /jobs/<id>/entries``, handing every entry to
   the caller's ``on_entry`` callback the moment it lands — the first
   results arrive while most of the batch is still compiling.
4. **Heal**: a worker that dies mid-stream (transport failure) or
   rejects its shard with 503 back-pressure has its unfinished jobs
   re-dispatched to the surviving endpoints on the next round.  A
   worker whose shard job *fails server-side* (FAILED/CANCELLED with
   entries missing) keeps its delivered entries, but the remainder is
   retried on an **alternate** worker — the failing endpoint is
   excluded from the next dispatch round, so a server with a sick
   queue cannot eat the same jobs round after round.
   :class:`~repro.exceptions.ClusterError` is raised only when no live
   workers remain or the round budget runs out.
5. **Merge deterministically**: results key by fingerprint and the final
   :class:`~repro.api.sweep.SweepResult` is assembled in original job
   order with session-identical cached/disk-hit accounting, so a
   cluster sweep exports byte-identical JSON/CSV to the same sweep run
   serially in one session.

Job-level failures are *not* cluster failures: an impossible machine
comes back as a structured failure entry from whichever worker ran it,
exactly as in a single-server sweep.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import (
    BackPressureError,
    ClusterError,
    ServiceError,
    UnknownJobError,
)
from repro.api.job import CompileJob
from repro.api.sweep import SweepEntry, SweepResult, SweepSpec
from repro.cluster.sharding import shard_jobs
from repro.cluster.streaming import (
    COMPLETED,
    CRASHED,
    DIED,
    UNFINISHED,
    ShardConsumer,
)
from repro.cluster.topology import ClusterTopology, WorkerEndpoint
from repro.core.result import CompilationResult, JobFailure
from repro.telemetry import EventLog

#: ``on_entry`` callback: (first original index, entry) per unique job.
EntryCallback = Callable[[int, SweepEntry], None]


class ClusterCoordinator:
    """Drives a sweep across a fleet of compile-service endpoints.

    Args:
        endpoints: Worker service roots (URLs or
            :class:`~repro.cluster.topology.WorkerEndpoint` records); at
            least one.
        client_factory: ``factory(url) -> client`` override for building
            endpoint clients — the seam deterministic failure tests
            inject fake workers through.
        api_key: Tenant credential forwarded to every shard as the
            ``X-Repro-Key`` header, so a cluster sweep runs as one
            principal fleet-wide (each worker resolves the key against
            its own registry); None makes keyless (anonymous) requests.
        trace_id: Trace id forwarded to every shard as the
            ``X-Repro-Trace`` header, so one sweep's job records share
            an id fleet-wide; None mints one per endpoint client.
        poll_timeout: Per-long-poll park time for entry streams.
        shard_timeout: Overall per-shard streaming deadline, seconds.
        max_rounds: Dispatch-round budget; None sizes it to the fleet
            (two healing opportunities per endpoint, minimum 4).
        retry_delay: Pause before a round that only exists because every
            usable endpoint back-pressured, giving queues time to drain.
    """

    def __init__(self,
                 endpoints: Sequence[Union[str, WorkerEndpoint]], *,
                 client_factory=None,
                 api_key: Optional[str] = None,
                 trace_id: Optional[str] = None,
                 poll_timeout: float = 10.0,
                 shard_timeout: Optional[float] = None,
                 max_rounds: Optional[int] = None,
                 retry_delay: float = 0.2) -> None:
        self.topology = ClusterTopology(endpoints,
                                        client_factory=client_factory,
                                        api_key=api_key,
                                        trace_id=trace_id)
        self.poll_timeout = poll_timeout
        self.shard_timeout = shard_timeout
        self.max_rounds = max_rounds or max(4, 2 * len(self.topology))
        self.retry_delay = retry_delay
        self.rounds_run = 0
        self.redispatched_jobs = 0
        self.shed_jobs = 0
        self.failed_shard_retries = 0
        #: Coordinator-local event log: dispatch rounds, sheds, worker
        #: deaths, and failed-shard retries, correlated to the sweep's
        #: fleet-wide trace id.  Worker-side events are collected
        #: separately via :meth:`collect_logs`.
        self.events = EventLog()

    # ------------------------------------------------------------------
    def run(self, work: Union[SweepSpec, Sequence[CompileJob]], *,
            on_entry: Optional[EntryCallback] = None,
            probe: bool = True) -> SweepResult:
        """Execute a sweep across the fleet; returns the merged result.

        Args:
            work: A :class:`~repro.api.sweep.SweepSpec` or explicit job
                list (benchmark jobs only — in-memory programs cannot
                cross the service boundary).
            on_entry: Streaming callback fired once per unique job as
                its entry arrives, with the job's first index in the
                original order; called from consumer threads (one at a
                time — the coordinator serializes it).
            probe: Health-probe the fleet before dispatching (skips
                known-dead endpoints without burning a round on them).

        Raises:
            ClusterError: No live endpoints, or the round budget ran
                out with jobs still unfinished.
            ExperimentError: ``work`` contains in-memory program jobs.
        """
        jobs = work.jobs() if isinstance(work, SweepSpec) else list(work)
        if not jobs:
            return SweepResult([])
        fingerprints = [job.fingerprint() for job in jobs]
        for job in jobs:
            job.to_dict()  # fail fast on unserializable program jobs

        # Unique work in first-occurrence order; duplicates merge back
        # as cache hits, mirroring Session's in-batch dedup.
        unique: "OrderedDict[str, CompileJob]" = OrderedDict()
        first_index: Dict[str, int] = {}
        for index, (job, fingerprint) in enumerate(zip(jobs, fingerprints)):
            if fingerprint not in unique:
                unique[fingerprint] = job
                first_index[fingerprint] = index

        if probe:
            self.topology.probe_all()

        results: Dict[str, dict] = {}
        callback_lock = threading.Lock()

        def record_result(fingerprint: str, job: CompileJob,
                          record: dict) -> None:
            with callback_lock:
                if fingerprint in results:
                    return  # a re-dispatched duplicate landed twice
                results[fingerprint] = record
                if on_entry is not None:
                    on_entry(first_index[fingerprint],
                             self._build_entry(job, record, cached=None))

        pending: List[Tuple[str, CompileJob]] = list(unique.items())
        rounds = 0
        while pending:
            rounds += 1
            self.rounds_run += 1
            if rounds > self.max_rounds:
                raise ClusterError(
                    f"sweep incomplete after {self.max_rounds} dispatch "
                    f"round(s): {len(pending)} of {len(unique)} job(s) "
                    f"unfinished; cluster: {self.topology.stats()}")
            pending, saturated_only = self._dispatch_round(
                pending, record_result, exclude=frozenset()
                if rounds == 1
                else self._last_saturated | self._last_failed)
            if pending and saturated_only:
                time.sleep(self.retry_delay)

        return self._merge(jobs, fingerprints, results)

    # ------------------------------------------------------------------
    def _dispatch_round(self, pending: List[Tuple[str, CompileJob]],
                        record_result, exclude: frozenset
                        ) -> Tuple[List[Tuple[str, CompileJob]], bool]:
        """One shard/submit/stream round; returns (still pending, bool
        "the only obstacle this round was back-pressure")."""
        alive = self.topology.alive()
        if not alive:
            raise ClusterError(
                f"no live worker endpoints remain "
                f"({len(pending)} job(s) unfinished); "
                f"cluster: {self.topology.stats()}")
        # Endpoints that back-pressured (or failed their shard job)
        # last round shed to siblings this round — unless that would
        # leave nobody to dispatch to.  Weights flow into the
        # rendezvous hash, so heterogeneous fleets shard by capacity.
        usable = [endpoint for endpoint in alive
                  if endpoint.url not in exclude] or alive
        shards = shard_jobs(pending, {endpoint.url: endpoint.weight
                                      for endpoint in usable})
        self.events.info(
            "dispatch round", component="cluster",
            trace_id=self.trace_id,
            fields={"round": self.rounds_run, "pending": len(pending),
                    "workers": len(usable)})

        consumers: List[ShardConsumer] = []
        saturated: set = set()
        died_at_submit = False
        fatal: Optional[BaseException] = None
        for url, shard in shards.items():
            if fatal is not None:
                break  # don't submit work whose results will be thrown away
            endpoint = self.topology.get(url)
            descriptors = [job.to_dict() for _, job in shard]
            try:
                job_id = endpoint.client.submit_async({"jobs": descriptors})
            except BackPressureError:
                saturated.add(endpoint.url)
                self.shed_jobs += len(shard)
                self.events.warning(
                    "shard shed: worker back-pressure", component="cluster",
                    trace_id=self.trace_id,
                    fields={"worker": endpoint.url, "jobs": len(shard)})
                continue  # shard re-dispatches to siblings next round
            except (UnknownJobError, ServiceError) as error:
                status = getattr(error, "http_status", None)
                if status is not None and 400 <= status < 500:
                    # A deterministic rejection (e.g. a benchmark or
                    # policy registered here but not on the workers):
                    # every server would answer the same, so marking
                    # the endpoint dead and re-dispatching would only
                    # cascade.  Surface the real message — after the
                    # already-started consumers drain, so the caller's
                    # on_entry never fires after run() has raised.
                    fatal = fatal or ClusterError(
                        f"worker {endpoint.url} rejected the shard "
                        f"submission: {error}")
                    continue
                self.topology.mark_dead(
                    endpoint, f"shard submission failed: {error}")
                self.events.warning(
                    "worker marked dead: shard submission failed",
                    component="cluster", trace_id=self.trace_id,
                    fields={"worker": endpoint.url, "jobs": len(shard),
                            "error": str(error)})
                died_at_submit = True
                continue
            consumers.append(ShardConsumer(
                endpoint, job_id, shard, record_result,
                poll_timeout=self.poll_timeout,
                timeout=self.shard_timeout).start())

        completed: set = set()
        failed_shard: set = set()
        for consumer in consumers:
            consumer.join()
            if consumer.outcome == COMPLETED:
                completed.update(
                    fingerprint for fingerprint, _ in consumer.shard)
                continue
            completed.update(fingerprint for fingerprint, _
                             in consumer.shard[:consumer.received])
            self.redispatched_jobs += len(consumer.unfinished())
            if consumer.outcome == DIED:
                self.topology.mark_dead(
                    consumer.endpoint,
                    f"entry stream died: {consumer.error}")
                self.events.warning(
                    "worker marked dead: entry stream died",
                    component="cluster", trace_id=self.trace_id,
                    fields={"worker": consumer.endpoint.url,
                            "unfinished": len(consumer.unfinished()),
                            "error": str(consumer.error)})
            elif consumer.outcome == UNFINISHED:
                # The worker is reachable but its shard job ended
                # FAILED/CANCELLED server-side.  Retry the remainder on
                # an *alternate* worker: excluding this endpoint from
                # the next round re-routes the jobs instead of handing
                # them straight back to the same sick queue.
                failed_shard.add(consumer.endpoint.url)
                self.failed_shard_retries += len(consumer.unfinished())
                self.events.warning(
                    "shard failed server-side; retrying on alternates",
                    component="cluster", trace_id=self.trace_id,
                    fields={"worker": consumer.endpoint.url,
                            "unfinished": len(consumer.unfinished())})
            elif consumer.outcome == CRASHED:
                # Not the worker's fault (typically the caller's
                # on_entry raising); re-raise the original exception
                # instead of burning healing rounds on it.
                fatal = fatal or consumer.exception
        if fatal is not None:
            raise fatal

        self._last_saturated = frozenset(saturated)
        self._last_failed = frozenset(failed_shard)
        still_pending = [(fingerprint, job) for fingerprint, job in pending
                         if fingerprint not in completed]
        saturated_only = bool(saturated) and not died_at_submit \
            and all(consumer.outcome == COMPLETED for consumer in consumers)
        return still_pending, saturated_only

    #: Endpoints that 503'd in the previous round (shed next round).
    _last_saturated: frozenset = frozenset()

    #: Endpoints whose shard job failed server-side in the previous
    #: round (their retried jobs go to alternates next round).
    _last_failed: frozenset = frozenset()

    # ------------------------------------------------------------------
    @staticmethod
    def _build_entry(job: CompileJob, record: dict,
                     cached: Optional[bool]) -> SweepEntry:
        """Rebuild one wire record as a SweepEntry.

        ``cached=None`` keeps the worker-reported provenance flags;
        an explicit value overrides them (used by the merge step to
        credit duplicate jobs as cache hits, exactly like a session).
        """
        if record.get("ok"):
            verification = None
            if record.get("verification") is not None:
                from repro.verify import VerificationReport

                verification = VerificationReport.from_dict(
                    record["verification"])
            return SweepEntry(
                job=job,
                result=CompilationResult.from_dict(record["result"]),
                cached=bool(record.get("cached", False))
                if cached is None else cached,
                disk_hit=bool(record.get("disk_hit", False))
                if cached is None else False,
                verification=verification,
            )
        return SweepEntry(
            job=job,
            result=None,
            error=JobFailure.from_dict(record["error"]),
            cached=False,
        )

    def _merge(self, jobs: Sequence[CompileJob],
               fingerprints: Sequence[str],
               results: Dict[str, dict]) -> SweepResult:
        """Assemble the final result in original job order.

        First occurrence of each fingerprint keeps the worker-reported
        provenance; repeats count as cache hits with no disk credit —
        the same accounting a serial session produces, so exports are
        byte-identical.
        """
        entries: List[SweepEntry] = []
        seen: set = set()
        for job, fingerprint in zip(jobs, fingerprints):
            record = results.get(fingerprint)
            if record is None:  # pragma: no cover - run() guarantees it
                raise ClusterError(
                    f"merge is missing a result for {job.program_label} "
                    f"({fingerprint[:12]}...)")
            repeat = fingerprint in seen and record.get("ok")
            entries.append(self._build_entry(
                job, record, cached=True if repeat else None))
            seen.add(fingerprint)
        return SweepResult(entries)

    @property
    def trace_id(self) -> str:
        """The trace id every shard of this coordinator's fan-outs
        carries (minted by the topology when the caller passed none)."""
        return self.topology.trace_id

    def collect_trace(self,
                      trace_id: Optional[str] = None) -> Dict[str, object]:
        """Collect and merge the fleet's span records for one trace.

        Defaults to the coordinator's own :attr:`trace_id` — i.e. "the
        waterfall of the sweeps this coordinator ran".  See
        :meth:`~repro.cluster.topology.ClusterTopology.fleet_trace` for
        the merge semantics (per-worker labels, deterministic order,
        unreachable workers reported rather than dropped).
        """
        return self.topology.fleet_trace(trace_id)

    def collect_logs(self, trace_id: Optional[str] = None, *,
                     tenant: Optional[str] = None,
                     level: Optional[str] = None,
                     since: Optional[float] = None,
                     limit: Optional[int] = None) -> Dict[str, object]:
        """Collect and merge the fleet's log events for one trace.

        Defaults to the coordinator's own :attr:`trace_id` — i.e. "the
        event narrative of the sweeps this coordinator ran".  See
        :meth:`~repro.cluster.topology.ClusterTopology.fleet_logs` for
        the merge semantics (``worker=`` tags, ``(worker, event_id)``
        dedup, deterministic ``(ts, event_id)`` order, unreachable
        workers reported rather than dropped).  Coordinator-local
        events (dispatch/shed/heal) live in :attr:`events` and are not
        part of the fleet merge.
        """
        return self.topology.fleet_logs(trace_id, tenant=tenant,
                                        level=level, since=since,
                                        limit=limit)

    def stats(self) -> Dict[str, object]:
        """JSON-compatible coordinator + fleet telemetry."""
        return {
            "topology": self.topology.stats(),
            "rounds_run": self.rounds_run,
            "redispatched_jobs": self.redispatched_jobs,
            "shed_jobs": self.shed_jobs,
            "failed_shard_retries": self.failed_shard_retries,
            "max_rounds": self.max_rounds,
            "events": self.events.stats(),
        }

    def __repr__(self) -> str:
        return (f"ClusterCoordinator(endpoints={len(self.topology)}, "
                f"alive={len(self.topology.alive())}, "
                f"rounds_run={self.rounds_run})")


def cluster_sweep(endpoints: Sequence[str],
                  work: Union[SweepSpec, Sequence[CompileJob]], *,
                  on_entry: Optional[EntryCallback] = None) -> SweepResult:
    """One-shot convenience: build a coordinator, run one sweep."""
    return ClusterCoordinator(endpoints).run(work, on_entry=on_entry)
