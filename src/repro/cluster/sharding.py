"""Deterministic job-to-worker assignment by fingerprint hashing.

Jobs are assigned to worker endpoints with rendezvous (highest-random-
weight) hashing over the pair ``(job fingerprint, endpoint key)``:

* **Deterministic** — the same fingerprint against the same endpoint set
  always lands on the same endpoint, in any process, with no shared
  state.  Repeated sweeps therefore hit the same server's warm
  :class:`~repro.service.cache.DiskCache` instead of recompiling
  elsewhere.
* **Stable under membership change** — when an endpoint dies, only *its*
  jobs move (each to its second-choice endpoint); jobs on surviving
  endpoints stay put, so a re-dispatch round never invalidates the
  survivors' cache affinity.

The hash is :func:`hashlib.sha256` over ``"<fingerprint>|<endpoint>"``
— no process salt, unlike builtin ``hash()`` — so coordinator restarts
and independent coordinators agree on the placement.

Heterogeneous fleets can weight endpoints: pass a ``{key: weight}``
mapping instead of a key sequence and placement follows *weighted*
rendezvous hashing (score ``-weight / ln(u)`` with ``u`` the pair's
hash mapped into ``(0, 1)``), so a worker with weight 2 draws about
twice the jobs of a weight-1 sibling in expectation while keeping
every rendezvous property above.  Uniform weights reduce to exactly
the unweighted placement (the score is a monotonic transform of the
raw hash), so existing cache layouts survive the upgrade.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.exceptions import ClusterError
from repro.api.job import CompileJob

#: Endpoints for sharding: bare keys (uniform weights) or key -> weight.
EndpointKeys = Union[Sequence[str], Mapping[str, float]]


def shard_weight(fingerprint: str, endpoint_key: str) -> int:
    """Rendezvous weight of one (job, endpoint) pair."""
    digest = hashlib.sha256(
        f"{fingerprint}|{endpoint_key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_score(fingerprint: str, endpoint_key: str,
                weight: float = 1.0) -> float:
    """Weighted rendezvous score of one (job, endpoint) pair.

    The raw 64-bit hash maps to a uniform ``u`` in (0, 1) and the score
    is ``-weight / ln(u)`` — the standard weighted-rendezvous transform:
    strictly increasing in the hash (so ``weight=1`` ranks identically
    to :func:`shard_weight`) and winning proportionally to ``weight``
    in expectation.

    Raises:
        ClusterError: ``weight`` is not > 0 (a zero-weight endpoint
            should simply be left out of the key set).
    """
    if not weight > 0:
        raise ClusterError(
            f"endpoint {endpoint_key!r} has non-positive shard weight "
            f"{weight!r}; weights must be > 0")
    u = (shard_weight(fingerprint, endpoint_key) + 0.5) / (1 << 64)
    return -weight / math.log(u)


def _weighted(endpoints: EndpointKeys) -> Dict[str, float]:
    """Normalise an endpoint collection to an ordered key -> weight map."""
    if isinstance(endpoints, Mapping):
        return dict(endpoints)
    return {key: 1.0 for key in endpoints}


def assign_endpoint(fingerprint: str,
                    endpoints: EndpointKeys) -> str:
    """The endpoint a fingerprint lands on: highest rendezvous score.

    Args:
        endpoints: Endpoint keys, or a ``{key: weight}`` mapping for
            heterogeneous fleets (weights must be > 0).

    Ties (astronomically unlikely with a 64-bit hash) break toward the
    lexicographically smallest endpoint key, keeping the choice
    deterministic either way.
    """
    weighted = _weighted(endpoints)
    if not weighted:
        raise ClusterError("cannot assign a job: no worker endpoints")
    return max(sorted(weighted),
               key=lambda key: shard_score(fingerprint, key,
                                           weighted[key]))


def shard_jobs(jobs: Sequence[Tuple[str, CompileJob]],
               endpoints: EndpointKeys
               ) -> "OrderedDict[str, List[Tuple[str, CompileJob]]]":
    """Partition ``(fingerprint, job)`` pairs across endpoints.

    Returns an ordered mapping of endpoint key to its shard, with
    endpoints in the order given and each shard preserving the input
    job order — the deterministic layout the coordinator's merge step
    relies on.  Endpoints drawing no jobs are omitted.  A ``{key:
    weight}`` mapping shards proportionally to capacity (see
    :func:`shard_score`).
    """
    weighted = _weighted(endpoints)
    shards: "OrderedDict[str, List[Tuple[str, CompileJob]]]" = OrderedDict()
    for key in weighted:
        shards[key] = []
    for fingerprint, job in jobs:
        shards[assign_endpoint(fingerprint, weighted)].append(
            (fingerprint, job))
    for key in [key for key, shard in shards.items() if not shard]:
        del shards[key]
    return shards


def shard_counts(shards: Dict[str, List]) -> Dict[str, int]:
    """Shard sizes keyed by endpoint — telemetry/log helper."""
    return {key: len(shard) for key, shard in shards.items()}
