"""Deterministic job-to-worker assignment by fingerprint hashing.

Jobs are assigned to worker endpoints with rendezvous (highest-random-
weight) hashing over the pair ``(job fingerprint, endpoint key)``:

* **Deterministic** — the same fingerprint against the same endpoint set
  always lands on the same endpoint, in any process, with no shared
  state.  Repeated sweeps therefore hit the same server's warm
  :class:`~repro.service.cache.DiskCache` instead of recompiling
  elsewhere.
* **Stable under membership change** — when an endpoint dies, only *its*
  jobs move (each to its second-choice endpoint); jobs on surviving
  endpoints stay put, so a re-dispatch round never invalidates the
  survivors' cache affinity.

The hash is :func:`hashlib.sha256` over ``"<fingerprint>|<endpoint>"``
— no process salt, unlike builtin ``hash()`` — so coordinator restarts
and independent coordinators agree on the placement.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ClusterError
from repro.api.job import CompileJob


def shard_weight(fingerprint: str, endpoint_key: str) -> int:
    """Rendezvous weight of one (job, endpoint) pair."""
    digest = hashlib.sha256(
        f"{fingerprint}|{endpoint_key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def assign_endpoint(fingerprint: str,
                    endpoint_keys: Sequence[str]) -> str:
    """The endpoint a fingerprint lands on: highest rendezvous weight.

    Ties (astronomically unlikely with a 64-bit weight) break toward the
    lexicographically smallest endpoint key, keeping the choice
    deterministic either way.
    """
    if not endpoint_keys:
        raise ClusterError("cannot assign a job: no worker endpoints")
    return max(sorted(endpoint_keys),
               key=lambda key: shard_weight(fingerprint, key))


def shard_jobs(jobs: Sequence[Tuple[str, CompileJob]],
               endpoint_keys: Sequence[str]
               ) -> "OrderedDict[str, List[Tuple[str, CompileJob]]]":
    """Partition ``(fingerprint, job)`` pairs across endpoints.

    Returns an ordered mapping of endpoint key to its shard, with
    endpoints in the order given and each shard preserving the input
    job order — the deterministic layout the coordinator's merge step
    relies on.  Endpoints drawing no jobs are omitted.
    """
    shards: "OrderedDict[str, List[Tuple[str, CompileJob]]]" = OrderedDict()
    for key in endpoint_keys:
        shards[key] = []
    for fingerprint, job in jobs:
        shards[assign_endpoint(fingerprint, endpoint_keys)].append(
            (fingerprint, job))
    for key in [key for key, shard in shards.items() if not shard]:
        del shards[key]
    return shards


def shard_counts(shards: Dict[str, List]) -> Dict[str, int]:
    """Shard sizes keyed by endpoint — telemetry/log helper."""
    return {key: len(shard) for key, shard in shards.items()}
