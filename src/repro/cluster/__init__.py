"""Sharded multi-server sweeps with streaming per-entry results.

The horizontal-scaling layer above :mod:`repro.service`: where one
compile server absorbs a sweep through its job queue, a
:class:`ClusterCoordinator` splits the sweep across a *fleet* of
servers and merges their streamed results:

* :mod:`repro.cluster.topology` — :class:`WorkerEndpoint` /
  :class:`ClusterTopology`: fleet membership, ``/health`` probing,
  liveness bookkeeping.
* :mod:`repro.cluster.sharding` — deterministic rendezvous hashing of
  job fingerprints to endpoints, so repeated sweeps hit the same
  servers' warm disk caches and a dead worker only moves its own jobs.
* :mod:`repro.cluster.streaming` — :class:`ShardConsumer`: one thread
  per shard long-polling ``GET /jobs/<id>/entries``, delivering entries
  the moment workers finish them.
* :mod:`repro.cluster.coordinator` — :class:`ClusterCoordinator`:
  expand → shard → submit → stream → heal (re-dispatch after worker
  death or 503 back-pressure) → deterministic merge.  A two-worker
  cluster sweep exports byte-identical JSON/CSV to a serial
  single-session run.

Quick start (servers already listening)::

    from repro.api import MachineSpec, SweepSpec
    from repro.cluster import ClusterCoordinator

    spec = (SweepSpec()
            .with_benchmarks("RD53", "ADDER4", "6SYM")
            .with_machines(MachineSpec.nisq_grid(5, 5))
            .with_policies("lazy", "square"))
    coordinator = ClusterCoordinator([
        "http://127.0.0.1:8731", "http://127.0.0.1:8732",
    ])
    sweep = coordinator.run(spec, on_entry=lambda i, e: print(i, e.ok))
    sweep.to_csv("cluster.csv")

Or from the command line: ``python -m repro.experiments cluster-sweep
RD53 ADDER4 --endpoint http://127.0.0.1:8731 --endpoint
http://127.0.0.1:8732``.
"""

from repro.cluster.coordinator import ClusterCoordinator, cluster_sweep
from repro.cluster.sharding import (
    assign_endpoint,
    shard_counts,
    shard_jobs,
    shard_score,
    shard_weight,
)
from repro.cluster.streaming import (
    COMPLETED,
    CRASHED,
    DIED,
    UNFINISHED,
    ShardConsumer,
)
from repro.cluster.topology import ClusterTopology, WorkerEndpoint

__all__ = [
    "COMPLETED",
    "CRASHED",
    "ClusterCoordinator",
    "ClusterTopology",
    "DIED",
    "ShardConsumer",
    "UNFINISHED",
    "WorkerEndpoint",
    "assign_endpoint",
    "cluster_sweep",
    "shard_counts",
    "shard_jobs",
    "shard_score",
    "shard_weight",
]
