"""Cluster membership: worker endpoints, health probes, liveness state.

A :class:`ClusterTopology` is the coordinator's view of the fleet: an
ordered, deduplicated set of :class:`WorkerEndpoint` records, each
wrapping a :class:`~repro.service.client.ServiceClient` plus liveness
bookkeeping.  Probing is active (``GET /health``), and the coordinator
additionally marks endpoints dead when their transport fails mid-sweep;
a dead endpoint stays registered — :meth:`ClusterTopology.probe_all`
revives it if a later probe succeeds, so a restarted server rejoins the
fleet without reconfiguration.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.exceptions import ClusterError, ServiceError
from repro.service.client import ServiceClient
from repro.telemetry import (MetricsRegistry, coerce_trace_id,
                             merge_expositions)


class WorkerEndpoint:
    """One compile server in the fleet, plus its liveness record.

    Attributes:
        url: Normalized service root (no trailing slash) — also the
            endpoint's sharding key.
        client: The HTTP client used for every call to this server.
        weight: Relative sharding capacity (> 0, default 1.0): a
            weight-2 endpoint draws about twice the jobs of a weight-1
            sibling under the coordinator's weighted rendezvous
            hashing, so heterogeneous fleets shard proportionally.
        alive: Current liveness belief (probe result or mid-sweep
            transport failure).
        last_error: Message of the failure that last marked the
            endpoint dead, or None.
        probes / failures: Lifetime counters for telemetry.

    ``api_key`` is the coordinator's tenant credential, forwarded to
    the shard on every request (each worker resolves it against its own
    registry), so a cluster sweep runs as the same principal end to
    end.  Ignored when an explicit ``client`` or ``client_factory`` is
    supplied — those own their credentials.
    """

    def __init__(self, url: str, client=None, *,
                 client_factory: Callable[[str], ServiceClient] = None,
                 weight: float = 1.0,
                 api_key: Optional[str] = None,
                 trace_id: Optional[str] = None) -> None:
        self.url = url.rstrip("/")
        if not weight > 0:
            raise ClusterError(
                f"endpoint {self.url!r} needs a weight > 0, got {weight!r}")
        self.weight = float(weight)
        if client is None:
            if client_factory is not None:
                client = client_factory(self.url)
            else:
                client = ServiceClient(self.url, api_key=api_key,
                                       trace_id=trace_id)
        self.client = client
        self.alive = True
        self.last_error: Optional[str] = None
        self.last_probe_at: Optional[float] = None
        self.probes = 0
        self.failures = 0

    # ------------------------------------------------------------------
    def probe(self) -> bool:
        """One ``GET /health`` round trip; updates and returns liveness."""
        self.probes += 1
        self.last_probe_at = time.time()  # lint: wall-clock (telemetry)
        try:
            payload = self.client.health()
        except ServiceError as error:
            self.mark_dead(f"health probe failed: {error}")
            return False
        if payload.get("status") != "ok":
            self.mark_dead(f"health probe returned {payload!r}")
            return False
        self.alive = True
        self.last_error = None
        return True

    def mark_dead(self, reason: str) -> None:
        """Record a liveness failure (probe or mid-sweep transport)."""
        self.alive = False
        self.last_error = reason
        self.failures += 1

    def stats(self) -> Dict[str, object]:
        """JSON-compatible liveness telemetry."""
        return {
            "url": self.url,
            "alive": self.alive,
            "weight": self.weight,
            "last_error": self.last_error,
            "last_probe_at": self.last_probe_at,
            "probes": self.probes,
            "failures": self.failures,
        }

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"WorkerEndpoint({self.url!r}, {state})"


class ClusterTopology:
    """The ordered fleet of worker endpoints a coordinator drives.

    Args:
        endpoints: Service root URLs (or prebuilt
            :class:`WorkerEndpoint` records); duplicates collapse to
            one, order is preserved.
        client_factory: ``factory(url) -> client`` override, used by
            tests to inject deterministic fake workers.
        api_key: Tenant credential every built client sends as its
            ``X-Repro-Key`` header (the coordinator's principal,
            forwarded to each shard); ignored for prebuilt endpoints
            and when ``client_factory`` is given.
        trace_id: Trace id every built client sends as its
            ``X-Repro-Trace`` header, so one cluster sweep's job
            records share an id across every shard; same overrides as
            ``api_key``.
    """

    def __init__(self,
                 endpoints: Sequence[Union[str, WorkerEndpoint]], *,
                 client_factory: Callable[[str], ServiceClient] = None,
                 api_key: Optional[str] = None,
                 trace_id: Optional[str] = None) -> None:
        self._endpoints: "OrderedDict[str, WorkerEndpoint]" = OrderedDict()
        self._lock = threading.Lock()
        # Minted here (not per endpoint) so every shard of a fan-out
        # carries the same id even when the caller passed none.
        self.trace_id = coerce_trace_id(trace_id)
        for endpoint in endpoints:
            if not isinstance(endpoint, WorkerEndpoint):
                endpoint = WorkerEndpoint(endpoint,
                                          client_factory=client_factory,
                                          api_key=api_key,
                                          trace_id=self.trace_id)
            self._endpoints.setdefault(endpoint.url, endpoint)
        if not self._endpoints:
            raise ClusterError("a cluster needs at least one worker "
                               "endpoint URL")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._endpoints)

    def __iter__(self):
        return iter(self._endpoints.values())

    def get(self, url: str) -> WorkerEndpoint:
        """The endpoint registered under ``url``.

        Raises:
            ClusterError: Unknown endpoint URL.
        """
        endpoint = self._endpoints.get(url.rstrip("/"))
        if endpoint is None:
            raise ClusterError(f"unknown worker endpoint {url!r}; "
                               f"registered: {list(self._endpoints)}")
        return endpoint

    def alive(self) -> List[WorkerEndpoint]:
        """Endpoints currently believed alive, in registration order."""
        return [endpoint for endpoint in self if endpoint.alive]

    def probe_all(self) -> List[WorkerEndpoint]:
        """Probe every endpoint (reviving recovered ones); returns the
        alive list."""
        for endpoint in self:
            endpoint.probe()
        return self.alive()

    def mark_dead(self, endpoint: WorkerEndpoint, reason: str) -> None:
        """Record an endpoint death observed outside a probe."""
        with self._lock:
            endpoint.mark_dead(reason)

    def stats(self) -> Dict[str, object]:
        """JSON-compatible fleet telemetry."""
        return {
            "endpoints": [endpoint.stats() for endpoint in self],
            "registered": len(self),
            "alive": len(self.alive()),
        }

    # ------------------------------------------------------------------
    #: Per-worker counters fleet_stats aggregates into fleet totals.
    FLEET_COUNTERS = (
        "queue_depth", "queue_capacity", "workers", "busy_workers",
        "requests", "jobs_run", "job_failures",
        "cache_hits", "cache_misses", "disk_hits",
        "disk_entries", "disk_bytes", "disk_evictions", "disk_orphans",
    )

    def fleet_stats(self) -> Dict[str, object]:
        """One ``GET /stats`` round trip per endpoint, aggregated.

        Each worker contributes a flat row — queue depth/capacity,
        worker threads (total and busy), request/job counters, session
        cache hits/misses, and disk-cache size/eviction/orphan counters
        — and the ``fleet`` entry sums every counter across the
        *reachable* workers.  An unreachable endpoint still gets a row
        (``reachable: False`` plus the error message) so a dashboard
        shows the hole in the fleet instead of silently shrinking it;
        it contributes nothing to the totals.
        """
        rows: List[Dict[str, object]] = []
        totals: Dict[str, int] = {key: 0 for key in self.FLEET_COUNTERS}
        reachable = 0
        for endpoint in self:
            row: Dict[str, object] = {"url": endpoint.url,
                                      "weight": endpoint.weight}
            try:
                payload = endpoint.client.stats()
            except ServiceError as error:
                row["reachable"] = False
                row["error"] = str(error)
                rows.append(row)
                continue
            reachable += 1
            service = payload.get("service") or {}
            session = payload.get("session") or {}
            disk = session.get("disk_cache") or {}
            row.update({
                "reachable": True,
                "queue_depth": service.get("queue_depth", 0),
                "queue_capacity": service.get("queue_capacity", 0),
                "workers": service.get("workers", 0),
                "busy_workers": service.get("busy_workers", 0),
                "requests": service.get("requests", 0),
                "jobs_run": service.get("jobs_run", 0),
                "job_failures": service.get("job_failures", 0),
                "cache_hits": session.get("cache_hits", 0),
                "cache_misses": session.get("cache_misses", 0),
                "disk_hits": session.get("disk_hits", 0),
                "disk_entries": disk.get("size", 0),
                "disk_bytes": disk.get("bytes", 0),
                "disk_evictions": disk.get("evictions", 0),
                "disk_orphans": disk.get("orphans_removed", 0),
            })
            for key in self.FLEET_COUNTERS:
                totals[key] += row[key]
            rows.append(row)
        return {
            "workers": rows,
            "fleet": totals,
            "registered": len(self),
            "reachable": reachable,
        }

    def fleet_metrics(self) -> str:
        """One ``GET /metrics`` scrape per endpoint, merged.

        Every worker's exposition is merged into one (each sample
        gains a ``worker="<url>"`` label; see
        :func:`repro.telemetry.merge_expositions`), plus a synthesized
        ``repro_worker_up`` gauge: 1 for workers that answered the
        scrape, 0 for unreachable ones — so the merged exposition shows
        a hole in the fleet instead of silently shrinking it.
        """
        texts: Dict[str, str] = {}
        synth = MetricsRegistry()
        up = synth.gauge("repro_worker_up",
                         "1 when the worker answered the metrics scrape.",
                         labelnames=("worker",))
        for endpoint in self:
            scrape = getattr(endpoint.client, "metrics_text", None)
            try:
                if scrape is None:
                    raise ServiceError(
                        f"client for {endpoint.url} has no metrics_text()")
                texts[endpoint.url] = scrape()
            except ServiceError:
                up.labels(worker=endpoint.url).set(0)
                continue
            up.labels(worker=endpoint.url).set(1)
        return merge_expositions(texts) + synth.render()

    def fleet_trace(self, trace_id: Optional[str] = None) -> Dict[str, object]:
        """One ``GET /trace/<id>`` fetch per endpoint, merged.

        Every worker's span records for ``trace_id`` (default: the
        fleet's own trace id) merge into one list: each record gains a
        ``worker`` label naming the shard that recorded it, duplicates
        (same span id from the same worker) collapse, and the merged
        list sorts deterministically by (start, name, span id) — ready
        for :func:`repro.telemetry.render_waterfall`.  Workers that
        cannot answer (unreachable, or a pre-span server) appear in the
        ``workers`` map with ``reachable: False`` so the merged
        waterfall shows the hole in the fleet instead of silently
        shrinking it.
        """
        trace_id = coerce_trace_id(trace_id or self.trace_id)
        merged: Dict[tuple, Dict[str, object]] = {}
        workers: Dict[str, Dict[str, object]] = {}
        for endpoint in self:
            fetch = getattr(endpoint.client, "trace", None)
            try:
                if fetch is None:
                    raise ServiceError(
                        f"client for {endpoint.url} has no trace()")
                payload = fetch(trace_id)
            except ServiceError as error:
                workers[endpoint.url] = {"reachable": False,
                                         "error": str(error)}
                continue
            spans = payload.get("spans") or []
            workers[endpoint.url] = {"reachable": True,
                                     "spans": len(spans)}
            for record in spans:
                record = dict(record)
                # Top-level key, not a label: render_waterfall shows it
                # as an `@worker` suffix on every merged span's line.
                record.setdefault("worker", endpoint.url)
                merged[(endpoint.url, record.get("span_id"))] = record
        ordered = sorted(merged.values(),
                         key=lambda record: (record.get("start") or 0.0,
                                             record.get("name") or "",
                                             record.get("span_id") or ""))
        return {"trace_id": trace_id, "count": len(ordered),
                "spans": ordered, "workers": workers}

    def fleet_logs(self, trace: Optional[str] = None, *,
                   tenant: Optional[str] = None,
                   level: Optional[str] = None,
                   since: Optional[float] = None,
                   limit: Optional[int] = None) -> Dict[str, object]:
        """One ``GET /logs`` fetch per endpoint, merged.

        Every worker's filtered events merge into one list: each record
        gains a ``worker`` key naming the shard that emitted it,
        duplicates (same event id from the same worker) collapse on
        ``(worker, event_id)``, and the merged list sorts
        deterministically by (ts, event_id) — one fleet-wide narrative
        per trace.  Workers that cannot answer (unreachable, or a
        pre-logs server) appear in the ``workers`` map with
        ``reachable: False``.  ``trace`` defaults to the fleet's own
        trace id; pass ``trace=""`` for events across all traces.
        """
        if trace is None:
            trace = self.trace_id
        merged: Dict[tuple, Dict[str, object]] = {}
        workers: Dict[str, Dict[str, object]] = {}
        for endpoint in self:
            fetch = getattr(endpoint.client, "logs", None)
            try:
                if fetch is None:
                    raise ServiceError(
                        f"client for {endpoint.url} has no logs()")
                payload = fetch(trace, tenant=tenant, level=level,
                                since=since, limit=limit)
            except ServiceError as error:
                workers[endpoint.url] = {"reachable": False,
                                         "error": str(error)}
                continue
            events = payload.get("events") or []
            workers[endpoint.url] = {"reachable": True,
                                     "events": len(events)}
            for record in events:
                record = dict(record)
                # Top-level key, like fleet_trace: render_waterfall
                # shows it as an `@worker` suffix on event lines.
                record.setdefault("worker", endpoint.url)
                merged[(endpoint.url, record.get("event_id"))] = record
        ordered = sorted(merged.values(),
                         key=lambda record: (record.get("ts") or 0.0,
                                             record.get("event_id") or ""))
        return {"trace_id": trace or None, "count": len(ordered),
                "events": ordered, "workers": workers}

    def __repr__(self) -> str:
        return (f"ClusterTopology(registered={len(self)}, "
                f"alive={len(self.alive())})")
