"""Worst-case analytical success-rate model (Section V-C2, Figure 8b).

The paper estimates program success rates by combining per-gate success
probabilities with the probability that the qubits stay coherent for the
duration of the program.  Straight multiplication over *every* gate at the
Table IV error rates produces vanishingly small numbers for all policies,
so — as a documented substitution — this model charges gate errors along
the critical path (the deepest dependence chain actually executed) and
charges decoherence for the measured Active Quantum Volume.  Absolute
values therefore differ from the paper's Figure 8b, but the ranking and
the relative improvements (the 1.47x headline vs Eager) are preserved,
because all policies are scored by the same formula on the same machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.result import CompilationResult
from repro.noise.models import NoiseModel


@dataclass(frozen=True)
class SuccessEstimate:
    """Break-down of an analytical success-rate estimate.

    Attributes:
        gate_success: Probability that no gate error occurs on the critical
            path.
        coherence: Probability that the live qubits stay coherent.
        total: Product of the two components.
    """

    gate_success: float
    coherence: float

    @property
    def total(self) -> float:
        """Overall estimated success probability."""
        return self.gate_success * self.coherence


def estimate_success(result: CompilationResult,
                     noise_model: Optional[NoiseModel] = None) -> SuccessEstimate:
    """Estimate the success rate of one compiled program.

    Args:
        result: Compilation result (depth, swap count, AQV, qubit count).
        noise_model: Error rates and coherence times (Table IV simulation
            row by default).
    """
    model = noise_model or NoiseModel()
    params = model.parameters

    # Gate errors along the critical path.  The scheduler's makespan is in
    # single-gate time units; two-qubit gates dominate the path, so convert
    # the depth into an equivalent count of two-qubit gate slots.
    two_qubit_duration = 2.0
    critical_two_qubit_gates = result.circuit_depth / two_qubit_duration
    gate_success = (1.0 - model.two_qubit_error) ** critical_two_qubit_gates

    # Decoherence exposure: AQV is qubit-time actually spent live; average
    # it over the live qubits and compare with the coherence time.
    peak_live = max(result.peak_live_qubits, 1)
    mean_live_time_units = result.active_quantum_volume / peak_live
    live_time_us = mean_live_time_units * params.gate_time_us
    coherence_time_us = min(params.t1_us, params.t2_us)
    coherence = math.exp(-live_time_us / coherence_time_us)

    return SuccessEstimate(gate_success=gate_success, coherence=coherence)


def success_rates(results: Mapping[str, CompilationResult],
                  noise_model: Optional[NoiseModel] = None) -> Dict[str, float]:
    """Estimated success rate per policy for one benchmark."""
    return {
        policy: estimate_success(result, noise_model).total
        for policy, result in results.items()
    }


def improvement_over(results: Mapping[str, CompilationResult], policy: str,
                     baseline: str,
                     noise_model: Optional[NoiseModel] = None) -> float:
    """Success-rate improvement factor of ``policy`` over ``baseline``."""
    rates = success_rates(results, noise_model)
    if rates[baseline] <= 0.0:
        return math.inf
    return rates[policy] / rates[baseline]
