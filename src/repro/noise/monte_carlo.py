"""Stochastic (Monte-Carlo) noisy simulation of compiled circuits.

The paper's noise simulations (Section V-C3) run each compiled benchmark
through Qiskit Aer with depolarizing gate noise and T1/T2 thermal
relaxation, then compare the noisy output distribution with the ideal one
via total variation distance.

The benchmarks compile to *classical reversible* circuits (X / CNOT /
Toffoli / SWAP).  For such circuits, a Pauli-twirled depolarizing +
relaxation model admits an exact stochastic bit-level simulation: phase
errors never affect computational-basis measurement statistics, so only
the bit-flip components matter, and each noisy shot is a classical
propagation with randomly injected flips.  This makes the paper's 8192
shots per benchmark easily affordable in pure Python, which is the
substitution we make for Qiskit Aer (documented in DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.ir.circuit import Circuit
from repro.noise.models import NoiseModel


def _apply_named_gate(bits: List[int], name: str, qubits: Tuple[int, ...]) -> None:
    """Tight-loop classical gate application (x / cx / ccx / swap)."""
    if name == "cx":
        bits[qubits[1]] ^= bits[qubits[0]]
    elif name == "ccx":
        bits[qubits[2]] ^= bits[qubits[0]] & bits[qubits[1]]
    elif name == "x":
        bits[qubits[0]] ^= 1
    elif name == "swap":
        a, b = qubits
        bits[a], bits[b] = bits[b], bits[a]
    # barrier and other zero-effect operations fall through.


@dataclass(frozen=True)
class NoisyRunResult:
    """Outcome of a Monte-Carlo noisy simulation.

    Attributes:
        counts: Measured bitstring (as integer) -> number of shots.
        shots: Total number of shots.
        ideal_outcome: The noiseless outcome bitstring (as an integer).
        measured_wires: The wires included in the readout.
    """

    counts: Mapping[int, int]
    shots: int
    ideal_outcome: int
    measured_wires: Tuple[int, ...]

    def distribution(self) -> Dict[int, float]:
        """Normalised outcome distribution."""
        return {key: value / self.shots for key, value in self.counts.items()}

    def success_probability(self) -> float:
        """Fraction of shots that produced the ideal outcome."""
        return self.counts.get(self.ideal_outcome, 0) / self.shots


class MonteCarloSimulator:
    """Bit-level stochastic noise simulator for classical circuits.

    Args:
        noise_model: Gate error and relaxation parameters.
        seed: RNG seed for reproducible runs.
    """

    def __init__(self, noise_model: Optional[NoiseModel] = None,
                 seed: int = 2020) -> None:
        self.noise_model = noise_model or NoiseModel()
        self._seed = seed

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        shots: int = 1024,
        initial_bits: Optional[Mapping[int, int]] = None,
        measured_wires: Optional[Sequence[int]] = None,
    ) -> NoisyRunResult:
        """Simulate ``shots`` noisy executions of ``circuit``.

        Args:
            circuit: A classical reversible circuit (router swaps included).
            shots: Number of noisy trajectories.
            initial_bits: Basis-state input assignment (default all zero).
            measured_wires: Wires to read out (default: every wire).

        Raises:
            SimulationError: If the circuit contains non-classical gates.
        """
        if not circuit.is_classical():
            raise SimulationError(
                "the Monte-Carlo simulator only handles classical reversible "
                "circuits; decompose or use the dense state-vector simulator"
            )
        if shots < 1:
            raise SimulationError("shots must be positive")
        wires = tuple(measured_wires) if measured_wires is not None else tuple(
            range(circuit.num_qubits)
        )
        base = [0] * circuit.num_qubits
        if initial_bits:
            for wire, bit in initial_bits.items():
                base[wire] = 1 if bit else 0

        operations = self._compile_ops(circuit)
        ideal = self._propagate(operations, circuit.num_qubits, list(base), rng=None)
        ideal_outcome = self._readout(ideal, wires)

        rng = random.Random(self._seed)
        counts: Dict[int, int] = {}
        for _ in range(shots):
            bits = self._propagate(operations, circuit.num_qubits, list(base), rng=rng)
            outcome = self._readout(bits, wires)
            counts[outcome] = counts.get(outcome, 0) + 1
        return NoisyRunResult(counts=counts, shots=shots,
                              ideal_outcome=ideal_outcome, measured_wires=wires)

    # ------------------------------------------------------------------
    def _compile_ops(self, circuit: Circuit) -> List[Tuple[str, Tuple[int, ...], float, int]]:
        """Pre-compute (name, qubits, flip probability, duration) per gate.

        The bit-flip probability folds in the 2/3 factor for the Pauli
        errors of a depolarizing channel that have a bit-flip component;
        phase-only errors are invisible for classical circuits.
        """
        model = self.noise_model
        operations = []
        for gate in circuit:
            flip = model.gate_error(gate.num_qubits) * (2.0 / 3.0)
            operations.append((gate.name, gate.qubits, flip, gate.duration))
        return operations

    def _propagate(self, operations: Sequence[Tuple[str, Tuple[int, ...], float, int]],
                   num_wires: int, bits: List[int],
                   rng: Optional[random.Random]) -> List[int]:
        """One trajectory; ``rng is None`` gives the noiseless reference."""
        if rng is None:
            for name, qubits, _flip, _duration in operations:
                _apply_named_gate(bits, name, qubits)
            return bits

        model = self.noise_model
        last_active = [0.0] * num_wires
        clock = 0.0
        random_value = rng.random
        for name, qubits, flip, duration in operations:
            # Relaxation on the operands for the time they idled since their
            # previous gate (approximating the schedule by program order).
            for wire in qubits:
                idle = clock - last_active[wire]
                if bits[wire] and idle > 0:
                    if random_value() < model.idle_flip_probability(int(idle)):
                        bits[wire] = 0
            _apply_named_gate(bits, name, qubits)
            clock += duration
            for wire in qubits:
                last_active[wire] = clock
                if random_value() < flip:
                    bits[wire] ^= 1
        return bits

    @staticmethod
    def _readout(bits: Sequence[int], wires: Sequence[int]) -> int:
        outcome = 0
        for position, wire in enumerate(wires):
            if bits[wire]:
                outcome |= 1 << position
        return outcome


def total_variation_distance(distribution_a: Mapping[int, float],
                             distribution_b: Mapping[int, float]) -> float:
    """Total variation distance between two outcome distributions.

    d_TV(P, Q) = 1/2 * sum_x |P(x) - Q(x)|, the measure used in
    Section V-C3 to compare noisy and ideal measurement outcomes.
    """
    keys = set(distribution_a) | set(distribution_b)
    return 0.5 * sum(
        abs(distribution_a.get(key, 0.0) - distribution_b.get(key, 0.0))
        for key in keys
    )


def tvd_from_ideal(result: NoisyRunResult) -> float:
    """TVD between a noisy run and its (deterministic) ideal outcome."""
    ideal = {result.ideal_outcome: 1.0}
    return total_variation_distance(result.distribution(), ideal)
