"""Dense state-vector simulator (pure NumPy).

A small but complete simulator supporting the full gate set of the IR,
used for unitary-equivalence tests (e.g. checking the Toffoli
decomposition) and for noise studies on very small circuits.  It stands
in for the Qiskit Aer simulator used in the paper's evaluation; the
large-benchmark noise runs use the stochastic bit-level simulator in
:mod:`repro.noise.monte_carlo` instead, which is exact for the classical
reversible circuits the benchmarks compile to.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate

_SQRT2 = 1.0 / math.sqrt(2.0)

_SINGLE_QUBIT_MATRICES: Dict[str, np.ndarray] = {
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[_SQRT2, _SQRT2], [_SQRT2, -_SQRT2]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex),
}


class StateVector:
    """A dense quantum state on ``num_qubits`` wires (little-endian)."""

    def __init__(self, num_qubits: int,
                 initial_bits: Optional[Mapping[int, int]] = None) -> None:
        if num_qubits < 1:
            raise SimulationError("num_qubits must be positive")
        if num_qubits > 24:
            raise SimulationError(
                f"{num_qubits} qubits is too large for the dense simulator"
            )
        self.num_qubits = num_qubits
        index = 0
        if initial_bits:
            for wire, bit in initial_bits.items():
                if not 0 <= wire < num_qubits:
                    raise SimulationError(f"wire {wire} out of range")
                if bit:
                    index |= 1 << wire
        self._amplitudes = np.zeros(1 << num_qubits, dtype=complex)
        self._amplitudes[index] = 1.0

    # ------------------------------------------------------------------
    @property
    def amplitudes(self) -> np.ndarray:
        """The state amplitudes (read-only view)."""
        return self._amplitudes

    def copy(self) -> "StateVector":
        """Deep copy of the state."""
        clone = StateVector(self.num_qubits)
        clone._amplitudes = self._amplitudes.copy()
        return clone

    # ------------------------------------------------------------------
    def apply_gate(self, gate: Gate) -> None:
        """Apply one gate in place."""
        name = gate.name
        if name == "barrier":
            return
        if name in _SINGLE_QUBIT_MATRICES:
            self._apply_single(_SINGLE_QUBIT_MATRICES[name], gate.qubits[0])
        elif name == "cx":
            self._apply_controlled_x([gate.qubits[0]], gate.qubits[1])
        elif name == "cz":
            self._apply_controlled_z(gate.qubits[0], gate.qubits[1])
        elif name == "ccx":
            self._apply_controlled_x([gate.qubits[0], gate.qubits[1]], gate.qubits[2])
        elif name == "swap":
            self._apply_swap(gate.qubits[0], gate.qubits[1])
        elif name in ("measure", "reset"):
            raise SimulationError(
                "use sample()/probabilities() instead of mid-circuit "
                f"{name!r} in the dense simulator"
            )
        else:
            raise SimulationError(f"unsupported gate {name!r}")

    def run(self, circuit: Circuit) -> "StateVector":
        """Apply every gate of ``circuit`` and return self."""
        if circuit.num_qubits > self.num_qubits:
            raise SimulationError(
                f"circuit needs {circuit.num_qubits} qubits, state has "
                f"{self.num_qubits}"
            )
        for gate in circuit:
            self.apply_gate(gate)
        return self

    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Measurement probabilities over all basis states."""
        return np.abs(self._amplitudes) ** 2

    def marginal_probabilities(self, wires: Sequence[int]) -> Dict[int, float]:
        """Probability distribution over a subset of wires."""
        probabilities = self.probabilities()
        marginal: Dict[int, float] = {}
        for index, probability in enumerate(probabilities):
            if probability <= 0.0:
                continue
            key = 0
            for position, wire in enumerate(wires):
                if index & (1 << wire):
                    key |= 1 << position
            marginal[key] = marginal.get(key, 0.0) + float(probability)
        return marginal

    def sample(self, shots: int, rng: Optional[np.random.Generator] = None
               ) -> Dict[int, int]:
        """Sample measurement outcomes over all wires."""
        if shots < 1:
            raise SimulationError("shots must be positive")
        rng = rng or np.random.default_rng()
        probabilities = self.probabilities()
        outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
        counts: Dict[int, int] = {}
        for outcome in outcomes:
            counts[int(outcome)] = counts.get(int(outcome), 0) + 1
        return counts

    def fidelity_with(self, other: "StateVector") -> float:
        """|<self|other>|^2."""
        if self.num_qubits != other.num_qubits:
            raise SimulationError("states have different sizes")
        return float(abs(np.vdot(self._amplitudes, other._amplitudes)) ** 2)

    # ------------------------------------------------------------------
    def _apply_single(self, matrix: np.ndarray, wire: int) -> None:
        amplitudes = self._amplitudes.reshape(
            (1 << (self.num_qubits - wire - 1), 2, 1 << wire)
        )
        updated = np.einsum("ab,ibj->iaj", matrix, amplitudes)
        self._amplitudes = np.ascontiguousarray(updated).reshape(-1)

    def _basis_mask(self, wire: int) -> np.ndarray:
        indices = np.arange(self._amplitudes.size)
        return (indices >> wire) & 1 == 1

    def _apply_controlled_x(self, controls: Sequence[int], target: int) -> None:
        indices = np.arange(self._amplitudes.size)
        mask = np.ones(self._amplitudes.size, dtype=bool)
        for control in controls:
            mask &= ((indices >> control) & 1) == 1
        source = indices[mask]
        flipped = source ^ (1 << target)
        swap_mask = source < flipped
        src = source[swap_mask]
        dst = flipped[swap_mask]
        self._amplitudes[src], self._amplitudes[dst] = (
            self._amplitudes[dst].copy(), self._amplitudes[src].copy()
        )

    def _apply_controlled_z(self, control: int, target: int) -> None:
        indices = np.arange(self._amplitudes.size)
        mask = (((indices >> control) & 1) == 1) & (((indices >> target) & 1) == 1)
        self._amplitudes[mask] *= -1

    def _apply_swap(self, a: int, b: int) -> None:
        indices = np.arange(self._amplitudes.size)
        bit_a = (indices >> a) & 1
        bit_b = (indices >> b) & 1
        differs = bit_a != bit_b
        swapped = indices ^ ((1 << a) | (1 << b))
        mask = differs & (indices < swapped)
        src = indices[mask]
        dst = swapped[mask]
        self._amplitudes[src], self._amplitudes[dst] = (
            self._amplitudes[dst].copy(), self._amplitudes[src].copy()
        )


def simulate_statevector(circuit: Circuit,
                         initial_bits: Optional[Mapping[int, int]] = None
                         ) -> StateVector:
    """Run ``circuit`` from a basis-state input and return the final state."""
    state = StateVector(max(circuit.num_qubits, 1), initial_bits)
    return state.run(circuit)
