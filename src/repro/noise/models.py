"""Noise model definitions (Table IV).

The simulation noise model combines depolarizing gate errors with
T1/T2 thermal relaxation, with the parameters of the "Our Simulation"
row of Table IV.  The same dataclass also carries the published device
figures (IBM superconducting, IonQ trapped ion) so Table IV can be
regenerated verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.arch.nisq import (
    IBM_SUPERCONDUCTING,
    IONQ_TRAPPED_ION,
    SIMULATION_NOISE,
    NoiseParameters,
)


@dataclass(frozen=True)
class NoiseModel:
    """A concrete noise model for circuit-level simulation.

    Attributes:
        parameters: Physical error rates and coherence times.
        name: Model name used in reports.
    """

    parameters: NoiseParameters = SIMULATION_NOISE
    name: str = "simulation"

    # ------------------------------------------------------------------
    @property
    def single_qubit_error(self) -> float:
        """Depolarizing probability per single-qubit gate."""
        return self.parameters.single_qubit_error

    @property
    def two_qubit_error(self) -> float:
        """Depolarizing probability per two-qubit gate."""
        return self.parameters.two_qubit_error

    def gate_error(self, num_qubits: int) -> float:
        """Depolarizing probability for a gate of the given arity."""
        if num_qubits <= 1:
            return self.single_qubit_error
        if num_qubits == 2:
            return self.two_qubit_error
        # Multi-qubit gates (undecomposed Toffolis) are charged as the
        # equivalent of their two-qubit decomposition (six CNOTs).
        return min(1.0, 6 * self.two_qubit_error)

    def idle_flip_probability(self, duration_units: int) -> float:
        """Probability a qubit relaxes (1 -> 0) while idling for ``duration``.

        Uses the exponential T1 model with the per-unit gate time of the
        noise parameters.
        """
        import math

        if duration_units <= 0:
            return 0.0
        t_us = duration_units * self.parameters.gate_time_us
        return 1.0 - math.exp(-t_us / self.parameters.t1_us)

    def dephase_probability(self, duration_units: int) -> float:
        """Probability of a phase flip while idling for ``duration`` units."""
        import math

        if duration_units <= 0:
            return 0.0
        t_us = duration_units * self.parameters.gate_time_us
        return 0.5 * (1.0 - math.exp(-t_us / self.parameters.t2_us))


#: The three rows of Table IV.
TABLE_IV_DEVICES: Mapping[str, NoiseParameters] = {
    "IBM-Sup": IBM_SUPERCONDUCTING,
    "IonQ-Trap": IONQ_TRAPPED_ION,
    "Our Simulation": SIMULATION_NOISE,
}


def table_iv_rows() -> list[Dict[str, object]]:
    """Reproduce Table IV as a list of report rows."""
    qubit_counts = {"IBM-Sup": 20, "IonQ-Trap": 79, "Our Simulation": "< 20"}
    rows = []
    for name, params in TABLE_IV_DEVICES.items():
        rows.append({
            "device": name,
            "# Qubits": qubit_counts[name],
            "single": f"{params.single_qubit_error:.1%}",
            "two": f"{params.two_qubit_error:.1%}",
            "T1 (us)": params.t1_us,
            "T2 (us)": params.t2_us,
        })
    return rows
