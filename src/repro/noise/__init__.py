"""Noise models, simulators and success-rate estimation."""

from repro.noise.analytical import (
    SuccessEstimate,
    estimate_success,
    improvement_over,
    success_rates,
)
from repro.noise.models import TABLE_IV_DEVICES, NoiseModel, table_iv_rows
from repro.noise.monte_carlo import (
    MonteCarloSimulator,
    NoisyRunResult,
    total_variation_distance,
    tvd_from_ideal,
)
from repro.noise.statevector import StateVector, simulate_statevector

__all__ = [
    "MonteCarloSimulator",
    "NoiseModel",
    "NoisyRunResult",
    "StateVector",
    "SuccessEstimate",
    "TABLE_IV_DEVICES",
    "estimate_success",
    "improvement_over",
    "simulate_statevector",
    "success_rates",
    "table_iv_rows",
    "total_variation_distance",
    "tvd_from_ideal",
]
