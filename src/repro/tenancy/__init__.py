"""Multi-tenant production scheduling + durable job state.

The subsystem that turns the per-user compilation service into a
shared one:

* :mod:`repro.tenancy.tenants` — :class:`Tenant` principals (name,
  role, API key, quota caps) and the :class:`TenantRegistry` resolving
  the ``X-Repro-Key`` request header; keyless requests map to a default
  tenant, so anonymous clients keep working.
* :mod:`repro.tenancy.fairshare` — :class:`FairShareScheduler`
  composite pop priority (role weight + job age + deadline urgency −
  exponentially-decaying per-tenant :class:`BurstScoreManager` score),
  so one tenant's 500-job burst cannot starve a quiet tenant's fresh
  submission.
* :mod:`repro.tenancy.store` — pluggable :class:`JobStore` durable job
  state: :class:`JsonlJobStore` journals every lifecycle transition and
  sweep-entry record to an append-only, auto-compacting JSONL WAL, so a
  restarted server re-enqueues QUEUED work, requeues orphaned RUNNING
  jobs exactly once, and serves pre-crash DONE results byte-identically
  (:class:`MemoryJobStore` is the no-persistence twin).

:mod:`repro.queue` consumes the scheduler and store;
:mod:`repro.service` wires them to HTTP (``--tenants``/``--store-dir``,
401/429 error mapping, per-tenant ``/stats``); the
:class:`~repro.service.client.ServiceClient` and
:mod:`repro.cluster` coordinator carry the API key end to end.
"""

from repro.tenancy.fairshare import (
    DEFAULT_HALF_LIFE,
    BurstScoreManager,
    FairShareScheduler,
)
from repro.tenancy.store import (
    DEFAULT_COMPACT_THRESHOLD,
    STORE_VERSION,
    JobStore,
    JsonlJobStore,
    MemoryJobStore,
    job_snapshot,
)
from repro.tenancy.tenants import (
    ANONYMOUS,
    AUTH_HEADER,
    DEFAULT_ROLE,
    ROLE_WEIGHTS,
    TENANTS_ENV,
    Tenant,
    TenantRegistry,
    coerce_registry,
)

__all__ = [
    "ANONYMOUS",
    "AUTH_HEADER",
    "BurstScoreManager",
    "DEFAULT_COMPACT_THRESHOLD",
    "DEFAULT_HALF_LIFE",
    "DEFAULT_ROLE",
    "FairShareScheduler",
    "JobStore",
    "JsonlJobStore",
    "MemoryJobStore",
    "ROLE_WEIGHTS",
    "STORE_VERSION",
    "TENANTS_ENV",
    "Tenant",
    "TenantRegistry",
    "coerce_registry",
    "job_snapshot",
]
