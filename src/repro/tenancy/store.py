"""Durable job state: pluggable stores + an append-only JSONL WAL.

Before this module, every queued job lived only in the
:class:`~repro.queue.manager.JobManager`'s in-memory table — a server
crash lost the whole backlog and every un-polled result.  A
:class:`JobStore` journals each lifecycle event as it happens:

* ``submit``  — the full job snapshot (payload, tenant, priority), the
  moment a submission is accepted;
* ``state``   — every lifecycle transition, carrying the DONE response
  or FAILED error record inline;
* ``entry``   — each streamed sweep-entry record, so the long-poll
  cursor survives too;
* ``forget``  — retention GC dropping a terminal record;
* ``burst``   — the fair-share burst-score table with a wall-clock
  snapshot stamp, journaled at every accepted submission, so a
  flooding tenant cannot reset its penalty by crashing the server
  (recovery decays the scores by the downtime and re-seeds them).

On restart the manager replays :meth:`JobStore.load` and recovers:
QUEUED jobs re-enqueue, orphaned RUNNING jobs requeue (exactly once —
a job orphaned twice is marked FAILED instead of crash-looping), and
terminal jobs are served from the journal byte-identically to before
the crash.

:class:`JsonlJobStore` is the durable implementation: one append-only
``jobs.wal`` JSONL file, flushed per event, torn-tail tolerant, and
**compacting** — when the log grows past ``compact_threshold`` lines it
is atomically rewritten as one snapshot per live job, so a long-lived
server's journal stays proportional to its retained job table instead
of its lifetime submission count.  :class:`MemoryJobStore` implements
the same interface without persistence (tests, ephemeral servers); a
SQLite-backed store can slot in behind the same five methods.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.exceptions import ServiceError

#: Journal schema version (header line of every WAL).
STORE_VERSION = 1

#: Default WAL line count that triggers an automatic compaction.
DEFAULT_COMPACT_THRESHOLD = 4096


def job_snapshot(job) -> Dict[str, object]:
    """Serialize a :class:`~repro.queue.jobs.QueuedJob` for the store.

    Unlike ``QueuedJob.to_dict`` (the wire status payload) this is the
    *complete* durable record: payload, tenant, entries, response and
    error all included, so a job can be rebuilt from it alone.
    """
    tenant = getattr(job, "tenant", None)
    return {
        "job_id": job.job_id,
        "kind": job.kind,
        "payload": job.payload,
        "priority": job.priority,
        "tenant": tenant.to_dict() if tenant is not None else None,
        "trace_id": getattr(job, "trace_id", None),
        "deadline_seconds": getattr(job, "deadline_seconds", None),
        "state": job.state,
        "submitted_at": job.submitted_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "retries": getattr(job, "retries", 0),
        "response": job.response,
        "error": job.error,
        "entries": list(job.entries),
    }


class JobStore:
    """Interface every durable job store implements.

    The manager calls the ``record_*`` methods under its own lock, in
    event order; implementations only need to be safe against their own
    internal state.  ``load()`` is called once, before the worker pool
    starts, and returns complete job records (the
    :func:`job_snapshot` shape).
    """

    def load(self) -> List[Dict[str, object]]:
        """Replay the journal; returns records in submission order."""
        raise NotImplementedError

    def record_submit(self, job) -> None:
        """Persist an accepted submission."""
        raise NotImplementedError

    def record_transition(self, job) -> None:
        """Persist a lifecycle transition (response/error inline)."""
        raise NotImplementedError

    def record_entry(self, job_id: str, record: Mapping[str, object]) -> None:
        """Persist one streamed sweep-entry record."""
        raise NotImplementedError

    def forget(self, job_ids) -> None:
        """Drop retention-GC'd jobs from the journal's live set."""
        raise NotImplementedError

    def record_burst(self, scores: Mapping[str, float],
                     at: float) -> None:
        """Persist a fair-share burst-score snapshot.

        ``at`` is the wall-clock stamp the snapshot was taken at, so
        recovery can decay the scores by the downtime.  Default: no-op,
        so stores that predate the burst journal keep working.
        """

    def load_burst(self) -> Optional[Dict[str, object]]:
        """The latest burst snapshot ``{"scores": {...}, "at": ...}``,
        or None when none was ever journaled (the default)."""
        return None

    def close(self) -> None:
        """Stop persisting (further ``record_*`` calls are no-ops)."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        """JSON-compatible store telemetry."""
        raise NotImplementedError


class MemoryJobStore(JobStore):
    """In-memory :class:`JobStore`: the full interface, no durability.

    Useful for tests of the recovery machinery (hand one instance's
    records to a second manager) and as the explicit "no persistence"
    choice; a fresh instance always loads empty.
    """

    def __init__(self) -> None:
        self._records: "Dict[str, Dict[str, object]]" = {}
        self._burst: Optional[Dict[str, object]] = None
        self._lock = threading.Lock()
        self._closed = False

    def load(self) -> List[Dict[str, object]]:
        with self._lock:
            return [dict(record, entries=list(record["entries"]))
                    for record in self._records.values()]

    def record_submit(self, job) -> None:
        if self._closed:
            return
        with self._lock:
            self._records[job.job_id] = job_snapshot(job)

    def record_transition(self, job) -> None:
        if self._closed:
            return
        with self._lock:
            if job.job_id in self._records:
                self._records[job.job_id] = job_snapshot(job)

    def record_entry(self, job_id: str,
                     record: Mapping[str, object]) -> None:
        if self._closed:
            return
        with self._lock:
            snapshot = self._records.get(job_id)
            if snapshot is not None:
                snapshot["entries"].append(dict(record))

    def forget(self, job_ids) -> None:
        with self._lock:
            for job_id in job_ids:
                self._records.pop(job_id, None)

    def record_burst(self, scores: Mapping[str, float],
                     at: float) -> None:
        if self._closed:
            return
        with self._lock:
            self._burst = {"scores": {tenant: float(score)
                                      for tenant, score in scores.items()},
                           "at": float(at)}

    def load_burst(self) -> Optional[Dict[str, object]]:
        with self._lock:
            if self._burst is None:
                return None
            return {"scores": dict(self._burst["scores"]),
                    "at": self._burst["at"]}

    def close(self) -> None:
        self._closed = True

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {"kind": "memory", "live_jobs": len(self._records),
                    "closed": self._closed}


class JsonlJobStore(JobStore):
    """Append-only JSONL write-ahead log with automatic compaction.

    Layout: ``<root>/jobs.wal`` — line 1 a header, every further line
    one event.  Appends flush before returning, so any event the
    manager observed as recorded survives a crash; a torn final line
    (the expected wound of a killed writer) is skipped on load.

    Args:
        root: Store directory (created if missing); the server's
            ``--store-dir``.
        compact_threshold: WAL line count that triggers an automatic
            rewrite to one snapshot per live job.  Retention GC calls
            :meth:`forget`, so the compacted size is bounded by the
            manager's retention cap, not server lifetime.
    """

    WAL_NAME = "jobs.wal"

    def __init__(self, root, *,
                 compact_threshold: int = DEFAULT_COMPACT_THRESHOLD) -> None:
        if compact_threshold < 2:
            raise ServiceError(f"compact_threshold must be >= 2, "
                               f"got {compact_threshold}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / self.WAL_NAME
        self.compact_threshold = compact_threshold
        self._lock = threading.Lock()
        self._records: "Dict[str, Dict[str, object]]" = {}
        self._burst: Optional[Dict[str, object]] = None
        self._lines = 0
        self._closed = False
        self.replayed = 0
        self.torn_lines = 0
        self.compactions = 0
        self.appended = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            self._replay()
        self._stream = open(self.path, "a", encoding="utf-8")
        if self._lines == 0:
            self._append({"type": "header", "version": STORE_VERSION})

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        events: List[Dict[str, object]] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                self.torn_lines += 1
                continue
        if not events:
            return
        header = events[0]
        if header.get("type") != "header":
            raise ServiceError(
                f"job journal {self.path} has no header line; refusing "
                f"to recover from it (move it aside to start fresh)")
        if header.get("version") != STORE_VERSION:
            raise ServiceError(
                f"job journal {self.path} has schema version "
                f"{header.get('version')!r}, expected {STORE_VERSION}")
        self._lines = len(events)
        for event in events[1:]:
            self._apply(event)
        self.replayed = len(self._records)

    def _apply(self, event: Mapping[str, object]) -> None:
        """Fold one journal event into the live-record mirror."""
        kind = event.get("type")
        if kind == "burst":
            # Last write wins: only the newest snapshot matters, and
            # compaction re-emits exactly one.  _apply runs during
            # __init__ replay or under the caller's lock.
            self._burst = {  # lint: unlocked
                "scores": dict(event.get("scores") or {}),
                "at": event.get("at")}
            return
        if kind in ("submit", "snapshot"):
            record = {key: value for key, value in event.items()
                      if key != "type"}
            record.setdefault("entries", [])
            record.setdefault("retries", 0)
            self._records[record["job_id"]] = record
            return
        job_id = event.get("job_id")
        record = self._records.get(job_id)
        if kind == "forget":
            self._records.pop(job_id, None)
            return
        if record is None:
            return  # event for an already-forgotten job
        if kind == "state":
            record["state"] = event.get("state", record["state"])
            for key in ("started_at", "finished_at", "retries",
                        "response", "error"):
                if key in event:
                    record[key] = event[key]
        elif kind == "entry":
            record["entries"].append(event.get("record", {}))

    def load(self) -> List[Dict[str, object]]:
        with self._lock:
            return [dict(record, entries=list(record["entries"]))
                    for record in self._records.values()]

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def _append(self, event: Dict[str, object]) -> None:
        """Write one event line, flushed; auto-compacts past threshold.

        Caller holds no lock or the store lock; this method takes the
        lock itself only from public entry points — internal callers
        already hold it.
        """
        self._stream.write(json.dumps(event, separators=(",", ":"))
                           + "\n")
        self._stream.flush()
        self._lines += 1
        self.appended += 1
        if self._lines >= self.compact_threshold:
            self._compact_locked()

    def record_submit(self, job) -> None:
        with self._lock:
            if self._closed:
                return
            snapshot = job_snapshot(job)
            self._records[job.job_id] = snapshot
            self._append(dict(snapshot, type="submit"))

    def record_transition(self, job) -> None:
        with self._lock:
            if self._closed:
                return
            record = self._records.get(job.job_id)
            if record is None:
                return
            event: Dict[str, object] = {
                "type": "state",
                "job_id": job.job_id,
                "state": job.state,
                "started_at": job.started_at,
                "finished_at": job.finished_at,
                "retries": getattr(job, "retries", 0),
            }
            if job.response is not None:
                event["response"] = job.response
            if job.error is not None:
                event["error"] = job.error
            self._apply(event)
            self._append(event)

    def record_entry(self, job_id: str,
                     record: Mapping[str, object]) -> None:
        with self._lock:
            if self._closed:
                return
            if job_id not in self._records:
                return
            event = {"type": "entry", "job_id": job_id,
                     "record": dict(record)}
            self._apply(event)
            self._append(event)

    def forget(self, job_ids) -> None:
        """GC hook: drop jobs from the live set, journaling the drop.

        Without this the WAL would grow one DONE payload per job the
        manager has long since garbage-collected; the forget events let
        the next compaction discard them for good.
        """
        with self._lock:
            if self._closed:
                return
            for job_id in job_ids:
                if job_id in self._records:
                    self._records.pop(job_id, None)
                    self._append({"type": "forget", "job_id": job_id})

    def record_burst(self, scores: Mapping[str, float],
                     at: float) -> None:
        with self._lock:
            if self._closed:
                return
            snapshot = {"scores": {tenant: float(score)
                                   for tenant, score in scores.items()},
                        "at": float(at)}
            self._burst = snapshot
            self._append(dict(snapshot, type="burst"))

    def load_burst(self) -> Optional[Dict[str, object]]:
        with self._lock:
            if self._burst is None:
                return None
            return {"scores": dict(self._burst["scores"]),
                    "at": self._burst["at"]}

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _compact_locked(self) -> None:
        """Rewrite the WAL as header + one snapshot per live job.

        Atomic: write to a temp file, fsync, rename over the WAL —
        a crash mid-compaction leaves either the old or the new
        journal, never a half-written one.
        """
        tmp = self.path.with_suffix(".wal.tmp")
        with open(tmp, "w", encoding="utf-8") as stream:
            stream.write(json.dumps({"type": "header",
                                     "version": STORE_VERSION},
                                    separators=(",", ":")) + "\n")
            for record in self._records.values():
                stream.write(json.dumps(dict(record, type="snapshot"),
                                        separators=(",", ":")) + "\n")
            if self._burst is not None:
                stream.write(json.dumps(dict(self._burst, type="burst"),
                                        separators=(",", ":")) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        self._stream.close()
        os.replace(tmp, self.path)
        self._stream = open(self.path, "a", encoding="utf-8")
        self._lines = (1 + len(self._records)
                       + (1 if self._burst is not None else 0))
        self.compactions += 1

    def compact(self) -> int:
        """Force a compaction now; returns the resulting line count."""
        with self._lock:
            if self._closed:
                return self._lines
            self._compact_locked()
            return self._lines

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Freeze the journal: further events are dropped.

        Also the crash-simulation seam — a "crashed" manager closes its
        store first, so nothing its still-running workers do afterwards
        is journaled (exactly like a process that died)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stream.close()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "kind": "jsonl",
                "path": str(self.path),
                "live_jobs": len(self._records),
                "wal_lines": self._lines,
                "compact_threshold": self.compact_threshold,
                "compactions": self.compactions,
                "appended": self.appended,
                "replayed": self.replayed,
                "torn_lines": self.torn_lines,
                "closed": self._closed,
            }

    def __repr__(self) -> str:
        return (f"JsonlJobStore({str(self.path)!r}, "
                f"live_jobs={len(self._records)}, lines={self._lines})")
