"""Fair-share scheduling: burst-score decay + composite pop priority.

The pre-tenancy queue popped by raw priority int — one tenant
submitting 500 jobs starved everyone behind it for the whole backlog.
The :class:`FairShareScheduler` replaces that with a composite score,
modeled on the mqc3-scheduler job manager's factor-weight design:

``score(job) = priority·W_p + role_weight·W_r + age·W_a + urgency
− burst·W_b``

* **priority** — the client-supplied int, still honored (ties between
  equally-situated tenants resolve exactly as before).
* **role weight** — the tenant's :data:`~repro.tenancy.tenants.ROLE_WEIGHTS`
  entry: admin work outranks standard outranks batch.
* **age** — seconds since enqueue, so nothing starves forever.
* **urgency** — grows as a job with a ``deadline_seconds`` budget burns
  through it, up to ``urgency_weight`` at the deadline.
* **burst** — the tenant's :class:`BurstScoreManager` score: every
  submission adds its cost, and the sum decays exponentially with a
  configurable half-life.  A tenant that just burst 500 jobs scores
  ~500 lower than a quiet tenant's fresh submission — and, half-life by
  half-life, decays back to parity instead of being punished forever.

All time flows through one injectable ``clock`` (default
``time.monotonic``), so fairness tests run on a deterministic fake
clock with no sleeps.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.exceptions import ServiceError
from repro.telemetry.timing import half_life_decay

#: Default burst-score half-life, seconds.  After one half-life of
#: silence a tenant's accumulated burst penalty halves.
DEFAULT_HALF_LIFE = 30.0

#: Burst contributions below this are treated as fully decayed, so the
#: score table cannot grow one stale float per tenant forever.
_BURST_EPSILON = 1e-9


class BurstScoreManager:
    """Per-tenant activity scores with exponential half-life decay.

    Each recorded submission adds its ``cost`` to the tenant's score;
    between observations the score decays by ``0.5 ** (dt / half_life)``.
    The decay is applied lazily on read/write, so the manager is O(1)
    per operation regardless of history length.
    """

    def __init__(self, half_life: float = DEFAULT_HALF_LIFE, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not half_life > 0:
            raise ServiceError(f"burst half-life must be > 0, "
                               f"got {half_life}")
        self.half_life = half_life
        self._clock = clock
        self._lock = threading.Lock()
        #: tenant name -> (score at `at`, `at`).
        self._scores: Dict[str, Tuple[float, float]] = {}
        self.recorded = 0

    def _decayed(self, tenant: str, now: float) -> float:
        score, at = self._scores.get(tenant, (0.0, now))
        if score <= 0.0:
            return 0.0
        return score * half_life_decay(now - at, self.half_life)

    # ------------------------------------------------------------------
    def record(self, tenant: str, cost: float = 1.0) -> float:
        """Charge one submission (``cost`` ~ job count) to ``tenant``;
        returns the tenant's new score."""
        if cost < 0:
            raise ServiceError(f"burst cost must be >= 0, got {cost}")
        now = self._clock()
        with self._lock:
            score = self._decayed(tenant, now) + cost
            self._scores[tenant] = (score, now)
            self.recorded += 1
            return score

    def score(self, tenant: str) -> float:
        """The tenant's current decayed score (0.0 when never seen)."""
        now = self._clock()
        with self._lock:
            return self._decayed(tenant, now)

    def scores(self) -> Dict[str, float]:
        """Snapshot of every tracked tenant's current score, dropping
        fully-decayed entries from the table as a side effect."""
        now = self._clock()
        with self._lock:
            fresh = {tenant: self._decayed(tenant, now)
                     for tenant in self._scores}
            self._scores = {tenant: (score, now)
                            for tenant, score in fresh.items()
                            if score > _BURST_EPSILON}
            return {tenant: score for tenant, score in fresh.items()
                    if score > _BURST_EPSILON}

    def restore(self, scores: Mapping[str, float],
                elapsed: float = 0.0) -> Dict[str, float]:
        """Re-seed journaled scores after a restart, decayed by downtime.

        ``elapsed`` is the *wall-clock* seconds since the snapshot was
        journaled — the monotonic clock does not survive a restart, so
        the decay earned while the server was down is applied here,
        once, before the scores re-enter the monotonic domain.  Entries
        decayed below the epsilon stay out of the table; returns what
        was actually restored.  A flooding tenant's penalty therefore
        survives a crash but still ages out on the normal half-life
        schedule.
        """
        now = self._clock()
        factor = half_life_decay(max(0.0, elapsed), self.half_life)
        restored: Dict[str, float] = {}
        with self._lock:
            for tenant, score in scores.items():
                decayed = float(score) * factor
                if decayed > _BURST_EPSILON:
                    self._scores[tenant] = (decayed, now)
                    restored[tenant] = decayed
        return restored

    def __repr__(self) -> str:
        return (f"BurstScoreManager(half_life={self.half_life}, "
                f"tenants={len(self._scores)})")


class FairShareScheduler:
    """Composite pop-priority over queued jobs.

    Plug one into a :class:`~repro.queue.queue.JobQueue` (via
    :class:`~repro.queue.manager.JobManager`) and ``pop`` returns the
    highest-*scoring* waiting job instead of the highest raw priority
    int; scores are computed at pop time, so burst decay and aging keep
    reordering the backlog while it waits.

    Args:
        half_life: Burst-score half-life, seconds (ignored when an
            explicit ``burst`` manager is supplied).
        priority_weight: Weight of the client-supplied priority int.
        role_weight: Weight of the tenant's role weight.
        age_weight: Score per second of queue residence (anti-
            starvation; 0.01/s means ~100 s of waiting outranks one
            priority point).
        urgency_weight: Ceiling of the deadline-urgency term.
        burst_weight: Weight of the decaying per-tenant burst penalty.
        clock: Time source for age, urgency, and burst decay.
        burst: Explicit :class:`BurstScoreManager` to share/observe.
    """

    def __init__(self, *, half_life: float = DEFAULT_HALF_LIFE,
                 priority_weight: float = 1.0,
                 role_weight: float = 1.0,
                 age_weight: float = 0.01,
                 urgency_weight: float = 2.0,
                 burst_weight: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 burst: Optional[BurstScoreManager] = None) -> None:
        self.priority_weight = priority_weight
        self.role_weight = role_weight
        self.age_weight = age_weight
        self.urgency_weight = urgency_weight
        self.burst_weight = burst_weight
        self.clock = clock
        self.burst = burst or BurstScoreManager(half_life, clock=clock)

    # ------------------------------------------------------------------
    def on_push(self, job, record_burst: bool = True) -> None:
        """Queue hook: stamp the enqueue time and charge the burst.

        ``record_burst=False`` is the store-recovery path — re-enqueuing
        a restart's surviving backlog must not penalize its tenants as
        if they had just submitted it all again.
        """
        job.enqueued_at = self.clock()
        if record_burst:
            self.burst.record(self._tenant_name(job), self._cost(job))

    @staticmethod
    def _tenant_name(job) -> str:
        tenant = getattr(job, "tenant", None)
        return tenant.name if tenant is not None else "anonymous"

    @staticmethod
    def _cost(job) -> float:
        """Burst cost of one submission: the number of compile jobs it
        expands to (a 500-entry sweep is 500 units of burst, not 1)."""
        jobs = job.payload.get("jobs")
        if isinstance(jobs, list) and jobs:
            return float(len(jobs))
        spec = job.payload.get("spec")
        if isinstance(spec, dict):
            benchmarks = spec.get("benchmarks") or [None]
            machines = spec.get("machines") or [None]
            policies = spec.get("policies") or [None]
            scales = spec.get("scales") or [None]
            return float(max(1, len(benchmarks) * len(machines)
                             * len(policies) * len(scales)))
        return 1.0

    def restore_burst(self, scores: Mapping[str, float],
                      elapsed: float = 0.0) -> Dict[str, float]:
        """Recovery hook: re-seed a journaled burst-score snapshot (see
        :meth:`BurstScoreManager.restore`)."""
        return self.burst.restore(scores, elapsed)

    # ------------------------------------------------------------------
    def score(self, job, now: Optional[float] = None) -> float:
        """The job's composite pop priority; higher pops first."""
        if now is None:
            now = self.clock()
        tenant = getattr(job, "tenant", None)
        weight = tenant.role_weight if tenant is not None else 1.0
        enqueued = getattr(job, "enqueued_at", None)
        age = max(0.0, now - enqueued) if enqueued is not None else 0.0
        score = (self.priority_weight * job.priority
                 + self.role_weight * weight
                 + self.age_weight * age)
        deadline = getattr(job, "deadline_seconds", None)
        if deadline:
            score += self.urgency_weight * min(1.0, age / deadline)
        score -= self.burst_weight * self.burst.score(
            self._tenant_name(job))
        return score

    def stats(self) -> Dict[str, object]:
        """JSON-compatible knob + burst telemetry."""
        return {
            "half_life": self.burst.half_life,
            "weights": {
                "priority": self.priority_weight,
                "role": self.role_weight,
                "age": self.age_weight,
                "urgency": self.urgency_weight,
                "burst": self.burst_weight,
            },
            "burst_scores": {tenant: round(score, 6) for tenant, score
                             in sorted(self.burst.scores().items())},
        }

    def __repr__(self) -> str:
        return (f"FairShareScheduler(half_life={self.burst.half_life}, "
                f"age_weight={self.age_weight}, "
                f"burst_weight={self.burst_weight})")
