"""Principals: tenants, roles, API keys, and the registry resolving them.

Every request to the compilation service runs on behalf of a
:class:`Tenant` — a named principal with a role (which sets its
fair-share weight), an optional API key, and optional quota caps.  The
:class:`TenantRegistry` is the authentication seam: it maps the
``X-Repro-Key`` request header to a tenant record, mapping a *missing*
key to a configurable default tenant so anonymous clients keep working
exactly as before multi-tenancy existed.

Registries load from a plain JSON document (file, dict, or the
``REPRO_TENANTS`` environment variable)::

    {
      "default": {"name": "anonymous", "role": "standard"},
      "tenants": [
        {"name": "alice", "role": "admin",    "api_key": "ak-alice",
         "max_queued": 64},
        {"name": "bulk",  "role": "batch",    "api_key": "ak-bulk",
         "max_queued": 8}
      ]
    }

API keys are opaque strings; the registry never logs or serializes them
back out (``to_dict`` redacts), so a ``/stats`` payload cannot leak
credentials.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.exceptions import AuthError, ServiceError

#: Request header carrying the API key.
AUTH_HEADER = "X-Repro-Key"

#: Role name -> fair-share weight.  A higher weight pops sooner under
#: the fair-share scheduler; ``batch`` work yields to interactive roles.
ROLE_WEIGHTS: Dict[str, float] = {
    "admin": 4.0,
    "standard": 1.0,
    "batch": 0.25,
}

DEFAULT_ROLE = "standard"

#: Name of the built-in principal keyless requests resolve to.
ANONYMOUS = "anonymous"

#: Environment variable ``TenantRegistry.from_env`` reads: either a path
#: to a registry JSON file or the JSON document itself.
TENANTS_ENV = "REPRO_TENANTS"


@dataclass(frozen=True)
class Tenant:
    """One principal: identity, role, and quota caps.

    Attributes:
        name: Stable identity; the key for burst scores, per-tenant
            queue depth, and telemetry.
        role: One of :data:`ROLE_WEIGHTS`; sets the fair-share weight.
        api_key: Credential resolving to this tenant, or None for the
            keyless default tenant.
        max_queued: Per-tenant cap on *waiting* jobs; submissions beyond
            it are rejected with a structured 429
            (:class:`~repro.exceptions.QuotaExceededError`) while other
            tenants keep submitting.  None means no per-tenant cap
            (the global queue capacity still applies).
    """

    name: str
    role: str = DEFAULT_ROLE
    api_key: Optional[str] = field(default=None, repr=False)
    max_queued: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ServiceError(f"tenant name must be a non-empty string, "
                               f"got {self.name!r}")
        if self.role not in ROLE_WEIGHTS:
            raise ServiceError(
                f"tenant {self.name!r} has unknown role {self.role!r}; "
                f"expected one of {sorted(ROLE_WEIGHTS)}")
        if self.max_queued is not None and self.max_queued < 1:
            raise ServiceError(
                f"tenant {self.name!r} max_queued must be >= 1, "
                f"got {self.max_queued}")

    @property
    def role_weight(self) -> float:
        """Fair-share weight of this tenant's role."""
        return ROLE_WEIGHTS[self.role]

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible record; the API key is deliberately redacted
        so telemetry and journals never leak credentials."""
        return {
            "name": self.name,
            "role": self.role,
            "max_queued": self.max_queued,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "Tenant":
        """Rebuild a tenant from a registry/journal record."""
        if not isinstance(record, Mapping):
            raise ServiceError(f"tenant record must be an object, "
                               f"got {record!r}")
        unknown = set(record) - {"name", "role", "api_key", "max_queued"}
        if unknown:
            raise ServiceError(
                f"tenant record has unknown field(s) {sorted(unknown)}; "
                f"expected name/role/api_key/max_queued")
        return cls(
            name=str(record.get("name", "")),
            role=str(record.get("role", DEFAULT_ROLE)),
            api_key=record.get("api_key"),
            max_queued=record.get("max_queued"),
        )


class TenantRegistry:
    """Maps API keys to tenants; the service's authentication seam.

    Args:
        tenants: Keyed :class:`Tenant` records.  Every entry needs an
            ``api_key`` (the keyless principal is the ``default``);
            names and keys must be unique.
        default: The tenant keyless requests resolve to; defaults to an
            uncapped ``standard``-role tenant named
            ``"anonymous"``, so pre-tenancy clients work unchanged.
    """

    def __init__(self, tenants: Sequence[Tenant] = (), *,
                 default: Optional[Tenant] = None) -> None:
        self.default = default or Tenant(ANONYMOUS)
        self._by_key: Dict[str, Tenant] = {}
        self._by_name: Dict[str, Tenant] = {self.default.name: self.default}
        for tenant in tenants:
            if tenant.api_key is None:
                raise ServiceError(
                    f"tenant {tenant.name!r} has no api_key; only the "
                    f"default tenant may be keyless")
            if tenant.name in self._by_name:
                raise ServiceError(
                    f"duplicate tenant name {tenant.name!r} in registry")
            if tenant.api_key in self._by_key:
                raise ServiceError(
                    f"tenant {tenant.name!r} reuses another tenant's "
                    f"api_key")
            self._by_key[tenant.api_key] = tenant
            self._by_name[tenant.name] = tenant

    # ------------------------------------------------------------------
    def resolve(self, api_key: Optional[str]) -> Tenant:
        """The principal behind an ``X-Repro-Key`` header value.

        A missing/empty key resolves to the default tenant (anonymous
        clients keep working); a key that matches no registered tenant
        raises :class:`~repro.exceptions.AuthError` (HTTP 401).
        """
        if not api_key:
            return self.default
        tenant = self._by_key.get(api_key)
        if tenant is None:
            raise AuthError(
                f"unknown API key (header {AUTH_HEADER}); "
                f"{len(self._by_key)} tenant key(s) registered")
        return tenant

    def get(self, name: str) -> Optional[Tenant]:
        """The tenant registered under ``name``, or None.

        Used by job-store recovery to re-attach restored jobs to their
        live registry records (falling back to the journaled snapshot
        when a tenant was removed between restarts).
        """
        return self._by_name.get(name)

    def names(self) -> List[str]:
        """Registered tenant names, default first."""
        return list(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._by_name.values())

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary with API keys redacted."""
        return {
            "default": self.default.to_dict(),
            "tenants": [tenant.to_dict() for tenant in self
                        if tenant is not self.default],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TenantRegistry":
        """Build a registry from the documented JSON shape."""
        if not isinstance(payload, Mapping):
            raise ServiceError("tenant registry must be a JSON object with "
                               "a 'tenants' list")
        unknown = set(payload) - {"tenants", "default"}
        if unknown:
            raise ServiceError(
                f"tenant registry has unknown field(s) {sorted(unknown)}; "
                f"expected 'tenants' and optional 'default'")
        records = payload.get("tenants", [])
        if not isinstance(records, list):
            raise ServiceError("'tenants' must be a list of tenant records")
        default = None
        if payload.get("default") is not None:
            default = Tenant.from_dict(payload["default"])
        return cls([Tenant.from_dict(record) for record in records],
                   default=default)

    @classmethod
    def from_file(cls, path: str) -> "TenantRegistry":
        """Load a registry from a JSON file (the ``--tenants`` flag)."""
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
        except OSError as error:
            raise ServiceError(f"cannot read tenant registry {path!r}: "
                               f"{error}") from None
        except ValueError as error:
            raise ServiceError(f"tenant registry {path!r} is not valid "
                               f"JSON: {error}") from None
        return cls.from_dict(payload)

    @classmethod
    def from_env(cls, variable: str = TENANTS_ENV) -> "TenantRegistry":
        """Load from ``$REPRO_TENANTS``: a file path or inline JSON.

        An unset/empty variable yields the default (anonymous-only)
        registry.
        """
        value = os.environ.get(variable, "").strip()
        if not value:
            return cls()
        if value.lstrip().startswith("{"):
            try:
                payload = json.loads(value)
            except ValueError as error:
                raise ServiceError(
                    f"${variable} looks like inline JSON but does not "
                    f"parse: {error}") from None
            return cls.from_dict(payload)
        return cls.from_file(value)

    def __repr__(self) -> str:
        return (f"TenantRegistry(tenants={len(self._by_key)}, "
                f"default={self.default.name!r})")


def coerce_registry(tenants) -> TenantRegistry:
    """Normalize the service-facing ``tenants=`` argument.

    Accepts a ready :class:`TenantRegistry`, a registry-shaped mapping,
    a path to a JSON file, or None — which falls back to
    ``$REPRO_TENANTS`` (path or inline JSON), yielding the anonymous-only
    registry when that is unset.
    """
    if tenants is None:
        return TenantRegistry.from_env()
    if isinstance(tenants, TenantRegistry):
        return tenants
    if isinstance(tenants, Mapping):
        return TenantRegistry.from_dict(tenants)
    if isinstance(tenants, (str, os.PathLike)):
        return TenantRegistry.from_file(os.fspath(tenants))
    raise ServiceError(f"tenants must be a TenantRegistry, mapping, or "
                       f"path, got {type(tenants).__name__}")
