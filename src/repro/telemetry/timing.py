"""Monotonic timing primitives: phase timers and decayed rate gauges.

Everything here measures *durations*, so only :func:`time.monotonic` /
:func:`time.perf_counter` (or an injected test clock) are acceptable —
lint rule LR005 enforces that for this package and for the compiler's
phase timers.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List


def half_life_decay(elapsed: float, half_life: float) -> float:
    """The exponential decay factor after ``elapsed`` seconds.

    Shared by the fair-share burst scores
    (:class:`repro.tenancy.fairshare.BurstScoreManager`) and
    :class:`EwmaRate`, so "half-life" means exactly the same thing on
    every decayed quantity the service reports.
    """
    if elapsed <= 0.0:
        return 1.0
    return 0.5 ** (elapsed / half_life)


class PhaseTimer:
    """Stack-based phase timer with *exclusive* (self-time) attribution.

    Pushing an inner phase pauses the outer one, so the per-phase
    seconds sum to (almost exactly) the total wall time of the outer
    span — a nested ``allocation`` inside ``reclamation`` charges
    allocation, not both.  Built for hot paths: ``push``/``pop`` are
    two clock reads and a dict update, no context-manager machinery.

    Args:
        clock: Monotonic time source (injectable for tests).
    """

    __slots__ = ("_clock", "_stack", "seconds")

    def __init__(self, *,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        #: Active phases, innermost last: ``[name, segment_start]``.
        self._stack: List[List] = []
        #: Accumulated exclusive seconds per phase name.
        self.seconds: Dict[str, float] = {}

    def push(self, phase: str) -> None:
        now = self._clock()
        stack = self._stack
        if stack:
            top = stack[-1]
            self.seconds[top[0]] = self.seconds.get(top[0], 0.0) \
                + (now - top[1])
            top[1] = now
        stack.append([phase, now])

    def pop(self) -> None:
        now = self._clock()
        name, started = self._stack.pop()
        self.seconds[name] = self.seconds.get(name, 0.0) + (now - started)
        if self._stack:
            self._stack[-1][1] = now  # resume the outer phase

    @property
    def depth(self) -> int:
        return len(self._stack)


class EwmaRate:
    """Exponentially-decayed events-per-second gauge.

    Keeps a half-life-decayed event count; at a steady rate ``r`` the
    decayed count converges to ``r * tau`` (``tau = half_life / ln 2``),
    so ``rate() = count / tau`` reads the recent throughput and decays
    toward zero when traffic stops.  Decay is applied lazily on
    ``mark``/``rate``, making the gauge exact under an injected frozen
    clock (two reads with no time passing are identical).
    """

    _LN2 = 0.6931471805599453

    def __init__(self, half_life: float = 30.0, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if half_life <= 0:
            raise ValueError(f"half_life must be > 0, got {half_life}")
        self.half_life = float(half_life)
        self._clock = clock
        self._count = 0.0
        self._updated = clock()
        self.total = 0

    def _decay_to_now(self) -> None:
        now = self._clock()
        self._count *= half_life_decay(now - self._updated,
                                       self.half_life)
        self._updated = now

    def mark(self, count: int = 1) -> None:
        """Record ``count`` events now."""
        self._decay_to_now()
        self._count += count
        self.total += count

    def rate(self) -> float:
        """Current decayed throughput in events per second."""
        self._decay_to_now()
        return self._count * self._LN2 / self.half_life
