"""Stdlib-only metrics core: counters, gauges, histograms, a registry,
and a Prometheus text-exposition renderer.

Design constraints, in order:

* **Deterministic rendering.**  Two scrapes of the same registry state
  are byte-identical: families render sorted by name, samples sorted by
  label values, numbers format through one canonical function, and the
  exposition carries no timestamps.  (The service's frozen-clock scrape
  test depends on this.)
* **Thread-safe.**  Every family shares one registry lock; increments
  and scrapes can race freely with worker threads.
* **Sampled counters.**  The service stack already keeps authoritative
  counters (queue pushed/rejected, session cache hits, tenant
  lifecycle tallies).  Rather than double-count, those are *sampled*
  into registry families at scrape time via :meth:`Counter.set`, so
  ``/stats`` and ``/metrics`` can never disagree — both read the same
  snapshot.
* **Fixed bucket edges.**  Histograms use deterministic, fixed edges
  (:data:`DEFAULT_BUCKETS`), never adaptive ones, so merged fleet
  scrapes line up bucket-for-bucket across workers.

The module also ships a *minimal* exposition parser and a fleet-merge
helper (:func:`parse_exposition`, :func:`merge_expositions`) used by
:meth:`repro.cluster.ClusterTopology.fleet_metrics` to merge every
worker's scrape under ``worker=<url>`` labels.  The test suite keeps
its own independent parser, so the renderer is not checked against
itself.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

#: Fixed histogram bucket edges (seconds), chosen to straddle the
#: microsecond-to-minutes range compile phases and scrapes live in.
#: Deterministic and identical on every worker, so fleet merges align.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def format_value(value: float) -> str:
    """Canonical, deterministic number formatting for the exposition.

    Integral values render without a fraction (``3`` not ``3.0``) and
    everything else through :func:`repr`, which round-trips floats
    exactly — two scrapes of one state can never differ in formatting.
    """
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(text: str) -> str:
    return (text.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _label_block(pairs: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(f'{key}="{_escape_label(value)}"'
                        for key, value in pairs)
    return "{" + rendered + "}" if rendered else ""


class _Child:
    """One labeled series inside a family; shares the registry lock."""

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock


class Counter(_Child):
    """Monotonic counter.  ``set`` exists for *sampling* an external
    authoritative counter into the registry and never moves backwards
    (a restart that rebuilds state lower is clamped, not negated)."""

    def __init__(self, lock: threading.RLock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        """Sample an external monotonic counter (scrape-time sync)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Child):
    """A value that can go anywhere: depths, scores, rates, sizes."""

    def __init__(self, lock: threading.RLock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Child):
    """Fixed-bucket histogram (cumulative ``le`` semantics at render)."""

    def __init__(self, lock: threading.RLock,
                 edges: Tuple[float, ...]) -> None:
        super().__init__(lock)
        self._edges = edges
        self._counts = [0] * (len(edges) + 1)  # last bucket is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_edge, count)`` pairs ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out: List[Tuple[float, int]] = []
        for edge, count in zip(self._edges, counts):
            total += count
            out.append((edge, total))
        out.append((math.inf, total + counts[-1]))
        return out


class MetricFamily:
    """A named metric plus its labeled children.

    An unlabeled family has exactly one child (empty label tuple) and
    proxies the child's mutators, so ``registry.counter("x").inc()``
    works without a ``labels()`` hop.
    """

    def __init__(self, name: str, help_text: str, kind: str,
                 labelnames: Tuple[str, ...], lock: threading.RLock,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label == "le":
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._buckets = tuple(buckets)
        if self.kind == "histogram" and not all(
                a < b for a, b in zip(self._buckets, self._buckets[1:])):
            raise ValueError("histogram bucket edges must increase")
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self) -> _Child:
        if self.kind == "counter":
            return Counter(self._lock)
        if self.kind == "gauge":
            return Gauge(self._lock)
        return Histogram(self._lock, self._buckets)

    def labels(self, **label_values: str):
        """Get or create the child for one label-value combination."""
        if set(label_values) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(label_values))}")
        key = tuple(str(label_values[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    # Unlabeled-family conveniences -----------------------------------
    def _solo(self) -> _Child:
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; use .labels()")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)  # type: ignore[attr-defined]

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        self._solo().set(value)  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        self._solo().observe(value)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        return self._solo().value  # type: ignore[attr-defined]

    @property
    def count(self) -> int:
        return self._solo().count  # type: ignore[attr-defined]

    @property
    def sum(self) -> float:
        return self._solo().sum  # type: ignore[attr-defined]

    def buckets(self) -> List[Tuple[float, int]]:
        return self._solo().buckets()  # type: ignore[attr-defined]

    # Introspection ----------------------------------------------------
    def samples(self) -> Dict[Tuple[str, ...], float]:
        """Label-values tuple -> current value (histograms: the sum)."""
        with self._lock:
            children = dict(self._children)
        out: Dict[Tuple[str, ...], float] = {}
        for key, child in sorted(children.items()):
            if isinstance(child, Histogram):
                out[key] = child.sum
            else:
                out[key] = child.value  # type: ignore[attr-defined]
        return out

    def render(self) -> List[str]:
        """Exposition lines for this family (sorted, deterministic)."""
        lines = [f"# HELP {self.name} {_escape_help(self.help)}",
                 f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            children = sorted(self._children.items())
        for key, child in children:
            pairs = list(zip(self.labelnames, key))
            if isinstance(child, Histogram):
                for edge, cumulative in child.buckets():
                    bucket_pairs = pairs + [("le", format_value(edge))]
                    lines.append(f"{self.name}_bucket"
                                 f"{_label_block(bucket_pairs)} "
                                 f"{cumulative}")
                lines.append(f"{self.name}_sum{_label_block(pairs)} "
                             f"{format_value(child.sum)}")
                lines.append(f"{self.name}_count{_label_block(pairs)} "
                             f"{child.count}")
            else:
                value = child.value  # type: ignore[attr-defined]
                lines.append(f"{self.name}{_label_block(pairs)} "
                             f"{format_value(value)}")
        return lines


class MetricsRegistry:
    """Process-wide (or per-component) family registry.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for an
    existing name returns the existing family (and re-declaring it with
    a different shape is an error, not a silent fork).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, name: str, help_text: str, kind: str,
                labelnames: Tuple[str, ...],
                buckets: Tuple[float, ...] = DEFAULT_BUCKETS
                ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind \
                        or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}, cannot "
                        f"re-register as {kind}{tuple(labelnames)}")
                return family
            family = MetricFamily(name, help_text, kind,
                                  tuple(labelnames), self._lock, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Tuple[str, ...] = (),
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> MetricFamily:
        return self._family(name, help_text, "histogram", labelnames,
                            buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    def render(self) -> str:
        """The full Prometheus text exposition (timestamp-free)."""
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, Dict[Tuple[str, ...], float]]:
        """Family name -> ``samples()`` map; one consistent read used
        to derive both ``/stats`` sections and ad-hoc assertions."""
        return {family.name: family.samples()
                for family in self.families()}


# ----------------------------------------------------------------------
# Minimal exposition parsing + fleet merge
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\s*$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(text: str) -> str:
    return (text.replace(r'\"', '"').replace(r"\n", "\n")
            .replace(r"\\", "\\"))


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text into a family map.

    Returns ``{family: {"help": str, "type": str, "samples":
    [(sample_name, [(label, value), ...], raw_value), ...]}}``.  Samples
    are attributed to the family whose header most recently preceded
    them (the shape this module's renderer and any conformant exporter
    produce).  Raw value strings are preserved so a merge never
    reformats another worker's numbers.
    """
    families: Dict[str, Dict[str, object]] = {}
    current: Optional[str] = None

    def family(name: str) -> Dict[str, object]:
        entry = families.get(name)
        if entry is None:
            entry = {"help": "", "type": "untyped", "samples": []}
            families[name] = entry
        return entry

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            family(name)["help"] = help_text
            current = name
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            family(name)["type"] = kind.strip()
            current = name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {line!r}")
        sample_name = match.group("name")
        labels = [(key, _unescape_label(value)) for key, value
                  in _LABEL_PAIR_RE.findall(match.group("labels") or "")]
        owner = current
        if owner is None or not sample_name.startswith(owner):
            owner = sample_name
        family(owner)["samples"].append(  # type: ignore[union-attr]
            (sample_name, labels, match.group("value")))
    return families


def merge_expositions(texts: Dict[str, str],
                      label: str = "worker") -> str:
    """Merge several workers' scrapes into one exposition.

    Every sample gains a ``label=<worker key>`` pair.  Families are
    deduplicated on their first HELP/TYPE header and rendered sorted by
    family name; within a family, samples keep each worker's original
    order (already deterministic, and histogram buckets must stay in
    increasing ``le`` order) with workers visited in sorted order — so
    merging the same fleet state twice is byte-identical regardless of
    dict order.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for worker in sorted(texts):
        for name, entry in parse_exposition(texts[worker]).items():
            target = merged.setdefault(
                name, {"help": entry["help"], "type": entry["type"],
                       "samples": []})
            for sample_name, pairs, raw in entry["samples"]:  # type: ignore[union-attr]
                tagged = [(label, worker)] + [
                    (key, value) for key, value in pairs if key != label]
                target["samples"].append(  # type: ignore[union-attr]
                    (sample_name, tagged, raw))
    lines: List[str] = []
    for name in sorted(merged):
        entry = merged[name]
        if entry["help"]:
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for sample_name, pairs, raw in entry["samples"]:  # type: ignore[union-attr]
            lines.append(f"{sample_name}{_label_block(pairs)} {raw}")
    return "\n".join(lines) + "\n" if lines else ""
