"""Trace-id minting and propagation (`X-Repro-Trace`).

A trace id is minted once at the outermost client — a
:class:`~repro.service.client.ServiceClient` or the cluster
coordinator — and rides the ``X-Repro-Trace`` header on every request,
onto every queued job record (journaled, so it survives restarts), and
through the coordinator to every shard a sweep fans out to.  One id
therefore stitches together the log lines and job records of a request
across the whole fleet.
"""

from __future__ import annotations

import re
import uuid
from typing import Optional

#: HTTP header carrying the trace id end to end.
TRACE_HEADER = "X-Repro-Trace"

#: Accepted wire format: short, printable, header/JSON/log-safe.
_TRACE_RE = re.compile(r"^[A-Za-z0-9_.\-]{1,64}$")


def new_trace_id() -> str:
    """Mint a fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


def valid_trace_id(value: object) -> bool:
    return isinstance(value, str) and bool(_TRACE_RE.match(value))


def coerce_trace_id(value: Optional[str]) -> str:
    """Return ``value`` when it is a well-formed trace id, else mint.

    Servers call this on the inbound header: a missing or malformed id
    never fails the request — the server just starts a fresh trace.
    """
    if value is not None and valid_trace_id(value):
        return value
    return new_trace_id()
