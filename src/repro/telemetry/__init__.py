"""repro.telemetry — stdlib-only metrics, phase timing, and tracing.

Three small pieces, one observability story:

* :mod:`repro.telemetry.metrics` — thread-safe Counter / Gauge /
  Histogram families in a :class:`MetricsRegistry`, rendered as
  deterministic Prometheus text exposition (plus a minimal parser and
  a fleet-merge helper for multi-worker scrapes);
* :mod:`repro.telemetry.timing` — :class:`PhaseTimer` (stack-based,
  exclusive attribution; the compiler's per-phase profiler) and
  :class:`EwmaRate` (half-life-decayed events/sec gauge);
* :mod:`repro.telemetry.trace` — ``X-Repro-Trace`` id minting and
  propagation helpers;
* :mod:`repro.telemetry.spans` — :class:`Span` / :class:`SpanRecorder`
  waterfalls on top of the trace ids, and the deterministic ASCII
  renderer behind the ``trace`` CLI subcommand;
* :mod:`repro.telemetry.events` — :class:`LogEvent` / :class:`EventLog`
  structured logging with automatic trace/span/tenant/job correlation,
  a human-readable stderr sink, and a rotating JSONL disk sink.
"""

from repro.telemetry.events import (
    LEVELS,
    EventLog,
    JsonlSink,
    LogEvent,
    format_event,
    read_events,
    stderr_sink,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    format_value,
    merge_expositions,
    parse_exposition,
)
from repro.telemetry.spans import (
    Span,
    SpanRecorder,
    child_span,
    current_span,
    record_compile_spans,
    render_waterfall,
)
from repro.telemetry.timing import (
    EwmaRate,
    PhaseTimer,
    half_life_decay,
)
from repro.telemetry.trace import (
    TRACE_HEADER,
    coerce_trace_id,
    new_trace_id,
    valid_trace_id,
)

__all__ = [
    "LEVELS",
    "EventLog",
    "JsonlSink",
    "LogEvent",
    "format_event",
    "read_events",
    "stderr_sink",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "format_value",
    "merge_expositions",
    "parse_exposition",
    "Span",
    "SpanRecorder",
    "child_span",
    "current_span",
    "record_compile_spans",
    "render_waterfall",
    "EwmaRate",
    "PhaseTimer",
    "half_life_decay",
    "TRACE_HEADER",
    "coerce_trace_id",
    "new_trace_id",
    "valid_trace_id",
]
