"""Structured event log: the third observability pillar.

Metrics (PR 8) aggregate, spans (PR 9) time — this module *narrates*.
A :class:`LogEvent` is one discrete thing that happened (a request
arrived, a job was shed, a cache tier hit, a finding was raised),
stamped with the same monotonic-anchored wall clock spans use and
correlated automatically: when a span is active in the current context,
the event inherits its ``trace_id`` and ``span_id``, so the ``trace``
CLI can interleave events into the span waterfall and ``logs --trace``
answers "what happened to this job" with one query.

Recording mirrors :class:`~repro.telemetry.spans.SpanRecorder`: a
bounded, thread-safe :class:`EventLog` ring keeps the most recent
events in memory (evictions are counted as *drops*, exported on
``/metrics``), and optional sinks fan each event out as it is emitted —
:func:`stderr_sink` for the classic human-readable server log line,
:class:`JsonlSink` for a durable JSONL file with size-capped rotation
and a torn-tail-tolerant reader (:func:`read_events`), the same WAL
discipline as the tenancy job store.

Event ids reuse the span-id scheme (random per-process prefix + a
counter) so fleet merges can dedup on ``(worker, event_id)`` without
per-event ``uuid4()`` cost on the hot path.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    TextIO)

from repro.telemetry.spans import _ANCHOR_MONO, _ANCHOR_WALL, current_span

__all__ = [
    "LEVELS",
    "LogEvent",
    "EventLog",
    "JsonlSink",
    "stderr_sink",
    "format_event",
    "read_events",
]

#: Severity levels, in ascending order of severity.
LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}

#: Default ring capacity — matches ``SpanRecorder``; at ~10 events per
#: job this keeps several hundred recent jobs narratable.
DEFAULT_CAPACITY = 4096

#: JSONL sink schema version (header line of every log file).
EVENTS_VERSION = 1

#: Default size cap before a :class:`JsonlSink` rotates its file.
DEFAULT_MAX_BYTES = 8 * 1024 * 1024

#: Random per-process prefix + a counter: event ids stay unique across
#: processes (fleet merges dedup on ``(worker, event_id)``) without a
#: per-event ``uuid4()`` on the emission path.
_ID_PREFIX = uuid.uuid4().hex[:8]
_ID_COUNTER = itertools.count(1)


def _new_event_id() -> str:
    """16-hex event id, unique across processes and threads."""
    return f"{_ID_PREFIX}{next(_ID_COUNTER) & 0xFFFFFFFF:08x}"


def _coerce_level(level: str) -> str:
    name = str(level).upper()
    if name not in _LEVEL_RANK:
        raise ValueError(f"unknown log level {level!r}; "
                         f"expected one of {LEVELS}")
    return name


class LogEvent:
    """One immutable structured log record.

    The timestamp is derived from ``perf_counter`` through the span
    layer's per-process wall-clock anchor — events never read the wall
    clock themselves, so their ordering is immune to NTP steps and
    merges cleanly with span ``start`` stamps on one time axis.
    """

    __slots__ = ("event_id", "ts", "level", "component", "message",
                 "fields", "trace_id", "span_id", "tenant", "job_id")

    def __init__(self, level: str, message: str, *,
                 component: str = "repro",
                 fields: Optional[Mapping[str, object]] = None,
                 trace_id: Optional[str] = None,
                 span_id: Optional[str] = None,
                 tenant: Optional[str] = None,
                 job_id: Optional[str] = None,
                 ts: Optional[float] = None,
                 event_id: Optional[str] = None) -> None:
        mono = time.perf_counter()
        object.__setattr__(self, "event_id", event_id or _new_event_id())
        object.__setattr__(self, "ts", float(
            _ANCHOR_WALL + (mono - _ANCHOR_MONO) if ts is None else ts))
        object.__setattr__(self, "level", _coerce_level(level))
        object.__setattr__(self, "component", str(component))
        object.__setattr__(self, "message", str(message))
        object.__setattr__(self, "fields", dict(fields or {}))
        object.__setattr__(self, "trace_id", trace_id)
        object.__setattr__(self, "span_id", span_id)
        object.__setattr__(self, "tenant", tenant)
        object.__setattr__(self, "job_id", job_id)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LogEvent is immutable")

    def to_dict(self) -> Dict[str, object]:
        return {
            "event_id": self.event_id,
            "ts": round(self.ts, 6),
            "level": self.level,
            "component": self.component,
            "message": self.message,
            "fields": dict(sorted(self.fields.items())),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "tenant": self.tenant,
            "job_id": self.job_id,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "LogEvent":
        return cls(
            str(record.get("level") or "INFO"),
            str(record.get("message") or ""),
            component=str(record.get("component") or "repro"),
            fields=record.get("fields") or {},  # type: ignore[arg-type]
            trace_id=record.get("trace_id"),  # type: ignore[arg-type]
            span_id=record.get("span_id"),  # type: ignore[arg-type]
            tenant=record.get("tenant"),  # type: ignore[arg-type]
            job_id=record.get("job_id"),  # type: ignore[arg-type]
            ts=float(record.get("ts") or 0.0),
            event_id=str(record.get("event_id") or "") or None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LogEvent({self.level}, {self.message!r}, "
                f"trace={self.trace_id}, tenant={self.tenant}, "
                f"job={self.job_id})")


def format_event(event: LogEvent) -> str:
    """The human-readable single-line form (the stderr sink format).

    ``<iso-utc> LEVEL component: message key=value ...`` with the
    correlation ids appended last, so a plain ``grep trace=<id>``
    still works on a text log.
    """
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(event.ts))
    micros = int(round((event.ts - int(event.ts)) * 1e6)) % 1000000
    parts = [f"{stamp}.{micros:06d}Z", f"{event.level:<7}",
             f"{event.component}:", event.message]
    for key in sorted(event.fields):
        parts.append(f"{key}={event.fields[key]}")
    if event.trace_id:
        parts.append(f"trace={event.trace_id}")
    if event.tenant:
        parts.append(f"tenant={event.tenant}")
    if event.job_id:
        parts.append(f"job={event.job_id}")
    return " ".join(parts)


def stderr_sink(stream: Optional[TextIO] = None
                ) -> Callable[[LogEvent], None]:
    """A sink writing :func:`format_event` lines to ``stream``
    (default: whatever ``sys.stderr`` is at emission time)."""

    def sink(event: LogEvent) -> None:
        out = stream if stream is not None else sys.stderr
        out.write(format_event(event) + "\n")

    return sink


class EventLog:
    """Bounded, thread-safe ring of structured log events.

    ``emit()`` pulls trace/span correlation from the active span
    context automatically; ``tenant``/``job_id`` are passed explicitly
    at the emission site (with a fallback to the active span's labels,
    which the server stamps on ``job.run`` spans).  Sinks run outside
    the ring lock on the emitting thread; a raising sink is counted,
    never propagated — logging must not break the logged path.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 level: str = "DEBUG",
                 sinks: Iterable[Callable[[LogEvent], None]] = ()) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.level = _coerce_level(level)
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._recorded = 0
        self._dropped = 0
        self._suppressed = 0
        self._sink_errors = 0
        self._by_level: Dict[str, int] = {name: 0 for name in LEVELS}
        self._sinks: List[Callable[[LogEvent], None]] = list(sinks)

    def add_sink(self, sink: Callable[[LogEvent], None]) -> None:
        with self._lock:
            self._sinks = self._sinks + [sink]

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, level: str, message: str, *,
             component: str = "repro",
             fields: Optional[Mapping[str, object]] = None,
             trace_id: Optional[str] = None,
             span_id: Optional[str] = None,
             tenant: Optional[str] = None,
             job_id: Optional[str] = None,
             ts: Optional[float] = None) -> Optional[LogEvent]:
        name = _coerce_level(level)
        if _LEVEL_RANK[name] < _LEVEL_RANK[self.level]:
            with self._lock:
                self._suppressed += 1
            return None
        active = current_span()
        if active is not None:
            if trace_id is None:
                trace_id = active.trace_id
            if span_id is None:
                span_id = active.span_id
            if job_id is None:
                job_id = active.labels.get("job_id")
            if tenant is None:
                tenant = active.labels.get("tenant")
        event = LogEvent(name, message, component=component,
                         fields=fields, trace_id=trace_id, span_id=span_id,
                         tenant=tenant, job_id=job_id, ts=ts)
        with self._lock:
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)
            self._recorded += 1
            self._by_level[name] += 1
            sinks = self._sinks
        for sink in sinks:
            try:
                sink(event)
            except Exception:
                with self._lock:
                    self._sink_errors += 1
        return event

    def debug(self, message: str, **kwargs) -> Optional[LogEvent]:
        return self.emit("DEBUG", message, **kwargs)

    def info(self, message: str, **kwargs) -> Optional[LogEvent]:
        return self.emit("INFO", message, **kwargs)

    def warning(self, message: str, **kwargs) -> Optional[LogEvent]:
        return self.emit("WARNING", message, **kwargs)

    def error(self, message: str, **kwargs) -> Optional[LogEvent]:
        return self.emit("ERROR", message, **kwargs)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def snapshot(self) -> List[LogEvent]:
        with self._lock:
            return list(self._events)

    def events(self, *, trace: Optional[str] = None,
               tenant: Optional[str] = None,
               level: Optional[str] = None,
               since: Optional[float] = None,
               limit: Optional[int] = None) -> List[LogEvent]:
        """Filtered view, deterministically ordered by (ts, event_id).

        ``level`` is a minimum severity; ``since`` a wall-clock lower
        bound (exclusive); ``limit`` keeps the **newest** N matches.
        """
        floor = _LEVEL_RANK[_coerce_level(level)] if level else 0
        out = []
        for event in self.snapshot():
            if trace and event.trace_id != trace:
                continue
            if tenant and event.tenant != tenant:
                continue
            if _LEVEL_RANK[event.level] < floor:
                continue
            # Compare in the microsecond-rounded domain clients see on
            # the wire (``to_dict`` rounds ``ts``): a caller paging with
            # a ``ts`` taken from a previous response must never get an
            # event that serializes equal to its cursor.
            if since is not None and round(event.ts, 6) <= since:
                continue
            out.append(event)
        out.sort(key=lambda e: (e.ts, e.event_id))
        if limit is not None and limit >= 0:
            out = out[-limit:] if limit else []
        return out

    def for_trace(self, trace_id: str) -> List[LogEvent]:
        return self.events(trace=trace_id)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {"capacity": self.capacity,
                    "buffered": len(self._events),
                    "recorded": self._recorded,
                    "dropped": self._dropped,
                    "suppressed": self._suppressed,
                    "sink_errors": self._sink_errors,
                    "by_level": dict(self._by_level)}

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


# ----------------------------------------------------------------------
# Durable JSONL sink
# ----------------------------------------------------------------------
class JsonlSink:
    """Append-only JSONL disk sink with size-capped rotation.

    Same WAL discipline as the tenancy job store: a version header
    line, one JSON object per event, flushed per append so a crash
    loses at most the torn tail (which :func:`read_events` tolerates).
    When the file passes ``max_bytes`` it is rotated to ``<path>.1``
    (replacing any previous rotation), so disk use is bounded at
    roughly ``2 * max_bytes`` per server.
    """

    def __init__(self, path, *, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes < 1024:
            raise ValueError("max_bytes must be >= 1024")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[TextIO] = None
        self._bytes = 0
        self._open_locked()

    def _open_locked(self) -> None:
        # Callers hold self._lock (or are the constructor, pre-sharing).
        exists = self.path.exists() and self.path.stat().st_size > 0
        self._fh = open(self.path, "a", encoding="utf-8")  # lint: unlocked
        self._bytes = self.path.stat().st_size  # lint: unlocked
        if not exists:
            header = json.dumps({"events_version": EVENTS_VERSION},
                                sort_keys=True) + "\n"
            self._fh.write(header)
            self._fh.flush()
            self._bytes += len(header.encode("utf-8"))  # lint: unlocked

    def __call__(self, event: LogEvent) -> None:
        line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
        with self._lock:
            if self._fh is None:
                raise ValueError("sink is closed")
            self._fh.write(line)
            self._fh.flush()
            self._bytes += len(line.encode("utf-8"))
            if self._bytes > self.max_bytes:
                self._rotate_locked()

    def _rotate_locked(self) -> None:
        assert self._fh is not None
        self._fh.close()
        rotated = self.path.with_name(self.path.name + ".1")
        os.replace(self.path, rotated)
        self._open_locked()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def read_events(path) -> Dict[str, object]:
    """Torn-tail-tolerant reader for a :class:`JsonlSink` file.

    Returns ``{"version", "events", "torn_lines"}``; unparseable lines
    (a crash mid-append) are skipped and counted, never fatal.  The
    header line is consumed as the version; a file written before the
    header existed replays as version 0.
    """
    path = Path(path)
    version = 0
    events: List[Dict[str, object]] = []
    torn = 0
    if not path.exists():
        return {"version": version, "events": events, "torn_lines": torn}
    with open(path, "r", encoding="utf-8") as fh:
        for index, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                torn += 1
                continue
            if not isinstance(record, dict):
                torn += 1
                continue
            if index == 0 and "events_version" in record:
                version = int(record["events_version"])
                continue
            events.append(record)
    return {"version": version, "events": events, "torn_lines": torn}
