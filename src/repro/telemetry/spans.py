"""Span layer: end-to-end waterfalls on top of the PR-8 trace ids.

A :class:`Span` is one timed operation inside a trace — client request,
server handler, queue wait, worker execution, cache tier, compile
phase.  Spans carry the ``(trace_id, span_id, parent_id)`` triple that
lets the ``trace`` CLI reassemble a waterfall across process and
machine boundaries, because every shard of a fan-out already shares one
trace id (PR 8).

Clock model
-----------
Spans time themselves with ``time.perf_counter()`` (monotonic — the
LR005 rule applies to this file) and are aligned to the wall clock only
at serialization, through **one wall-clock anchor per process** taken
at import.  That keeps durations immune to NTP steps while giving
cross-process merges a common (approximate) time base.

Recording
---------
Finished spans land in a bounded, thread-safe :class:`SpanRecorder`
ring buffer; when full, the oldest spans are evicted (and counted), so
a long-lived server keeps the most recent traces and never grows
without bound.  The active span travels in a :mod:`contextvars`
variable: :func:`child_span` is a no-op context manager when no span is
active, which is what keeps the instrumented compile path at zero cost
for plain library use (asserted < 2 % in
``benchmarks/test_bench_telemetry.py``).

Spans must be closed via context manager (``with recorder.span(...)``)
or built pre-finished via :meth:`SpanRecorder.add`; the LR006 lint rule
flags manual ``Span.start()`` calls that have no ``finally`` closing
them.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import itertools
import time
import uuid
from collections import deque
from typing import (Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple)

from repro.telemetry.trace import coerce_trace_id, new_trace_id

__all__ = [
    "Span",
    "SpanRecorder",
    "child_span",
    "current_span",
    "record_compile_spans",
    "render_waterfall",
]

#: One wall-clock anchor per process: wall time and monotonic time read
#: back-to-back at import.  ``Span.start_wall`` is derived as
#: ``anchor_wall + (start_mono - anchor_mono)`` so spans never read the
#: wall clock themselves.
_ANCHOR_WALL = time.time()  # lint: wall-clock  (one-time anchor, by design)
_ANCHOR_MONO = time.perf_counter()

#: Default ring-buffer capacity; at ~6 spans per compile job this keeps
#: several hundred recent jobs inspectable on a busy server.
DEFAULT_CAPACITY = 4096

_CURRENT: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_current_span", default=None)


#: Random per-process prefix + a counter: span ids stay unique across
#: processes (fleet merges dedup on them) at a fraction of a per-span
#: ``uuid4()`` — span minting sits on the hot compile path.
_ID_PREFIX = uuid.uuid4().hex[:8]
_ID_COUNTER = itertools.count(1)


def _new_span_id() -> str:
    """16-hex span id, unique across processes and threads."""
    return f"{_ID_PREFIX}{next(_ID_COUNTER) & 0xFFFFFFFF:08x}"


def current_span() -> Optional["Span"]:
    """The span active in this execution context, or ``None``."""
    return _CURRENT.get()


class Span:
    """One timed operation inside a trace.

    Times are monotonic (``perf_counter``); ``start_wall`` aligns the
    span to the process wall-clock anchor for cross-process merging.
    Close spans with ``with recorder.span(...)`` — the LR006 lint rule
    flags a manual :meth:`start` that has no ``finally`` closing it.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "labels",
                 "start_mono", "duration", "recorder", "_clock")

    def __init__(self, name: str, *, trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None,
                 labels: Optional[Mapping[str, str]] = None,
                 recorder: Optional["SpanRecorder"] = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.name = name
        self.trace_id = coerce_trace_id(trace_id)
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.labels: Dict[str, str] = dict(labels or {})
        self.recorder = recorder
        self.start_mono: Optional[float] = None
        self.duration: Optional[float] = None
        self._clock = clock

    def start(self) -> "Span":
        self.start_mono = self._clock()
        return self

    def finish(self) -> "Span":
        """Stamp the duration and hand the span to its recorder.

        Idempotent: a second call (context-manager exit after an
        explicit ``finish()``) neither re-stamps nor double-records.
        """
        if self.duration is None and self.start_mono is not None:
            self.duration = self._clock() - self.start_mono
            if self.recorder is not None:
                self.recorder.record(self)
        return self

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.finish()

    @property
    def start_wall(self) -> Optional[float]:
        """Start as wall-clock seconds via the process anchor."""
        if self.start_mono is None:
            return None
        return _ANCHOR_WALL + (self.start_mono - _ANCHOR_MONO)

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start_wall or 0.0, 6),
            "duration": round(self.duration or 0.0, 6),
            "labels": dict(sorted(self.labels.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"span={self.span_id}, parent={self.parent_id}, "
                f"duration={self.duration})")


class SpanRecorder:
    """Bounded, thread-safe ring buffer of finished spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)
        self._recorded = 0
        self._evicted = 0

    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self._evicted += 1
            self._spans.append(span)
            self._recorded += 1

    @contextlib.contextmanager
    def span(self, name: str, *, trace_id: Optional[str] = None,
             parent: Optional[Span] = None,
             parent_id: Optional[str] = None,
             labels: Optional[Mapping[str, str]] = None) -> Iterator[Span]:
        """Open a child span as the current context's active span.

        Trace id and parent default to the active span's; an explicit
        ``parent``/``parent_id`` (cross-thread handoff, e.g. queue
        worker picking up a handler-submitted job) overrides both.
        """
        active = _CURRENT.get()
        if parent is None and parent_id is None and active is not None:
            parent = active
        if parent is not None:
            parent_id = parent.span_id
            if trace_id is None:
                trace_id = parent.trace_id
        if trace_id is None:
            trace_id = active.trace_id if active is not None \
                else new_trace_id()
        span = Span(name, trace_id=trace_id, parent_id=parent_id,
                    labels=labels, recorder=self)
        token = _CURRENT.set(span)
        try:
            yield span.start()
        finally:
            span.finish()
            _CURRENT.reset(token)

    def add(self, name: str, *, trace_id: str,
            parent_id: Optional[str] = None,
            start_mono: Optional[float] = None,
            duration: float = 0.0,
            labels: Optional[Mapping[str, str]] = None) -> Span:
        """Record a synthesized, pre-finished span.

        For intervals measured elsewhere — queue wait reconstructed at
        worker pickup, compile phases bridged from ``PhaseTimer``
        self-times — where there was no live span object to close.
        """
        span = Span(name, trace_id=trace_id, parent_id=parent_id,
                    labels=labels, recorder=None)
        span.start_mono = (time.perf_counter() if start_mono is None
                           else start_mono)
        span.duration = max(0.0, duration)
        self.record(span)
        return span

    def snapshot(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def for_trace(self, trace_id: str) -> List[Span]:
        """All recorded spans of one trace, deterministically ordered
        by (start, name, span_id)."""
        spans = [span for span in self.snapshot()
                 if span.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start_wall or 0.0, s.name, s.span_id))
        return spans

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"capacity": self.capacity,
                    "buffered": len(self._spans),
                    "recorded": self._recorded,
                    "evicted": self._evicted}

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


@contextlib.contextmanager
def child_span(name: str,
               labels: Optional[Mapping[str, str]] = None
               ) -> Iterator[Optional[Span]]:
    """Child of the active span, or a no-op when tracing is inactive.

    This is the instrumentation hook for code that must stay zero-cost
    in plain library use (the Session compile path): one contextvar
    read when no span is active, a real child span when one is.
    """
    active = _CURRENT.get()
    if active is None or active.recorder is None:
        yield None
        return
    with active.recorder.span(name, labels=labels) as span:
        yield span


def record_compile_spans(parent: Span,
                         results: Sequence[Tuple[str, object]]) -> None:
    """Bridge ``PhaseTimer`` output into the waterfall.

    For each ``(label, CompilationResult)`` pair, synthesize one
    ``compile`` span under ``parent`` with a ``phase.<name>`` child per
    entry of ``result.phase_seconds``.  Jobs are laid out sequentially
    from the parent's start and phases at cumulative offsets in sorted
    phase order — phase self-times are exclusive, so the layout is a
    faithful serial schedule even though the timer measured a stack.
    """
    recorder = parent.recorder
    if recorder is None or parent.start_mono is None:
        return
    cursor = parent.start_mono
    for label, result in results:
        if result is None:
            continue
        compile_seconds = float(getattr(result, "compile_seconds", 0.0)
                                or 0.0)
        phase_seconds = dict(getattr(result, "phase_seconds", {}) or {})
        if not compile_seconds and phase_seconds:
            compile_seconds = sum(phase_seconds.values())
        span = recorder.add(
            "compile", trace_id=parent.trace_id, parent_id=parent.span_id,
            start_mono=cursor, duration=compile_seconds,
            labels={"benchmark": label})
        offset = cursor
        for phase in sorted(phase_seconds):
            seconds = float(phase_seconds[phase])
            recorder.add(f"phase.{phase}", trace_id=parent.trace_id,
                         parent_id=span.span_id, start_mono=offset,
                         duration=seconds, labels={"phase": phase})
            offset += seconds
        cursor += compile_seconds


# ----------------------------------------------------------------------
# Waterfall rendering
# ----------------------------------------------------------------------
def _as_record(span: object) -> Dict[str, object]:
    if isinstance(span, Span):
        return span.to_dict()
    return dict(span)  # type: ignore[call-overload]


def _label_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    parts = [f"{key}={labels[key]}" for key in sorted(labels)]
    return " {" + ", ".join(parts) + "}"


def _event_row(event: object) -> Dict[str, object]:
    """Shape a log-event record like a span record for the waterfall.

    Events are instants: zero duration, an empty ``span_id`` (so the
    tree walk never recurses into them), and a parent of the span they
    were emitted under — an event whose span is outside the buffer
    renders as a root, like an orphan span.
    """
    record = (event.to_dict() if hasattr(event, "to_dict")
              else dict(event))  # type: ignore[call-overload]
    level = str(record.get("level") or "INFO")
    message = str(record.get("message") or "")
    return {
        "span_id": "",
        "parent_id": record.get("span_id"),
        "trace_id": record.get("trace_id"),
        "name": f"* {level.lower()}: {message}",
        "start": float(record.get("ts") or 0.0),
        "duration": 0.0,
        "labels": record.get("fields") or {},
        "worker": record.get("worker"),
        "_sort": (float(record.get("ts") or 0.0),
                  str(record.get("event_id") or "")),
        "_event": True,
    }


def render_waterfall(spans: Iterable[object], *,
                     events: Optional[Iterable[object]] = None,
                     width: int = 32) -> str:
    """Deterministic ASCII waterfall of one trace's spans (and events).

    Accepts :class:`Span` objects or their ``to_dict()`` records (the
    wire form returned by ``GET /trace/<id>``).  Orphans — spans whose
    parent is outside the buffer or on another worker — render as
    roots.  Output is a pure function of the span records: siblings
    sort by (start, name, span_id) and the time scale is derived from
    the records alone.

    ``events`` optionally interleaves log-event records (the wire form
    of ``GET /logs``) onto the same time axis: each event renders as a
    ``*`` marker line indented under the span it was emitted in, sorted
    among that span's children by timestamp.  With no events the output
    is byte-identical to the spans-only form.
    """
    records = [_as_record(span) for span in spans]
    event_rows = [_event_row(event) for event in (events or [])]
    if not records and not event_rows:
        return "(no spans)\n"
    records.sort(key=lambda r: (r.get("start") or 0.0,
                                str(r.get("name") or ""),
                                str(r.get("span_id") or "")))
    by_id = {r["span_id"]: r for r in records if r.get("span_id")}
    rows = records + sorted(event_rows, key=lambda r: r["_sort"])
    rows.sort(key=lambda r: (r.get("start") or 0.0,
                             str(r.get("name") or ""),
                             str(r.get("span_id") or "")))
    children: Dict[Optional[str], List[Dict[str, object]]] = {}
    for record in rows:
        parent = record.get("parent_id")
        if parent not in by_id:
            parent = None  # orphan: render as root
        children.setdefault(parent, []).append(record)

    begin = min(float(r.get("start") or 0.0) for r in rows)
    end = max(float(r.get("start") or 0.0) + float(r.get("duration") or 0.0)
              for r in rows)
    total = max(end - begin, 1e-9)

    ids = {str(r.get("trace_id")) for r in records}
    ids.update(str(r.get("trace_id")) for r in event_rows
               if r.get("trace_id"))
    trace_ids = sorted(ids or {"None"})
    head = f"trace {', '.join(trace_ids)} — {len(records)} span(s)"
    if event_rows:
        head += f" + {len(event_rows)} event(s)"
    lines = [head + f", {total:.6f}s"]

    name_width = max(
        len("  " * depth + str(r.get("name") or "?"))
        for depth, r in _walk(children, None, 0)) if rows else 8

    for depth, record in _walk(children, None, 0):
        start = float(record.get("start") or 0.0) - begin
        duration = float(record.get("duration") or 0.0)
        left = int(round(start / total * width))
        left = min(left, width - 1)
        name = "  " * depth + str(record.get("name") or "?")
        worker = record.get("worker")
        suffix = _label_text(record.get("labels") or {})
        if worker:
            suffix += f" @{worker}"
        if record.get("_event"):
            bar = "." * left + "*" + "." * (width - left - 1)
            lines.append(f"{name:<{name_width}} |{bar}| "
                         f"{start:>9.6f}s{suffix}")
            continue
        length = max(1, int(round(duration / total * width)))
        length = min(length, width - left)
        bar = "." * left + "#" * length + "." * (width - left - length)
        lines.append(f"{name:<{name_width}} |{bar}| "
                     f"{start:>9.6f}s +{duration:.6f}s{suffix}")
    return "\n".join(lines) + "\n"


def _walk(children: Dict[Optional[str], List[Dict[str, object]]],
          parent: Optional[str], depth: int
          ) -> Iterator[Tuple[int, Dict[str, object]]]:
    for record in children.get(parent, []):
        yield depth, record
        span_id = record.get("span_id")
        if span_id:
            yield from _walk(children, span_id, depth + 1)
