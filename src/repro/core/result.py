"""Compilation results and summary metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.cost_model import ReclamationCosts
from repro.ir.circuit import Circuit
from repro.ir.gates import make_gate
from repro.scheduler.events import ScheduledGate
from repro.scheduler.tracker import UsageSegment


@dataclass(frozen=True)
class ReclamationEvent:
    """One reclamation decision made during compilation.

    Attributes:
        module: Module whose ``Free`` was processed.
        level: Call-graph depth of the call.
        reclaimed: Whether the Uncompute block was executed.
        num_ancilla: Ancilla/garbage qubits covered by the decision.
        costs: The C1/C0 costs when the CER model was consulted.
    """

    module: str
    level: int
    reclaimed: bool
    num_ancilla: int
    costs: Optional[ReclamationCosts] = None


@dataclass(frozen=True)
class JobFailure:
    """Structured record of a compile job that raised instead of finishing.

    When a :class:`~repro.api.session.Session` runs with failure
    isolation (the mode the network service uses), a job that raises a
    library error does not kill its batch; it yields one of these
    instead, carrying the job's coordinates and the error.  The record is
    JSON-serializable, so it travels across process and HTTP boundaries
    exactly like a :class:`CompilationResult`.

    Attributes:
        program_name: Display name of the job's program/benchmark.
        machine_name: The job's machine spec label
            (:meth:`~repro.api.job.MachineSpec.describe`).
        policy_name: The job's policy label.
        error_type: Class name of the raised exception, e.g.
            ``"ResourceExhaustedError"``.
        message: The exception message.
    """

    program_name: str
    machine_name: str
    policy_name: str
    error_type: str
    message: str

    #: Failures answer False where results answer True, so service
    #: consumers can branch on ``entry.ok`` without type checks.
    ok: ClassVar[bool] = False

    def describe(self) -> str:
        """Short ``ErrorType: message`` label for tables and logs."""
        return f"{self.error_type}: {self.message}"

    def to_exception(self) -> Exception:
        """Rebuild a raisable exception carrying the job's coordinates.

        The original exception class is recovered from
        :mod:`repro.exceptions` by name, so callers catching e.g.
        :class:`~repro.exceptions.ResourceExhaustedError` behave the same
        whether the job ran in-process, in a worker pool, or on a remote
        service; unknown types degrade to
        :class:`~repro.exceptions.ExperimentError`.
        """
        import repro.exceptions as _exceptions

        exc_class = getattr(_exceptions, self.error_type, None)
        if not (isinstance(exc_class, type)
                and issubclass(exc_class, _exceptions.ReproError)):
            exc_class = _exceptions.ExperimentError
        return exc_class(
            f"{self.message} [job: benchmark={self.program_name}, "
            f"policy={self.policy_name}, machine={self.machine_name}]"
        )

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a JSON-compatible dictionary."""
        return {
            "program_name": self.program_name,
            "machine_name": self.machine_name,
            "policy_name": self.policy_name,
            "error_type": self.error_type,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobFailure":
        """Rebuild a failure record from :meth:`to_dict` output."""
        return cls(
            program_name=data["program_name"],
            machine_name=data["machine_name"],
            policy_name=data["policy_name"],
            error_type=data["error_type"],
            message=data["message"],
        )


@dataclass
class CompilationResult:
    """Everything the SQUARE compiler reports for one program.

    The headline metrics mirror Table III of the paper: gate count
    (excluding router swaps), qubit footprint, circuit depth and swap
    count, plus the Active Quantum Volume used throughout the evaluation.
    """

    #: Mirror of :attr:`JobFailure.ok` so mixed batches branch uniformly.
    ok: ClassVar[bool] = True

    program_name: str
    machine_name: str
    policy_name: str
    num_qubits_used: int
    peak_live_qubits: int
    gate_count: int
    swap_count: int
    circuit_depth: int
    active_quantum_volume: int
    total_comm_cost: float
    uncompute_gate_count: int
    reclamation_events: Tuple[ReclamationEvent, ...] = ()
    usage_segments: Tuple[UsageSegment, ...] = ()
    scheduled_gates: Tuple[ScheduledGate, ...] = ()
    final_sites: Tuple[Tuple[int, int], ...] = ()
    num_entry_params: int = 0
    compile_seconds: float = 0.0
    #: Exclusive per-phase compile seconds from the compiler's
    #: :class:`~repro.telemetry.PhaseTimer` (``validate`` /
    #: ``allocation`` / ``reclamation`` / ``liveness`` /
    #: ``mapping_routing``).  Pure telemetry: excluded from equality
    #: and from :meth:`to_dict` — like verification timing, repeat
    #: compiles must compare equal and serialize byte-identically no
    #: matter how long each phase took.
    phase_seconds: Dict[str, float] = field(default_factory=dict,
                                            compare=False)

    # ------------------------------------------------------------------
    @property
    def total_gate_count(self) -> int:
        """Gates including router-inserted swaps."""
        return self.gate_count + self.swap_count

    def site_of(self, virtual: int) -> int:
        """Final physical site of a virtual qubit (for physical readout)."""
        for qubit, site in self.final_sites:
            if qubit == virtual:
                return site
        raise KeyError(f"virtual qubit {virtual} has no recorded site")

    def entry_param_sites(self) -> Tuple[int, ...]:
        """Final sites of the entry module's parameters, in declaration order."""
        return tuple(self.site_of(v) for v in range(self.num_entry_params))

    @property
    def num_reclamation_points(self) -> int:
        """Number of ``Free`` decisions taken."""
        return len(self.reclamation_events)

    @property
    def num_reclaimed(self) -> int:
        """Number of decisions that executed the Uncompute block."""
        return sum(1 for event in self.reclamation_events if event.reclaimed)

    @property
    def num_deferred(self) -> int:
        """Number of decisions that deferred garbage to the caller."""
        return sum(1 for event in self.reclamation_events if not event.reclaimed)

    def usage_series(self) -> List[Tuple[int, int]]:
        """Piecewise-constant (time, live qubits) curve (Figure 1)."""
        events: List[Tuple[int, int]] = []
        for segment in self.usage_segments:
            if segment.duration <= 0:
                continue
            events.append((segment.start, 1))
            events.append((segment.end, -1))
        events.sort()
        series: List[Tuple[int, int]] = [(0, 0)]
        live = 0
        for time, delta in events:
            live += delta
            if series and series[-1][0] == time:
                series[-1] = (time, live)
            else:
                series.append((time, live))
        return series

    def to_circuit(self, physical: bool = False) -> Circuit:
        """Rebuild the scheduled gate stream as a flat :class:`Circuit`.

        Requires the compiler to have been run with ``record_schedule=True``.

        Args:
            physical: When False (default) the circuit is expressed on
                *virtual* qubit wires — wire ``i`` is virtual qubit ``i``, so
                the entry module's parameters occupy the first wires — and
                router-inserted swaps are dropped (they only relabel sites,
                they do not act on virtual values).  This view is the one to
                use for functional-equivalence checks.  When True the circuit
                is expressed on *physical site* wires with every router swap
                included, which is what the noise simulator should run.
        """
        if not self.scheduled_gates:
            raise ValueError(
                "no recorded schedule; compile with record_schedule=True"
            )
        if physical:
            num_wires = 1 + max(
                (max(event.sites) for event in self.scheduled_gates if event.sites),
                default=0,
            )
            circuit = Circuit(
                num_wires, name=f"{self.program_name}-{self.policy_name}-physical"
            )
            for event in self.scheduled_gates:
                if not event.sites:
                    continue
                circuit.append(make_gate(event.name, event.sites))
            return circuit

        circuit = Circuit(self.num_qubits_used,
                          name=f"{self.program_name}-{self.policy_name}")
        for event in self.scheduled_gates:
            if event.routed:
                continue
            if not event.virtual_qubits:
                continue
            circuit.append(make_gate(event.name, event.virtual_qubits))
        return circuit

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a JSON-compatible dictionary.

        Nested records use compact list encodings so that results stay
        cheap to pickle across process boundaries (the parallel executor
        ships every result through this representation) and cheap to dump
        as JSON.  :meth:`from_dict` restores a fully equivalent result.
        """
        return {
            "program_name": self.program_name,
            "machine_name": self.machine_name,
            "policy_name": self.policy_name,
            "num_qubits_used": self.num_qubits_used,
            "peak_live_qubits": self.peak_live_qubits,
            "gate_count": self.gate_count,
            "swap_count": self.swap_count,
            "circuit_depth": self.circuit_depth,
            "active_quantum_volume": self.active_quantum_volume,
            "total_comm_cost": self.total_comm_cost,
            "uncompute_gate_count": self.uncompute_gate_count,
            "reclamation_events": [
                [
                    event.module,
                    event.level,
                    event.reclaimed,
                    event.num_ancilla,
                    None if event.costs is None else
                    [event.costs.uncompute_cost, event.costs.reservation_cost],
                ]
                for event in self.reclamation_events
            ],
            "usage_segments": [
                [segment.qubit, segment.start, segment.end]
                for segment in self.usage_segments
            ],
            "scheduled_gates": [
                [
                    event.name,
                    list(event.virtual_qubits),
                    list(event.sites),
                    event.start,
                    event.finish,
                    event.routed,
                ]
                for event in self.scheduled_gates
            ],
            "final_sites": [list(pair) for pair in self.final_sites],
            "num_entry_params": self.num_entry_params,
            "compile_seconds": self.compile_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CompilationResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            program_name=data["program_name"],
            machine_name=data["machine_name"],
            policy_name=data["policy_name"],
            num_qubits_used=data["num_qubits_used"],
            peak_live_qubits=data["peak_live_qubits"],
            gate_count=data["gate_count"],
            swap_count=data["swap_count"],
            circuit_depth=data["circuit_depth"],
            active_quantum_volume=data["active_quantum_volume"],
            total_comm_cost=data["total_comm_cost"],
            uncompute_gate_count=data["uncompute_gate_count"],
            reclamation_events=tuple(
                ReclamationEvent(
                    module=module,
                    level=level,
                    reclaimed=reclaimed,
                    num_ancilla=num_ancilla,
                    costs=None if costs is None else
                    ReclamationCosts(uncompute_cost=costs[0],
                                     reservation_cost=costs[1]),
                )
                for module, level, reclaimed, num_ancilla, costs
                in data.get("reclamation_events", ())
            ),
            usage_segments=tuple(
                UsageSegment(qubit=qubit, start=start, end=end)
                for qubit, start, end in data.get("usage_segments", ())
            ),
            scheduled_gates=tuple(
                ScheduledGate(
                    name=name,
                    virtual_qubits=tuple(virtual_qubits),
                    sites=tuple(sites),
                    start=start,
                    finish=finish,
                    routed=routed,
                )
                for name, virtual_qubits, sites, start, finish, routed
                in data.get("scheduled_gates", ())
            ),
            final_sites=tuple(
                (virtual, site) for virtual, site in data.get("final_sites", ())
            ),
            num_entry_params=data.get("num_entry_params", 0),
            compile_seconds=data.get("compile_seconds", 0.0),
        )

    def summary(self) -> Dict[str, object]:
        """Flat dictionary of the headline metrics (for report tables)."""
        return {
            "program": self.program_name,
            "machine": self.machine_name,
            "policy": self.policy_name,
            "gates": self.gate_count,
            "qubits": self.num_qubits_used,
            "peak_live": self.peak_live_qubits,
            "depth": self.circuit_depth,
            "swaps": self.swap_count,
            "aqv": self.active_quantum_volume,
            "uncompute_gates": self.uncompute_gate_count,
            "reclaim_points": self.num_reclamation_points,
            "reclaimed": self.num_reclaimed,
            "deferred": self.num_deferred,
        }
