"""Compilation results and summary metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cost_model import ReclamationCosts
from repro.ir.circuit import Circuit
from repro.ir.gates import make_gate
from repro.scheduler.events import ScheduledGate
from repro.scheduler.tracker import UsageSegment


@dataclass(frozen=True)
class ReclamationEvent:
    """One reclamation decision made during compilation.

    Attributes:
        module: Module whose ``Free`` was processed.
        level: Call-graph depth of the call.
        reclaimed: Whether the Uncompute block was executed.
        num_ancilla: Ancilla/garbage qubits covered by the decision.
        costs: The C1/C0 costs when the CER model was consulted.
    """

    module: str
    level: int
    reclaimed: bool
    num_ancilla: int
    costs: Optional[ReclamationCosts] = None


@dataclass
class CompilationResult:
    """Everything the SQUARE compiler reports for one program.

    The headline metrics mirror Table III of the paper: gate count
    (excluding router swaps), qubit footprint, circuit depth and swap
    count, plus the Active Quantum Volume used throughout the evaluation.
    """

    program_name: str
    machine_name: str
    policy_name: str
    num_qubits_used: int
    peak_live_qubits: int
    gate_count: int
    swap_count: int
    circuit_depth: int
    active_quantum_volume: int
    total_comm_cost: float
    uncompute_gate_count: int
    reclamation_events: Tuple[ReclamationEvent, ...] = ()
    usage_segments: Tuple[UsageSegment, ...] = ()
    scheduled_gates: Tuple[ScheduledGate, ...] = ()
    final_sites: Tuple[Tuple[int, int], ...] = ()
    num_entry_params: int = 0
    compile_seconds: float = 0.0

    # ------------------------------------------------------------------
    @property
    def total_gate_count(self) -> int:
        """Gates including router-inserted swaps."""
        return self.gate_count + self.swap_count

    def site_of(self, virtual: int) -> int:
        """Final physical site of a virtual qubit (for physical readout)."""
        for qubit, site in self.final_sites:
            if qubit == virtual:
                return site
        raise KeyError(f"virtual qubit {virtual} has no recorded site")

    def entry_param_sites(self) -> Tuple[int, ...]:
        """Final sites of the entry module's parameters, in declaration order."""
        return tuple(self.site_of(v) for v in range(self.num_entry_params))

    @property
    def num_reclamation_points(self) -> int:
        """Number of ``Free`` decisions taken."""
        return len(self.reclamation_events)

    @property
    def num_reclaimed(self) -> int:
        """Number of decisions that executed the Uncompute block."""
        return sum(1 for event in self.reclamation_events if event.reclaimed)

    @property
    def num_deferred(self) -> int:
        """Number of decisions that deferred garbage to the caller."""
        return sum(1 for event in self.reclamation_events if not event.reclaimed)

    def usage_series(self) -> List[Tuple[int, int]]:
        """Piecewise-constant (time, live qubits) curve (Figure 1)."""
        events: List[Tuple[int, int]] = []
        for segment in self.usage_segments:
            if segment.duration <= 0:
                continue
            events.append((segment.start, 1))
            events.append((segment.end, -1))
        events.sort()
        series: List[Tuple[int, int]] = [(0, 0)]
        live = 0
        for time, delta in events:
            live += delta
            if series and series[-1][0] == time:
                series[-1] = (time, live)
            else:
                series.append((time, live))
        return series

    def to_circuit(self, physical: bool = False) -> Circuit:
        """Rebuild the scheduled gate stream as a flat :class:`Circuit`.

        Requires the compiler to have been run with ``record_schedule=True``.

        Args:
            physical: When False (default) the circuit is expressed on
                *virtual* qubit wires — wire ``i`` is virtual qubit ``i``, so
                the entry module's parameters occupy the first wires — and
                router-inserted swaps are dropped (they only relabel sites,
                they do not act on virtual values).  This view is the one to
                use for functional-equivalence checks.  When True the circuit
                is expressed on *physical site* wires with every router swap
                included, which is what the noise simulator should run.
        """
        if not self.scheduled_gates:
            raise ValueError(
                "no recorded schedule; compile with record_schedule=True"
            )
        if physical:
            num_wires = 1 + max(
                (max(event.sites) for event in self.scheduled_gates if event.sites),
                default=0,
            )
            circuit = Circuit(
                num_wires, name=f"{self.program_name}-{self.policy_name}-physical"
            )
            for event in self.scheduled_gates:
                if not event.sites:
                    continue
                circuit.append(make_gate(event.name, event.sites))
            return circuit

        circuit = Circuit(self.num_qubits_used,
                          name=f"{self.program_name}-{self.policy_name}")
        for event in self.scheduled_gates:
            if event.routed:
                continue
            if not event.virtual_qubits:
                continue
            circuit.append(make_gate(event.name, event.virtual_qubits))
        return circuit

    def summary(self) -> Dict[str, object]:
        """Flat dictionary of the headline metrics (for report tables)."""
        return {
            "program": self.program_name,
            "machine": self.machine_name,
            "policy": self.policy_name,
            "gates": self.gate_count,
            "qubits": self.num_qubits_used,
            "peak_live": self.peak_live_qubits,
            "depth": self.circuit_depth,
            "swaps": self.swap_count,
            "aqv": self.active_quantum_volume,
            "uncompute_gates": self.uncompute_gate_count,
            "reclaim_points": self.num_reclamation_points,
            "reclaimed": self.num_reclaimed,
            "deferred": self.num_deferred,
        }
