"""Qubit allocation policies.

When a module executes ``Allocate(anc, n)`` the compiler must choose *which*
machine qubits to hand out: reclaimed qubits from the ancilla heap or brand
new qubits on previously unused sites.  The baseline policy pops the heap
LIFO (the "global pool" model of prior work); the paper's Locality-Aware
Allocation (LAA, Algorithm 1) scores both options by communication
distance, serialization and area expansion and picks the cheapest.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ResourceExhaustedError
from repro.core.heap import AncillaHeap
from repro.scheduler.asap import GateScheduler


@dataclass
class AllocationRequest:
    """Everything an allocation policy may consult when choosing qubits.

    Attributes:
        count: Number of ancilla qubits requested.
        interacting_qubits: Virtual qubits the new ancillas will interact
            with (the result of looking ahead into the Compute block, i.e.
            ``get_interact_qubits()`` in Algorithm 1).
        heap: The ancilla heap of reclaimed qubits.
        scheduler: The gate scheduler (provides the layout, per-qubit
            clocks and the current frontier time).
        live_qubits: All currently live virtual qubits (for area estimates).
        create_qubit: Callback that creates a brand new virtual qubit on a
            given physical site and returns its id.
        module_name: Name of the allocating module (for diagnostics).
    """

    count: int
    interacting_qubits: Tuple[int, ...]
    heap: AncillaHeap
    scheduler: GateScheduler
    live_qubits: Tuple[int, ...]
    create_qubit: Callable[[int], int]
    module_name: str = ""


class AllocationPolicy(abc.ABC):
    """Strategy for satisfying one ``Allocate`` request."""

    name = "abstract"

    @abc.abstractmethod
    def allocate(self, request: AllocationRequest) -> List[int]:
        """Return ``request.count`` virtual qubit ids, allocating as needed."""

    def _new_qubit_on_free_site(self, request: AllocationRequest,
                                anchors: Sequence[int]) -> int:
        """Create a fresh qubit on the free site nearest to ``anchors``."""
        layout = request.scheduler.layout
        site = layout.nearest_free_site(anchors)
        return request.create_qubit(site)


class LifoAllocation(AllocationPolicy):
    """Baseline allocation: pop the heap LIFO, else take the next free site.

    This is the "ancilla heap as a global pool" model that Eager and Lazy
    use in the paper's evaluation: it ignores qubit locality entirely.
    """

    name = "lifo"

    def allocate(self, request: AllocationRequest) -> List[int]:
        """Pop reclaimed qubits first; otherwise claim row-major free sites."""
        allocated: List[int] = []
        layout = request.scheduler.layout
        for _ in range(request.count):
            if not request.heap.is_empty():
                allocated.append(request.heap.pop())
                continue
            free = layout.free_sites()
            if not free:
                raise ResourceExhaustedError(
                    f"module {request.module_name!r}: machine is out of qubits "
                    f"(requested {request.count})"
                )
            allocated.append(request.create_qubit(free[0]))
        return allocated


class LocalityAwareAllocation(AllocationPolicy):
    """Locality-Aware Allocation (Algorithm 1).

    For each requested qubit the policy scores the best candidate from the
    heap and the best brand-new candidate, then picks the lower score.  The
    score combines three considerations discussed in Section III-A1:

    * communication — average hop distance to the qubits the ancilla will
      interact with;
    * serialization — reusing a qubit that is still busy in the schedule
      adds a false dependency and delays the computation;
    * area expansion — claiming a brand new qubit grows the active region,
      which lengthens future swap chains / braids.

    Args:
        serialization_weight: Weight applied to the (normalised) extra wait
            time a reused qubit would impose.
        area_weight: Weight applied to the distance of a new site from the
            centroid of the live region.
    """

    name = "laa"

    def __init__(self, serialization_weight: float = 0.5,
                 area_weight: float = 0.5) -> None:
        self.serialization_weight = serialization_weight
        self.area_weight = area_weight

    # ------------------------------------------------------------------
    def allocate(self, request: AllocationRequest) -> List[int]:
        """Pick ``count`` qubits minimising the LAA score."""
        allocated: List[int] = []
        anchors = self._anchor_sites(request)
        for _ in range(request.count):
            heap_choice = self._best_heap_candidate(request, anchors)
            new_choice = self._best_new_candidate(request, anchors)
            if heap_choice is None and new_choice is None:
                raise ResourceExhaustedError(
                    f"module {request.module_name!r}: machine is out of qubits "
                    f"(requested {request.count})"
                )
            if new_choice is None or (
                heap_choice is not None and heap_choice[1] <= new_choice[1]
            ):
                qubit, _score = heap_choice
                request.heap.remove(qubit)
            else:
                site, _score = new_choice
                qubit = request.create_qubit(site)
            allocated.append(qubit)
            anchors = anchors + (request.scheduler.layout.site_of(qubit),)
        return allocated

    # ------------------------------------------------------------------
    def _anchor_sites(self, request: AllocationRequest) -> Tuple[int, ...]:
        layout = request.scheduler.layout
        sites = [
            layout.site_of(q)
            for q in request.interacting_qubits
            if layout.is_placed(q)
        ]
        return tuple(sites)

    def _communication_score(self, request: AllocationRequest, site: int,
                             anchors: Sequence[int]) -> float:
        if not anchors:
            return 0.0
        topology = request.scheduler.layout.topology
        return sum(topology.distance(site, anchor) for anchor in anchors) / len(anchors)

    def _best_heap_candidate(
        self, request: AllocationRequest, anchors: Sequence[int]
    ) -> Optional[Tuple[int, float]]:
        if request.heap.is_empty():
            return None
        scheduler = request.scheduler
        layout = scheduler.layout
        frontier = scheduler.frontier_time(request.interacting_qubits)
        swap_duration = max(scheduler.machine.swap_duration, 1)
        best: Optional[Tuple[int, float]] = None
        for qubit in request.heap:
            site = layout.site_of(qubit)
            comm = self._communication_score(request, site, anchors)
            wait = max(scheduler.qubit_time(qubit) - frontier, 0)
            serialization = self.serialization_weight * wait / swap_duration
            score = comm + serialization
            if best is None or score < best[1]:
                best = (qubit, score)
        return best

    def _best_new_candidate(
        self, request: AllocationRequest, anchors: Sequence[int],
        max_candidates: int = 32,
    ) -> Optional[Tuple[int, float]]:
        layout = request.scheduler.layout
        topology = layout.topology
        live_sites = [
            layout.site_of(q) for q in request.live_qubits if layout.is_placed(q)
        ]
        search_anchors = tuple(anchors) if anchors else tuple(live_sites)
        free = layout.nearest_free_sites(search_anchors, limit=max_candidates)
        if not free:
            return None
        centroid = topology.centroid_site(live_sites) if live_sites else None
        best: Optional[Tuple[int, float]] = None
        for site in free:
            comm = self._communication_score(request, site, anchors)
            expansion = 0.0
            if centroid is not None:
                expansion = self.area_weight * topology.distance(site, centroid)
            score = comm + expansion
            if best is None or score < best[1]:
                best = (site, score)
        return best
