"""Public, extensible registries for allocation and reclamation policies.

The compiler resolves policy *names* (the strings carried by
:class:`~repro.core.compiler.CompilerConfig`) through these registries, so
new heuristics can be plugged in without touching the compiler itself::

    from repro.core.policies import register_allocation_policy
    from repro.core.allocation import AllocationPolicy

    @register_allocation_policy("random")
    class RandomAllocation(AllocationPolicy):
        ...

    result = compile_program(program, machine, policy="square",
                             allocation="random")

A registry entry is a zero-argument factory (usually the policy class
itself); a fresh policy instance is created per compilation so stateful
policies never leak state between runs.

Note for :class:`~repro.api.executors.ParallelExecutor` users: worker
processes inherit registrations made at import time of your modules; when
the multiprocessing start method is ``spawn``, policies registered only in
the parent's ``__main__`` body are not visible to workers — register them
at module import time instead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import CompilationError
from repro.core.allocation import (
    AllocationPolicy,
    LifoAllocation,
    LocalityAwareAllocation,
)
from repro.core.reclamation import (
    CostEffectiveReclamation,
    EagerReclamation,
    LazyReclamation,
    ReclamationPolicy,
)

AllocationFactory = Callable[[], AllocationPolicy]
ReclamationFactory = Callable[[], ReclamationPolicy]

_ALLOCATION: Dict[str, AllocationFactory] = {}
_RECLAMATION: Dict[str, ReclamationFactory] = {}


def _make_registrar(registry: Dict[str, Callable], kind: str,
                    name: str, factory: Optional[Callable],
                    replace: bool):
    def register(f: Callable) -> Callable:
        if not replace and name in registry:
            raise CompilationError(
                f"{kind} policy {name!r} is already registered; "
                f"pass replace=True to override"
            )
        registry[name] = f
        return f

    if factory is not None:
        return register(factory)
    return register


def register_allocation_policy(name: str,
                               factory: Optional[AllocationFactory] = None,
                               *, replace: bool = False):
    """Register an allocation policy factory under ``name``.

    Usable as a decorator (``@register_allocation_policy("mine")``) or as a
    direct call (``register_allocation_policy("mine", MyPolicy)``).

    Raises:
        CompilationError: If ``name`` is taken and ``replace`` is False.
    """
    return _make_registrar(_ALLOCATION, "allocation", name, factory, replace)


def register_reclamation_policy(name: str,
                                factory: Optional[ReclamationFactory] = None,
                                *, replace: bool = False):
    """Register a reclamation policy factory under ``name``.

    Usable as a decorator or as a direct call, like
    :func:`register_allocation_policy`.
    """
    return _make_registrar(_RECLAMATION, "reclamation", name, factory, replace)


def create_allocation_policy(name: str) -> AllocationPolicy:
    """Instantiate the registered allocation policy called ``name``."""
    try:
        factory = _ALLOCATION[name]
    except KeyError:
        raise CompilationError(
            f"unknown allocation policy {name!r}; "
            f"registered: {allocation_policy_names()}"
        ) from None
    return factory()


def create_reclamation_policy(name: str) -> ReclamationPolicy:
    """Instantiate the registered reclamation policy called ``name``."""
    try:
        factory = _RECLAMATION[name]
    except KeyError:
        raise CompilationError(
            f"unknown reclamation policy {name!r}; "
            f"registered: {reclamation_policy_names()}"
        ) from None
    return factory()


def allocation_policy_names() -> List[str]:
    """Sorted names of every registered allocation policy."""
    return sorted(_ALLOCATION)


def reclamation_policy_names() -> List[str]:
    """Sorted names of every registered reclamation policy."""
    return sorted(_RECLAMATION)


# The built-in policies of the paper (Table I).
register_allocation_policy("lifo", LifoAllocation)
register_allocation_policy("laa", LocalityAwareAllocation)
register_reclamation_policy("eager", EagerReclamation)
register_reclamation_policy("lazy", LazyReclamation)
register_reclamation_policy("cer", CostEffectiveReclamation)
