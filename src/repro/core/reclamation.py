"""Qubit reclamation policies: Eager, Lazy and Cost-Effective Reclamation.

At every ``Free`` the compiler asks the reclamation policy whether to
execute the module's Uncompute block (returning the ancillas to the heap)
or to skip it and transfer the garbage to the caller.  Table I of the
paper lists the three configurations evaluated:

* **Eager** — reclaim at every function, paying recursive recomputation;
* **Lazy** — reclaim only at the top level, paying qubit reservation;
* **SQUARE (CER)** — compare Equations 1 and 2 at each point and pick the
  cheaper side.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.cost_model import ReclamationCosts, reclamation_costs


@dataclass(frozen=True)
class ReclamationRequest:
    """Inputs available to a reclamation decision.

    Attributes:
        module_name: Name of the module whose ``Free`` is being processed.
        level: Depth of the call in the call graph (0 = entry module).
        num_active: Number of live qubits at this point (``N_active``).
        num_ancilla: Ancilla/garbage qubits held by this call, including
            garbage deferred from its children (``N_anc``).
        uncompute_gates: Estimated gate count of the uncompute block,
            including children contributions (``G_uncomp``).
        gates_to_parent_uncompute: Estimated gates between this point and
            the parent's uncompute block (``G_p``).
        comm_factor: Communication factor ``S`` (swap length or crossings).
        locality_constrained: False on fully-connected machines.
        is_top_level: True for the entry module's ``Free``.  The program
            ends immediately afterwards, so uncomputing there buys nothing;
            every policy skips it (this is what makes Lazy's gate count the
            forward-only count in Table III).
    """

    module_name: str
    level: int
    num_active: int
    num_ancilla: int
    uncompute_gates: int
    gates_to_parent_uncompute: int
    comm_factor: float
    locality_constrained: bool = True
    is_top_level: bool = False


@dataclass(frozen=True)
class ReclamationDecision:
    """Outcome of one reclamation decision.

    Attributes:
        reclaim: True to execute the Uncompute block and free the ancillas.
        costs: The evaluated C1/C0 pair when the CER model was consulted.
    """

    reclaim: bool
    costs: Optional[ReclamationCosts] = None


class ReclamationPolicy(abc.ABC):
    """Strategy deciding whether to uncompute at a ``Free`` point."""

    name = "abstract"

    def decide(self, request: ReclamationRequest) -> ReclamationDecision:
        """Decide whether to reclaim; the top-level free is never uncomputed."""
        if request.is_top_level:
            return ReclamationDecision(reclaim=False)
        return self._decide(request)

    @abc.abstractmethod
    def _decide(self, request: ReclamationRequest) -> ReclamationDecision:
        """Policy-specific decision for non-top-level frees."""


class EagerReclamation(ReclamationPolicy):
    """Reclaim qubits at the end of every function (Baseline 1)."""

    name = "eager"

    def _decide(self, request: ReclamationRequest) -> ReclamationDecision:
        """Always uncompute."""
        return ReclamationDecision(reclaim=True)


class LazyReclamation(ReclamationPolicy):
    """Reclaim qubits only at the top-level function (Baseline 2)."""

    name = "lazy"

    def _decide(self, request: ReclamationRequest) -> ReclamationDecision:
        """Never uncompute below the top level."""
        return ReclamationDecision(reclaim=False)


class CostEffectiveReclamation(ReclamationPolicy):
    """SQUARE's Cost-Effective Reclamation heuristic (Algorithm 2).

    Compares the uncomputation cost ``C1`` (Equation 1) against the
    reservation cost ``C0`` (Equation 2) and reclaims when ``C1 <= C0``.
    """

    name = "cer"

    def _decide(self, request: ReclamationRequest) -> ReclamationDecision:
        """Reclaim exactly when Equation 1 does not exceed Equation 2."""
        if request.num_ancilla == 0:
            # Nothing to reclaim; skipping the (empty) uncompute is free.
            return ReclamationDecision(reclaim=False)
        costs = reclamation_costs(
            num_active=request.num_active,
            num_ancilla=request.num_ancilla,
            uncompute_gates=request.uncompute_gates,
            gates_to_parent_uncompute=request.gates_to_parent_uncompute,
            comm_factor=request.comm_factor,
            level=request.level,
            locality_constrained=request.locality_constrained,
        )
        return ReclamationDecision(reclaim=costs.should_reclaim, costs=costs)
