"""The Cost-Effective Reclamation cost model (Equations 1 and 2).

At every potential reclamation point (a ``Free`` at the end of a module
call) the compiler compares:

* ``C1`` — the cost of uncomputing and reclaiming the ancillas now
  (Equation 1):  ``C1 = N_active * G_uncomp * S * 2**level``.
  The ``2**level`` term accounts for *recursive recomputation*: gates spent
  uncomputing a deeply nested function may be replayed by every ancestor
  that later uncomputes.

* ``C0`` — the cost of leaving the garbage for the caller (Equation 2):
  ``C0 = N_anc * G_p * S * sqrt((N_active + N_anc) / N_active)``.
  The square-root term models *area expansion*: holding extra live qubits
  spreads the active region and lengthens swap chains / braids for every
  other gate executed until the parent's uncompute block runs.

``S`` is the communication factor: the running average swap-chain length
per gate on a NISQ machine, or the running average braid crossings per
gate on an FT machine (Section IV-D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ReclamationCosts:
    """The two costs compared at a reclamation point.

    Attributes:
        uncompute_cost: ``C1`` of Equation 1.
        reservation_cost: ``C0`` of Equation 2.
    """

    uncompute_cost: float
    reservation_cost: float

    @property
    def should_reclaim(self) -> bool:
        """True when uncomputing now is the cheaper option (C1 <= C0)."""
        return self.uncompute_cost <= self.reservation_cost


def uncompute_cost(
    num_active: int,
    uncompute_gates: int,
    comm_factor: float,
    level: int,
    max_level_exponent: int = 30,
) -> float:
    """Equation 1: cost of uncomputing and reclaiming now.

    Args:
        num_active: Number of currently active (live) qubits ``N_active``.
        uncompute_gates: Gates needed for the uncompute block, including
            those contributed by children (``G_uncomp``).
        comm_factor: Communication factor ``S`` (>= 1 after clamping).
        level: Depth of the function in the call graph (0 = entry module).
        max_level_exponent: Clamp on the exponent to avoid overflow on
            pathologically deep call graphs.
    """
    exponent = min(max(level, 0), max_level_exponent)
    return (
        max(num_active, 1)
        * max(uncompute_gates, 0)
        * max(comm_factor, 1.0)
        * float(2 ** exponent)
    )


def reservation_cost(
    num_ancilla: int,
    gates_to_parent_uncompute: int,
    comm_factor: float,
    num_active: int,
    locality_constrained: bool = True,
) -> float:
    """Equation 2: cost of holding garbage until the parent uncomputes.

    Args:
        num_ancilla: Ancilla (garbage) qubits this function would hold
            (``N_anc``), including garbage deferred from its own children.
        gates_to_parent_uncompute: Estimated gates between this point and
            the parent's uncompute block (``G_p``).
        comm_factor: Communication factor ``S`` (>= 1 after clamping).
        num_active: Number of currently active qubits ``N_active``.
        locality_constrained: False for fully-connected machines, where
            area expansion has no communication consequence and the
            square-root factor is dropped.
    """
    active = max(num_active, 1)
    expansion = 1.0
    if locality_constrained and num_ancilla > 0:
        expansion = math.sqrt((active + num_ancilla) / active)
    return (
        max(num_ancilla, 0)
        * max(gates_to_parent_uncompute, 0)
        * max(comm_factor, 1.0)
        * expansion
    )


def reclamation_costs(
    num_active: int,
    num_ancilla: int,
    uncompute_gates: int,
    gates_to_parent_uncompute: int,
    comm_factor: float,
    level: int,
    locality_constrained: bool = True,
) -> ReclamationCosts:
    """Evaluate both sides of the CER comparison at one reclamation point."""
    return ReclamationCosts(
        uncompute_cost=uncompute_cost(
            num_active=num_active,
            uncompute_gates=uncompute_gates,
            comm_factor=comm_factor,
            level=level,
        ),
        reservation_cost=reservation_cost(
            num_ancilla=num_ancilla,
            gates_to_parent_uncompute=gates_to_parent_uncompute,
            comm_factor=comm_factor,
            num_active=num_active,
            locality_constrained=locality_constrained,
        ),
    )


class CommunicationEstimator:
    """Running estimate of the communication factor ``S``.

    Keeps a global running average of communication cost units per
    two-qubit gate (swap-chain length on NISQ, braid crossings on FT) and
    optionally a per-module average that takes precedence once the module
    has scheduled enough gates (the paper keeps the average "in the same
    module").
    """

    def __init__(self, minimum_samples: int = 8) -> None:
        self._minimum_samples = minimum_samples
        self._global_cost = 0.0
        self._global_gates = 0

    def observe(self, cost_units: float, gates: int = 1) -> None:
        """Record communication cost for ``gates`` scheduled two-qubit gates."""
        self._global_cost += cost_units
        self._global_gates += gates

    def global_average(self) -> float:
        """Average communication cost per gate across the whole program."""
        if self._global_gates == 0:
            return 1.0
        return max(self._global_cost / self._global_gates, 1.0)

    def estimate(self, local_cost: float, local_gates: int) -> float:
        """Best estimate of ``S`` for a module with the given local history."""
        if local_gates >= self._minimum_samples:
            return max(local_cost / local_gates, 1.0)
        return self.global_average()
