"""The SQUARE compiler: instrumentation-driven allocation and reclamation.

The compiler walks a modular program in program order, exactly as the
paper's instrumentation-driven flow does (Section IV-B): every gate is
routed and scheduled immediately, every ``Allocate`` invokes the allocation
policy against the live machine state, and every ``Free`` invokes the
reclamation policy, which either executes the Uncompute block (returning
the ancillas to the heap) or skips it (transferring the garbage to the
caller — "qubit reservation").

The walk keeps a :class:`CallRecord` per call instance so that when an
ancestor later uncomputes, the inverse of each child call replays exactly
what that child actually did:

* a child that reclaimed is replayed as ``C ; S^-1 ; C^-1`` on freshly
  allocated ancillas (recursive recomputation, the 2**level blow-up);
* a child that deferred still holds its ancillas, so its inverse is
  ``S^-1 ; C^-1`` on those same qubits, after which they are finally freed.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CompilationError, ResourceExhaustedError
from repro.arch.machine import Machine
from repro.core.allocation import AllocationPolicy, AllocationRequest
from repro.core.cost_model import CommunicationEstimator
from repro.core.heap import AncillaHeap
from repro.core.policies import (
    create_allocation_policy,
    create_reclamation_policy,
)
from repro.core.reclamation import ReclamationPolicy, ReclamationRequest
from repro.core.result import CompilationResult, ReclamationEvent
from repro.ir.decompose import decompose_toffoli
from repro.ir.gates import inverse_gate_name
from repro.ir.program import CallStmt, GateStmt, Program, QModule, Qubit, Statement
from repro.scheduler.asap import GateScheduler
from repro.scheduler.tracker import LivenessTracker
from repro.telemetry.timing import PhaseTimer


@dataclass(frozen=True)
class CompilerConfig:
    """Configuration of one compilation run.

    Attributes:
        allocation: Allocation policy name, resolved through
            :mod:`repro.core.policies` (built-ins: ``"lifo"``, ``"laa"``).
        reclamation: Reclamation policy name, resolved through
            :mod:`repro.core.policies` (built-ins: ``"eager"``, ``"lazy"``,
            ``"cer"``).
        decompose_toffoli: Decompose Toffoli gates into Clifford+T before
            scheduling (used for the small NISQ benchmarks; large workloads
            keep Toffolis whole for compilation speed).
        record_schedule: Keep every scheduled gate so the result can be
            replayed through the noise simulator.
        max_qubits: Optional cap on machine qubits (defaults to the full
            machine size).
        label: Optional human-readable policy label for reports.
    """

    allocation: str = "laa"
    reclamation: str = "cer"
    decompose_toffoli: bool = False
    record_schedule: bool = False
    max_qubits: Optional[int] = None
    label: str = ""

    @property
    def policy_name(self) -> str:
        """Label used in result tables."""
        return self.label or f"{self.allocation}+{self.reclamation}"


#: Compiler configurations matching Table I plus the LAA-only ablation of
#: Figures 8a, 9 and 10.
POLICY_PRESETS: Dict[str, CompilerConfig] = {
    "eager": CompilerConfig(allocation="lifo", reclamation="eager", label="eager"),
    "lazy": CompilerConfig(allocation="lifo", reclamation="lazy", label="lazy"),
    "square-laa": CompilerConfig(allocation="laa", reclamation="eager",
                                 label="square-laa"),
    "square": CompilerConfig(allocation="laa", reclamation="cer", label="square"),
}


def preset(name: str, **overrides) -> CompilerConfig:
    """Return a named policy preset, optionally overriding fields.

    Raises:
        CompilationError: If the preset name is unknown, or an override
            does not name a :class:`CompilerConfig` field.
    """
    try:
        config = POLICY_PRESETS[name]
    except KeyError:
        raise CompilationError(
            f"unknown policy preset {name!r}; choose from {sorted(POLICY_PRESETS)}"
        ) from None
    if not overrides:
        return config
    valid = {f.name for f in fields(CompilerConfig)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise CompilationError(
            f"unknown CompilerConfig field(s) {unknown}; "
            f"valid fields: {sorted(valid)}"
        )
    return replace(config, **overrides)


@dataclass
class CallRecord:
    """What one call instance actually executed (needed for inversion)."""

    module: QModule
    level: int
    binding: Dict[Qubit, int]
    ancilla_virtuals: List[int]
    compute_records: List["CallRecord"] = field(default_factory=list)
    store_records: List["CallRecord"] = field(default_factory=list)
    reclaimed: Optional[bool] = None
    cleaned: bool = False

    def garbage_qubits(self) -> List[int]:
        """Ancilla qubits still holding garbage under this record."""
        if self.cleaned or self.reclaimed:
            return []
        garbage = list(self.ancilla_virtuals)
        for child in self.compute_records + self.store_records:
            garbage.extend(child.garbage_qubits())
        return garbage


@dataclass
class _Frame:
    """Live state of a module call while it executes."""

    module: QModule
    level: int
    binding: Dict[Qubit, int]
    ancilla_virtuals: List[int]
    parent: Optional["_Frame"]
    record: CallRecord
    in_compute: bool = True
    compute_gates_emitted: int = 0
    local_comm_cost: float = 0.0
    local_two_qubit_gates: int = 0
    statement_index: int = 0
    current_block: str = "compute"


class SquareCompiler:
    """Compiles a modular program onto a machine under a reuse policy.

    Args:
        machine: Target machine model (NISQ, FT or ideal).
        config: Compiler configuration; defaults to the full SQUARE preset.
        allocation_policy: Optional explicit allocation policy instance
            (overrides ``config.allocation``).
        reclamation_policy: Optional explicit reclamation policy instance
            (overrides ``config.reclamation``).
        phase_timing: Record per-phase compile seconds into
            :attr:`CompilationResult.phase_seconds` (on by default; the
            timer costs well under a percent of compile time, and the
            flag is deliberately *not* part of :class:`CompilerConfig`
            so toggling it never changes a job fingerprint).
    """

    def __init__(
        self,
        machine: Machine,
        config: Optional[CompilerConfig] = None,
        allocation_policy: Optional[AllocationPolicy] = None,
        reclamation_policy: Optional[ReclamationPolicy] = None,
        *,
        phase_timing: bool = True,
    ) -> None:
        self.machine = machine
        self.config = config or POLICY_PRESETS["square"]
        if allocation_policy is None:
            allocation_policy = create_allocation_policy(self.config.allocation)
        if reclamation_policy is None:
            reclamation_policy = create_reclamation_policy(self.config.reclamation)
        self.allocation_policy = allocation_policy
        self.reclamation_policy = reclamation_policy
        self.phase_timing = phase_timing
        self._timer: Optional[PhaseTimer] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compile(self, program: Program) -> CompilationResult:
        """Compile ``program`` and return the scheduled-resource summary."""
        started = _time.perf_counter()
        # Exclusive-attribution phase profile (see PhaseTimer): the
        # walk runs under "mapping_routing", and _allocate_ancillas /
        # _process_free carve their own spans out of it, so the phases
        # sum to ~the whole compile.
        timer = PhaseTimer() if self.phase_timing else None
        self._timer = timer
        if timer is not None:
            timer.push("validate")
        program.validate()
        if timer is not None:
            timer.pop()
        self.machine.reset_communication_state()
        self._tracker = LivenessTracker()
        self._scheduler = GateScheduler(
            self.machine, self._tracker,
            record_schedule=self.config.record_schedule,
        )
        self._heap = AncillaHeap()
        self._comm = CommunicationEstimator()
        self._next_virtual = 0
        self._qubit_budget = self.config.max_qubits or self.machine.num_qubits
        self._reclamation_log: List[ReclamationEvent] = []
        self._uncompute_gates = 0
        self._static_cache: Dict[int, int] = {}

        entry = program.entry
        if timer is not None:
            timer.push("mapping_routing")
        param_virtuals = self._place_entry_params(entry)
        binding = dict(zip(entry.params, param_virtuals))
        self._exec_call_with_binding(entry, binding, level=0, parent=None)
        if timer is not None:
            timer.pop()
            timer.push("liveness")
        self._tracker.finalize(self._scheduler.makespan)

        final_sites = tuple(
            (virtual, self._scheduler.layout.site_of(virtual))
            for virtual in range(self._next_virtual)
            if self._scheduler.layout.is_placed(virtual)
        )
        if timer is not None:
            timer.pop()
        phase_seconds = ({name: timer.seconds[name]
                          for name in sorted(timer.seconds)}
                         if timer is not None else {})
        elapsed = _time.perf_counter() - started
        return CompilationResult(
            program_name=program.name,
            machine_name=self.machine.name,
            policy_name=self.config.policy_name,
            num_qubits_used=self._next_virtual,
            peak_live_qubits=self._tracker.peak_live,
            gate_count=self._scheduler.gate_count,
            swap_count=self._scheduler.swap_count,
            circuit_depth=self._scheduler.makespan,
            active_quantum_volume=self._tracker.active_quantum_volume(),
            total_comm_cost=self._scheduler.comm_cost_total,
            uncompute_gate_count=self._uncompute_gates,
            reclamation_events=tuple(self._reclamation_log),
            usage_segments=self._tracker.segments,
            scheduled_gates=tuple(self._scheduler.events),
            final_sites=final_sites,
            num_entry_params=len(entry.params),
            compile_seconds=elapsed,
            phase_seconds=phase_seconds,
        )

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _place_entry_params(self, entry: QModule) -> List[int]:
        """Create the entry module's parameter qubits near the machine centre."""
        topology = self.machine.topology
        center = topology.num_sites // 2
        virtuals: List[int] = []
        anchor_sites = [center]
        for _ in entry.params:
            site = self._scheduler.layout.nearest_free_site(anchor_sites)
            virtual = self._create_qubit(site)
            self._tracker.allocate(virtual, 0)
            virtuals.append(virtual)
            anchor_sites.append(site)
        return virtuals

    def _create_qubit(self, site: int) -> int:
        if self._next_virtual >= self._qubit_budget:
            raise ResourceExhaustedError(
                f"qubit budget of {self._qubit_budget} exhausted"
            )
        virtual = self._next_virtual
        self._next_virtual += 1
        self._scheduler.register_qubit(virtual, site)
        return virtual

    # ------------------------------------------------------------------
    # Program walk
    # ------------------------------------------------------------------
    def _exec_call(self, stmt: CallStmt, parent: _Frame) -> CallRecord:
        args = tuple(parent.binding[arg] for arg in stmt.args)
        binding = dict(zip(stmt.module.params, args))
        return self._exec_call_with_binding(
            stmt.module, binding, level=parent.level + 1, parent=parent
        )

    def _exec_call_with_binding(
        self,
        module: QModule,
        binding: Dict[Qubit, int],
        level: int,
        parent: Optional[_Frame],
    ) -> CallRecord:
        record = CallRecord(module=module, level=level, binding=dict(binding),
                            ancilla_virtuals=[])
        frame = _Frame(module=module, level=level, binding=binding,
                       ancilla_virtuals=[], parent=parent, record=record)

        if module.num_ancilla:
            ancillas = self._allocate_ancillas(module, frame)
            frame.ancilla_virtuals = ancillas
            record.ancilla_virtuals = list(ancillas)
            frame.binding.update(zip(module.ancillas, ancillas))
            record.binding.update(zip(module.ancillas, ancillas))

        frame.current_block = "compute"
        frame.in_compute = True
        self._exec_block(module.compute, frame, record.compute_records)
        frame.current_block = "store"
        frame.in_compute = False
        self._exec_block(module.store, frame, record.store_records)

        self._process_free(module, frame, record, parent)
        return record

    def _exec_block(self, statements: Sequence[Statement], frame: _Frame,
                    records: List[CallRecord]) -> None:
        for index, stmt in enumerate(statements):
            frame.statement_index = index
            if isinstance(stmt, GateStmt):
                qubits = tuple(frame.binding[q] for q in stmt.qubits)
                self._emit_gate(frame, stmt.name, qubits)
            elif isinstance(stmt, CallStmt):
                records.append(self._exec_call(stmt, frame))
            else:  # pragma: no cover - defensive
                raise CompilationError(f"unknown statement {stmt!r}")

    def _exec_block_inverse(self, statements: Sequence[Statement], frame: _Frame,
                            records: Sequence[CallRecord]) -> None:
        record_index = len(records)
        for stmt in reversed(statements):
            if isinstance(stmt, GateStmt):
                qubits = tuple(frame.binding[q] for q in stmt.qubits)
                self._emit_gate(frame, inverse_gate_name(stmt.name), qubits)
            elif isinstance(stmt, CallStmt):
                record_index -= 1
                self._exec_call_inverse(records[record_index], frame)
            else:  # pragma: no cover - defensive
                raise CompilationError(f"unknown statement {stmt!r}")

    # ------------------------------------------------------------------
    # Gate emission
    # ------------------------------------------------------------------
    def _emit_gate(self, frame: _Frame, name: str, qubits: Tuple[int, ...]) -> None:
        if self.config.decompose_toffoli and name == "ccx":
            for gate in decompose_toffoli(*qubits):
                self._emit_single(frame, gate.name, gate.qubits)
            return
        self._emit_single(frame, name, qubits)

    def _emit_single(self, frame: _Frame, name: str, qubits: Tuple[int, ...]) -> None:
        execution = self._scheduler.schedule_gate(name, qubits)
        if len(qubits) >= 2:
            self._comm.observe(execution.comm_cost)
            frame.local_comm_cost += execution.comm_cost
            frame.local_two_qubit_gates += 1
        ancestor: Optional[_Frame] = frame
        while ancestor is not None:
            if ancestor.current_block == "compute":
                ancestor.compute_gates_emitted += 1
            ancestor = ancestor.parent

    # ------------------------------------------------------------------
    # Allocation and reclamation
    # ------------------------------------------------------------------
    def _allocate_ancillas(self, module: QModule, frame: _Frame) -> List[int]:
        """Phase-timed wrapper: allocation spans carve out of whatever
        phase is active (the walk, or a reclamation replay)."""
        timer = self._timer
        if timer is None:
            return self._allocate_ancillas_inner(module, frame)
        timer.push("allocation")
        try:
            return self._allocate_ancillas_inner(module, frame)
        finally:
            timer.pop()

    def _allocate_ancillas_inner(self, module: QModule,
                                 frame: _Frame) -> List[int]:
        per_ancilla, fallback = self._interaction_anchors(module, frame)
        now = self._scheduler.current_time()
        allocated: List[int] = []
        for ancilla in module.ancillas:
            anchors = per_ancilla.get(ancilla) or fallback
            request = AllocationRequest(
                count=1,
                interacting_qubits=tuple(anchors),
                heap=self._heap,
                scheduler=self._scheduler,
                live_qubits=self._tracker.live_qubits(),
                create_qubit=self._create_qubit,
                module_name=module.name,
            )
            virtual = self.allocation_policy.allocate(request)[0]
            self._tracker.allocate(virtual, now)
            allocated.append(virtual)
        return allocated

    def _interaction_anchors(
        self, module: QModule, frame: _Frame
    ) -> Tuple[Dict[Qubit, List[int]], List[int]]:
        """Look-ahead interaction sets (``get_interact_qubits`` in Algorithm 1).

        Returns a per-ancilla map of the caller-visible qubits that ancilla
        directly shares a gate or call with, plus a fallback anchor list
        (all bound parameters) for ancillas with no direct interaction in
        this module's own statements.
        """
        ancilla_set = set(module.ancillas)
        per_ancilla: Dict[Qubit, List[int]] = {}
        for block in (module.compute, module.store):
            for stmt in block:
                operands = stmt.qubits if isinstance(stmt, GateStmt) else stmt.args
                involved = [q for q in operands if q in ancilla_set]
                if not involved:
                    continue
                partners = [
                    frame.binding[q] for q in operands
                    if q not in ancilla_set and q in frame.binding
                ]
                for ancilla in involved:
                    bucket = per_ancilla.setdefault(ancilla, [])
                    for virtual in partners:
                        if virtual not in bucket:
                            bucket.append(virtual)
        fallback = [frame.binding[q] for q in module.params if q in frame.binding]
        return per_ancilla, fallback

    def _process_free(self, module: QModule, frame: _Frame, record: CallRecord,
                      parent: Optional[_Frame]) -> None:
        """Phase-timed wrapper: the reclamation decision plus any
        uncompute emission it triggers count as "reclamation" (nested
        allocation during a replay re-carves itself back out)."""
        timer = self._timer
        if timer is None:
            self._process_free_inner(module, frame, record, parent)
            return
        timer.push("reclamation")
        try:
            self._process_free_inner(module, frame, record, parent)
        finally:
            timer.pop()

    def _process_free_inner(self, module: QModule, frame: _Frame,
                            record: CallRecord,
                            parent: Optional[_Frame]) -> None:
        if parent is None:
            # Top level: the program ends here, so there is nothing to gain
            # from uncomputing — the remaining garbage is simply measured
            # away / reset when the machine is released.  This matches the
            # Table I semantics in which Lazy's only reclamation point is
            # the end of the program (and explains why Lazy's gate count is
            # roughly the forward-only count in Table III).
            record.reclaimed = False
            return
        held_garbage = record.garbage_qubits()
        num_ancilla = len(held_garbage)
        if num_ancilla == 0:
            # Nothing to reclaim: the call has no scratch state to clean.
            record.reclaimed = None
            return

        comm_factor = self._comm.estimate(frame.local_comm_cost,
                                          frame.local_two_qubit_gates)
        request = ReclamationRequest(
            module_name=module.name,
            level=frame.level,
            num_active=self._tracker.num_live,
            num_ancilla=num_ancilla,
            uncompute_gates=frame.compute_gates_emitted,
            gates_to_parent_uncompute=self._gates_to_parent_uncompute(parent),
            comm_factor=comm_factor,
            locality_constrained=self.machine.communication != "none"
            and not self.machine.topology.is_fully_connected,
            is_top_level=parent is None,
        )
        decision = self.reclamation_policy.decide(request)
        self._reclamation_log.append(ReclamationEvent(
            module=module.name,
            level=frame.level,
            reclaimed=decision.reclaim,
            num_ancilla=num_ancilla,
            costs=decision.costs,
        ))

        if decision.reclaim:
            self._emit_uncompute(frame, record)
            self._reclaim_record(record)
        else:
            record.reclaimed = False
            # Garbage is transferred to the caller simply by keeping the
            # record referenced from the parent's record list; the ancestor
            # that eventually uncomputes will clean and free it.

    def _emit_uncompute(self, frame: _Frame, record: CallRecord) -> None:
        """Execute the Uncompute block (inverse of Compute) for this frame."""
        module = frame.module
        frame.current_block = "uncompute"
        gates_before = self._scheduler.gate_count
        use_explicit = (
            module.has_explicit_uncompute
            and not any(isinstance(s, CallStmt) for s in module.compute)
            and not record.compute_records
        )
        if use_explicit:
            self._exec_block(module.uncompute, frame, [])
        else:
            self._exec_block_inverse(module.compute, frame, record.compute_records)
        self._uncompute_gates += self._scheduler.gate_count - gates_before
        record.reclaimed = True

    def _reclaim_record(self, record: CallRecord) -> None:
        """Free this record's own ancillas (children free theirs when inverted)."""
        for virtual in record.ancilla_virtuals:
            self._tracker.reclaim(virtual, self._scheduler.qubit_time(virtual))
            self._heap.push(virtual)
        record.reclaimed = True

    # ------------------------------------------------------------------
    # Inverse execution (uncomputation of calls)
    # ------------------------------------------------------------------
    def _exec_call_inverse(self, record: CallRecord, parent: _Frame) -> None:
        module = record.module
        if record.reclaimed:
            self._replay_reclaimed_inverse(record, parent)
            return
        # Deferred (or ancilla-free) call: its state is still on the machine,
        # so its inverse is Store^-1 ; Compute^-1 on the original qubits.
        frame = _Frame(module=module, level=record.level, binding=dict(record.binding),
                       ancilla_virtuals=list(record.ancilla_virtuals), parent=parent,
                       record=record, current_block=parent.current_block)
        self._exec_block_inverse(module.store, frame, record.store_records)
        self._exec_block_inverse(module.compute, frame, record.compute_records)
        for virtual in record.ancilla_virtuals:
            self._tracker.reclaim(virtual, self._scheduler.qubit_time(virtual))
            self._heap.push(virtual)
        record.cleaned = True

    def _replay_reclaimed_inverse(self, record: CallRecord, parent: _Frame) -> None:
        """Invert a call that had reclaimed: C ; S^-1 ; C^-1 on fresh ancillas."""
        module = record.module
        binding = {param: record.binding[param] for param in module.params}
        frame = _Frame(module=module, level=record.level, binding=binding,
                       ancilla_virtuals=[], parent=parent,
                       record=CallRecord(module=module, level=record.level,
                                         binding=dict(binding), ancilla_virtuals=[]),
                       current_block=parent.current_block)
        if module.num_ancilla:
            ancillas = self._allocate_ancillas(module, frame)
            frame.ancilla_virtuals = ancillas
            frame.binding.update(zip(module.ancillas, ancillas))
        replay_records: List[CallRecord] = []
        self._exec_block(module.compute, frame, replay_records)
        self._exec_block_inverse(module.store, frame, record.store_records)
        self._exec_block_inverse(module.compute, frame, replay_records)
        for virtual in frame.ancilla_virtuals:
            self._tracker.reclaim(virtual, self._scheduler.qubit_time(virtual))
            self._heap.push(virtual)

    # ------------------------------------------------------------------
    # Cost-model inputs
    # ------------------------------------------------------------------
    def _gates_to_parent_uncompute(self, parent: Optional[_Frame]) -> int:
        """Estimate gates between this point and the parent's uncompute."""
        if parent is None:
            return 0
        remaining = self._remaining_static_gates(parent)
        if parent.level == 0:
            # The entry module never uncomputes; garbage deferred to it is
            # only held until the end of the program.
            return remaining
        uncompute_estimate = parent.compute_gates_emitted + self._remaining_block_static(
            parent.module.compute, parent.statement_index + 1
        ) if parent.current_block == "compute" else parent.compute_gates_emitted
        return remaining + uncompute_estimate

    def _remaining_static_gates(self, frame: _Frame) -> int:
        """Static gates left in the frame's forward blocks after its cursor."""
        module = frame.module
        if frame.current_block == "compute":
            return (
                self._remaining_block_static(module.compute, frame.statement_index + 1)
                + self._remaining_block_static(module.store, 0)
            )
        if frame.current_block == "store":
            return self._remaining_block_static(module.store, frame.statement_index + 1)
        return 0

    def _remaining_block_static(self, statements: Sequence[Statement],
                                start: int) -> int:
        total = 0
        for stmt in statements[start:]:
            if isinstance(stmt, GateStmt):
                total += 1
            else:
                total += stmt.module.static_gate_count(self._static_cache)
        return total


def compile_program(
    program: Program,
    machine: Machine,
    policy: str = "square",
    **config_overrides,
) -> CompilationResult:
    """One-call convenience API: compile ``program`` under a named policy.

    Kept as a thin compatibility shim over :class:`SquareCompiler`; new
    code that compiles more than one (program, machine, policy) triple
    should prefer the batch front door in :mod:`repro.api`
    (``Session``/``SweepSpec``), which adds memoization and parallelism.
    """
    config = preset(policy, **config_overrides)
    return SquareCompiler(machine, config).compile(program)
