"""The ancilla heap: the pool of reclaimed qubits available for reuse.

Reclaimed ancilla qubits have been returned to |0> and stay on their
physical site; future allocations may pop them instead of claiming brand
new qubits (Section III-A).  The heap supports the simple LIFO discipline
used by prior work as well as targeted removal, which the locality-aware
allocation heuristic uses to pick the *closest* reclaimed qubit rather
than the most recently pushed one.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import CompilationError


class AncillaHeap:
    """Pool of reclaimed (clean) virtual qubits."""

    def __init__(self) -> None:
        self._stack: List[int] = []
        self._members: set[int] = set()
        self.total_pushes = 0
        self.total_pops = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._stack)

    def __contains__(self, qubit: int) -> bool:
        return qubit in self._members

    def __iter__(self) -> Iterator[int]:
        return iter(self._stack)

    @property
    def qubits(self) -> Tuple[int, ...]:
        """Current heap contents, oldest first."""
        return tuple(self._stack)

    def is_empty(self) -> bool:
        """True when no reclaimed qubits are available."""
        return not self._stack

    # ------------------------------------------------------------------
    def push(self, qubit: int) -> None:
        """Return a reclaimed qubit to the pool.

        Raises:
            CompilationError: If the qubit is already in the heap (a
                double-free in the reclamation logic).
        """
        if qubit in self._members:
            raise CompilationError(f"qubit {qubit} reclaimed twice")
        self._stack.append(qubit)
        self._members.add(qubit)
        self.total_pushes += 1

    def pop(self) -> int:
        """Pop the most recently reclaimed qubit (LIFO).

        Raises:
            CompilationError: If the heap is empty.
        """
        if not self._stack:
            raise CompilationError("ancilla heap is empty")
        qubit = self._stack.pop()
        self._members.discard(qubit)
        self.total_pops += 1
        return qubit

    def remove(self, qubit: int) -> None:
        """Take a specific qubit out of the pool (locality-aware allocation).

        Raises:
            CompilationError: If the qubit is not in the heap.
        """
        if qubit not in self._members:
            raise CompilationError(f"qubit {qubit} is not in the ancilla heap")
        self._stack.remove(qubit)
        self._members.discard(qubit)
        self.total_pops += 1
