"""SQUARE core: ancilla heap, allocation/reclamation heuristics, compiler."""

from repro.core.allocation import (
    AllocationPolicy,
    AllocationRequest,
    LifoAllocation,
    LocalityAwareAllocation,
)
from repro.core.compiler import (
    POLICY_PRESETS,
    CallRecord,
    CompilerConfig,
    SquareCompiler,
    compile_program,
    preset,
)
from repro.core.cost_model import (
    CommunicationEstimator,
    ReclamationCosts,
    reclamation_costs,
    reservation_cost,
    uncompute_cost,
)
from repro.core.heap import AncillaHeap
from repro.core.policies import (
    allocation_policy_names,
    create_allocation_policy,
    create_reclamation_policy,
    reclamation_policy_names,
    register_allocation_policy,
    register_reclamation_policy,
)
from repro.core.reclamation import (
    CostEffectiveReclamation,
    EagerReclamation,
    LazyReclamation,
    ReclamationDecision,
    ReclamationPolicy,
    ReclamationRequest,
)
from repro.core.result import CompilationResult, JobFailure, ReclamationEvent

__all__ = [
    "AllocationPolicy",
    "AllocationRequest",
    "AncillaHeap",
    "CallRecord",
    "CommunicationEstimator",
    "CompilationResult",
    "CompilerConfig",
    "CostEffectiveReclamation",
    "EagerReclamation",
    "JobFailure",
    "LazyReclamation",
    "LifoAllocation",
    "LocalityAwareAllocation",
    "POLICY_PRESETS",
    "ReclamationCosts",
    "ReclamationDecision",
    "ReclamationEvent",
    "ReclamationPolicy",
    "ReclamationRequest",
    "SquareCompiler",
    "allocation_policy_names",
    "compile_program",
    "create_allocation_policy",
    "create_reclamation_policy",
    "preset",
    "reclamation_policy_names",
    "register_allocation_policy",
    "register_reclamation_policy",
    "reclamation_costs",
    "reservation_cost",
    "uncompute_cost",
]
