"""The job manager: submit/status/result/cancel/list over a worker pool.

:class:`JobManager` is the piece that turns a blocking compilation
backend into an asynchronous service core: :meth:`submit` validates
nothing itself (the caller does), registers a
:class:`~repro.queue.jobs.QueuedJob` ticket, and pushes it onto the
bounded :class:`~repro.queue.queue.JobQueue` — returning in microseconds
while the :class:`~repro.queue.workers.WorkerPool` drains the queue
through the ``runner`` callable (normally a
:class:`~repro.service.server.CompilationService` method that executes
against the shared session and its cache tiers).

Lifecycle bookkeeping all happens under one manager lock, which makes
the critical cancellation guarantee cheap to state: a job observed
``QUEUED`` by :meth:`cancel` transitions to ``CANCELLED`` atomically and
is discarded from the queue, so its payload *never runs*; once a worker
has moved it to ``RUNNING`` the cancel is refused.

Two optional collaborators extend the core for multi-tenant production
use (see :mod:`repro.tenancy`):

* a **scheduler** (:class:`~repro.tenancy.fairshare.FairShareScheduler`)
  replaces raw priority-int pop order with a fair-share composite score;
* a **store** (:class:`~repro.tenancy.store.JobStore`) journals every
  accepted submission, lifecycle transition and streamed entry, and is
  replayed at construction time: QUEUED jobs re-enqueue, orphaned
  RUNNING jobs requeue (at most ``max_requeues`` times, then FAILED),
  and terminal jobs are served byte-identically to before the restart.

Finished records are kept for polling and then garbage-collected by a
retention cap (oldest-finished first) — which also ``forget``s them
from the store, so the journal's compacted size stays bounded too.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ReproError, ServiceError, UnknownJobError
from repro.core.result import JobFailure
from repro.queue.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    QueuedJob,
)
from repro.queue.queue import JobQueue
from repro.queue.workers import WorkerPool
from repro.telemetry.spans import current_span
from repro.telemetry.timing import EwmaRate

#: Per-tenant lifecycle counter keys (the ``tenants`` stats section).
_TENANT_COUNTERS = ("submitted", "completed", "failed", "cancelled",
                    "rejected")


class JobManager:
    """Owns the queue, the workers, and every job record's lifecycle.

    Args:
        runner: ``runner(job) -> response payload`` — executes one job's
            work; library errors (:class:`~repro.exceptions.ReproError`)
            mark the job FAILED with a structured
            :class:`~repro.core.result.JobFailure` record instead of
            leaking out of the worker.
        workers: Worker thread count.
        queue_size: Queue capacity (back-pressure threshold).
        retention: Maximum number of *finished* records kept for
            polling; the oldest-finished beyond it are dropped.
        name: Thread-name prefix for the pool.
        scheduler: Optional fair-share scheduler installed on the queue
            (see :class:`~repro.tenancy.fairshare.FairShareScheduler`).
        store: Optional durable :class:`~repro.tenancy.store.JobStore`;
            its journal is replayed *before* the worker pool starts, so
            recovered QUEUED work is already waiting when workers spin
            up.
        max_requeues: How many times a job orphaned RUNNING by a crash
            is requeued before being marked FAILED instead (guards
            against a poison job crash-looping the server forever).
        events: Optional :class:`~repro.telemetry.events.EventLog`
            shared with the queue: push/pop/shed and job lifecycle
            transitions are narrated as structured events.
        clock: Monotonic time source for the entries/sec EWMA gauge;
            injectable so frozen-clock tests get deterministic rates.
    """

    def __init__(self, runner: Callable[[QueuedJob], Dict[str, object]], *,
                 workers: int = 2, queue_size: int = 64,
                 retention: int = 256, name: str = "repro",
                 scheduler=None, store=None, max_requeues: int = 1,
                 events=None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if retention < 0:
            raise ServiceError(f"retention must be >= 0, got {retention}")
        if max_requeues < 0:
            raise ServiceError(
                f"max_requeues must be >= 0, got {max_requeues}")
        self._runner = runner
        self.retention = retention
        self.max_requeues = max_requeues
        self.scheduler = scheduler
        self.store = store
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, QueuedJob]" = OrderedDict()
        self._ids = itertools.count(1)
        self.events = events
        self.queue = JobQueue(capacity=queue_size, scheduler=scheduler,
                              events=events)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.gc_dropped = 0
        self.entries_recorded = 0
        self.resumed_queued = 0
        self.requeued_running = 0
        self.recovered_terminal = 0
        self.orphans_failed = 0
        self._tenant_counters: Dict[str, Dict[str, int]] = {}
        self._entry_rate = EwmaRate(half_life=30.0, clock=clock)
        self._crashed = False
        if store is not None:
            self._recover()
        # Started last: workers may pop as soon as this line runs.
        self.pool = WorkerPool(self._run_job, self.queue, workers=workers,
                               name=name)

    # ------------------------------------------------------------------
    # Durable-store recovery (constructor only, pre-pool)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the store's journal into the live job table.

        Runs before the worker pool exists, so no lock is contended;
        recovered QUEUED jobs are re-enqueued *without* a burst charge
        (a restart's surviving backlog is not new demand), orphaned
        RUNNING jobs requeue at most ``max_requeues`` times, and
        terminal records come back verbatim — their journaled response
        is what ``GET /jobs/<id>`` serves, byte-identical to pre-crash.
        """
        snapshot = self.store.load_burst()
        if snapshot and self.scheduler is not None:
            # Seed the journaled burst scores, decayed by the downtime.
            # Wall clock by design: the snapshot stamp predates this
            # process, so a monotonic delta would be meaningless.
            now = time.time()  # lint: wall-clock (journal stamp delta)
            elapsed = now - float(snapshot.get("at") or 0.0)
            self.scheduler.restore_burst(snapshot.get("scores") or {},
                                         max(0.0, elapsed))
        max_id = 0
        for record in self.store.load():
            job = QueuedJob.from_snapshot(record)
            self._jobs[job.job_id] = job
            suffix = job.job_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                max_id = max(max_id, int(suffix))
            # Rebuild the per-tenant lifecycle counters the crash lost,
            # so a restarted server's /stats and /metrics tenant series
            # agree with the journal instead of starting from zero.
            self._tenant_bump(job.tenant, "submitted")
            if job.state == DONE:
                self._tenant_bump(job.tenant, "completed")
            elif job.state == FAILED:
                self._tenant_bump(job.tenant, "failed")
            elif job.state == CANCELLED:
                self._tenant_bump(job.tenant, "cancelled")
            if job.is_terminal:
                self.recovered_terminal += 1
                continue
            if job.state == RUNNING:
                # Orphaned mid-run by the crash: the worker died with it.
                if job.retries >= self.max_requeues:
                    self._fail_orphan(job)
                    continue
                job.retries += 1
                job.state = QUEUED
                job.started_at = None
                self.requeued_running += 1
                self.store.record_transition(job)
            else:
                self.resumed_queued += 1
            self.queue.push(job, record_burst=False)
        if max_id:
            self._ids = itertools.count(max_id + 1)

    def _fail_orphan(self, job: QueuedJob) -> None:
        """Mark a repeatedly-orphaned job FAILED instead of requeuing.

        A job found RUNNING after ``max_requeues`` earlier recoveries is
        treated as a poison payload: requeuing it again would just crash
        the next server too.
        """
        failure = JobFailure(
            program_name=job.kind,
            machine_name="-",
            policy_name="-",
            error_type="ServiceError",
            message=(f"job {job.job_id} was orphaned RUNNING by a server "
                     f"restart {job.retries + 1} time(s); giving up after "
                     f"{self.max_requeues} requeue(s)"),
        )
        job.error = failure.to_dict()
        job.transition(FAILED)
        self.orphans_failed += 1
        self._tenant_bump(job.tenant, "failed")
        self.store.record_transition(job)

    # ------------------------------------------------------------------
    # Submission and lookup
    # ------------------------------------------------------------------
    def submit(self, kind: str, payload: Dict[str, object],
               priority: int = 0, tenant=None,
               deadline_seconds: Optional[float] = None,
               trace_id: Optional[str] = None) -> QueuedJob:
        """Register and enqueue one job; returns its ticket immediately.

        Args:
            kind: Work type (``"compile"`` or ``"sweep"``).
            payload: The JSON-compatible work descriptor.
            priority: Higher runs sooner (one input to the fair-share
                score when a scheduler is installed).
            tenant: The submitting
                :class:`~repro.tenancy.tenants.Tenant`, or None for
                pre-tenancy callers; drives quotas and fair share.
            deadline_seconds: Optional client-declared time budget; the
                scheduler raises urgency as the job burns through it.
            trace_id: Request-trace correlation id attached to the
                record (and its journal entry) for cross-fleet tracing.

        Raises:
            QuotaExceededError: The tenant is at its ``max_queued`` cap.
            BackPressureError: The queue is full; nothing was registered.
            ServiceError: The manager is closed.
        """
        with self._lock:
            job = QueuedJob(f"job-{next(self._ids):06d}", kind, payload,
                            priority=priority)
            job.tenant = tenant
            job.deadline_seconds = deadline_seconds
            job.trace_id = trace_id
            # Stamp the submitting span (if any) before the push: a
            # worker may pop and run the job before submit() returns,
            # so this cannot wait until after the ticket comes back.
            active = current_span()
            job.span_parent = active.span_id if active is not None else None
            self._jobs[job.job_id] = job
            try:
                self.queue.push(job)
            except ServiceError:
                # Rejected (back-pressure, quota, or closed): the ticket
                # never existed as far as clients are concerned.
                del self._jobs[job.job_id]
                self._tenant_bump(tenant, "rejected")
                raise
            self.submitted += 1
            self._tenant_bump(tenant, "submitted")
            if self.store is not None:
                self.store.record_submit(job)
                if self.scheduler is not None:
                    # Journal the burst-score table alongside the
                    # submission that just charged it, stamped with wall
                    # time — the only clock that survives a restart — so
                    # a flooding tenant cannot reset its penalty by
                    # crashing the server.
                    self.store.record_burst(
                        self.scheduler.burst.scores(),
                        time.time())  # lint: wall-clock (journal stamp)
            self._gc_locked()
            return job

    def _emit(self, level: str, message: str, job: QueuedJob,
              fields: Optional[Mapping[str, object]] = None) -> None:
        """Narrate one job lifecycle event (no-op without an event log).

        Correlation is explicit — lifecycle transitions happen on
        worker threads after the job's span has closed, so nothing can
        be pulled from the span context here.
        """
        if self.events is None:
            return
        tenant = getattr(job, "tenant", None)
        self.events.emit(level, message, component="manager",
                         tenant=tenant.name if tenant is not None else None,
                         job_id=job.job_id,
                         trace_id=getattr(job, "trace_id", None),
                         fields=fields)

    def _tenant_bump(self, tenant, key: str) -> None:
        """Increment one per-tenant lifecycle counter (lock held)."""
        if tenant is None:
            return
        bucket = self._tenant_counters.setdefault(
            tenant.name, {counter: 0 for counter in _TENANT_COUNTERS})
        bucket[key] += 1

    def get(self, job_id: str) -> QueuedJob:
        """The live record for ``job_id``.

        Raises:
            UnknownJobError: Unknown id, or already garbage-collected.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(
                f"unknown job id {job_id!r} (never submitted, or already "
                f"garbage-collected by the retention policy)")
        return job

    def status(self, job_id: str) -> Dict[str, object]:
        """JSON status payload for one job (result inline once DONE)."""
        return self.get(job_id).to_dict()

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> QueuedJob:
        """Block until the job is terminal; raises ServiceError on timeout."""
        job = self.get(job_id)
        if not job.wait(timeout):
            raise ServiceError(
                f"timed out after {timeout}s waiting for {job_id} "
                f"(state={job.state})")
        return job

    def result(self, job_id: str) -> Dict[str, object]:
        """The DONE response payload; failed/unfinished jobs raise.

        A FAILED job re-raises its original exception (the same type the
        synchronous path would have raised); QUEUED/RUNNING raise
        :class:`~repro.exceptions.ServiceError`; CANCELLED likewise.
        """
        job = self.get(job_id)
        if job.state == DONE:
            return job.response
        if job.state == FAILED:
            raise self.failure_exception(job)
        raise ServiceError(
            f"job {job_id} has no result (state={job.state})")

    def jobs(self, state: Optional[str] = None,
             limit: Optional[int] = None) -> List[QueuedJob]:
        """Snapshot of records in submission order, optionally filtered.

        Args:
            state: Keep only records currently in this lifecycle state.
            limit: Keep only the *most recently submitted* ``limit``
                records (applied after the state filter), so a busy
                server's job listing stays cheap to fetch.
        """
        if state is not None and state not in STATES:
            raise ServiceError(f"unknown job state {state!r}; "
                               f"expected one of {list(STATES)}")
        if limit is not None and limit < 0:
            raise ServiceError(f"limit must be >= 0, got {limit}")
        with self._lock:
            records = list(self._jobs.values())
        if state is not None:
            records = [job for job in records if job.state == state]
        if limit is not None:
            records = records[len(records) - min(limit, len(records)):]
        return records

    # ------------------------------------------------------------------
    # Per-entry streaming
    # ------------------------------------------------------------------
    def record_entry(self, job: QueuedJob,
                     record: Mapping[str, object]) -> None:
        """Publish one finished-entry record on a job's progress stream.

        Called by the runner (worker thread) as each sweep entry
        completes; long-pollers blocked in :meth:`entries_since` wake
        immediately.  The record is journaled too, so a restarted
        server's entry cursors resume exactly where the stream stopped.
        """
        job.add_entry(record)
        with self._lock:
            self.entries_recorded += 1
            self._entry_rate.mark()
            if self.store is not None:
                self.store.record_entry(job.job_id, record)

    def entries_since(self, job_id: str, since: int = 0,
                      timeout: Optional[float] = None) -> Dict[str, object]:
        """Long-poll payload for entries beyond the ``since`` cursor.

        Blocks until new entries exist, the job is terminal, or
        ``timeout`` elapses.  The payload's ``state`` is read atomically
        with the entry slice, so a terminal state means the slice
        completes the stream; ``next`` is the cursor to resume from.

        Raises:
            UnknownJobError: Unknown or garbage-collected job id.
            ServiceError: Negative ``since`` cursor.
        """
        job = self.get(job_id)
        state, entries, total = job.entries_since(since, timeout)
        return {
            "job_id": job.job_id,
            "state": state,
            "since": since,
            "next": since + len(entries),
            "total": total,
            "entries": entries,
        }

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Tuple[QueuedJob, bool]:
        """Cancel a QUEUED job; returns ``(job, cancelled)``.

        The QUEUED check, the CANCELLED transition and the queue discard
        happen under one lock, so a cancelled job can never be picked up
        afterwards: either the cancel wins (the job never runs) or the
        worker already moved it to RUNNING (the cancel is refused).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job id {job_id!r}")
            if job.state != QUEUED:
                return job, False
            self.queue.discard(job_id)
            job.transition(CANCELLED)
            self.cancelled += 1
            self._tenant_bump(job.tenant, "cancelled")
            if self.store is not None:
                self.store.record_transition(job)
        self._emit("INFO", "job cancelled", job)
        return job, True

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _run_job(self, job: QueuedJob) -> None:
        """Worker handler: lifecycle around one ``runner`` invocation."""
        with self._lock:
            if job.state != QUEUED:
                return  # lost the race against a cancel
            job.transition(RUNNING)
            if self.store is not None:
                self.store.record_transition(job)
        try:
            response = self._runner(job)
        except ReproError as error:
            self._finish_failed(job, error)
        except Exception as error:  # pragma: no cover - runner bug guard
            self._finish_failed(job, error)
        else:
            with self._lock:
                job.response = response
                job.transition(DONE)
                self.completed += 1
                self._tenant_bump(job.tenant, "completed")
                if self.store is not None:
                    self.store.record_transition(job)
            self._emit("INFO", "job done", job,
                       fields={"kind": job.kind,
                               "entries": len(job.entries)})

    def _finish_failed(self, job: QueuedJob, error: BaseException) -> None:
        """Record a runner-raised error as a structured FAILED state.

        Job coordinates come from the submitted descriptor where the
        payload shape exposes them (``{"job": {...}}`` submissions);
        sweep-shaped payloads fall back to the job kind.
        """
        descriptor = job.payload.get("job")
        if not isinstance(descriptor, dict):
            descriptor = {}
        machine = descriptor.get("machine")
        policy = descriptor.get("policy")
        failure = JobFailure(
            program_name=str(descriptor.get("benchmark", job.kind)),
            machine_name=json.dumps(machine, sort_keys=True)
            if isinstance(machine, dict) else str(machine or "-"),
            policy_name=str(policy or "-"),
            error_type=type(error).__name__,
            message=str(error),
        )
        with self._lock:
            job.error = failure.to_dict()
            job.exception = error
            job.transition(FAILED)
            self.failed += 1
            self._tenant_bump(job.tenant, "failed")
            if self.store is not None:
                self.store.record_transition(job)
        self._emit("ERROR", f"job failed: {type(error).__name__}", job,
                   fields={"kind": job.kind, "message": str(error)})

    def failure_exception(self, job: QueuedJob) -> Exception:
        """Rebuild the exception behind a FAILED job, preserving type."""
        if isinstance(job.exception, Exception):
            return job.exception
        if job.error is not None:
            return JobFailure.from_dict(job.error).to_exception()
        return ServiceError(f"job {job.job_id} failed without a record")

    # ------------------------------------------------------------------
    # Retention GC and shutdown
    # ------------------------------------------------------------------
    def _gc_locked(self) -> int:
        """Drop oldest-finished records beyond ``retention`` (lock held).

        Dropped ids are ``forget``-ten from the store too, so the
        journal's live set — and therefore its compacted size — tracks
        the retention cap instead of growing with server lifetime.
        """
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.is_terminal]
        dropped_ids = finished[:max(0, len(finished) - self.retention)]
        for job_id in dropped_ids:
            del self._jobs[job_id]
        self.gc_dropped += len(dropped_ids)
        if dropped_ids and self.store is not None:
            self.store.forget(dropped_ids)
        return len(dropped_ids)

    def gc(self) -> int:
        """Apply the retention policy now; returns records dropped."""
        with self._lock:
            return self._gc_locked()

    def close(self, drain: bool = False,
              timeout: Optional[float] = 10.0) -> bool:
        """Shut the subsystem down; returns True on a clean join.

        Args:
            drain: When True, workers finish the queued backlog first;
                when False (default) queued jobs are dropped and their
                records marked CANCELLED.
            timeout: Per-thread join timeout.
        """
        if self._crashed:
            return True  # a "crashed" manager is already gone
        dropped = self.queue.close(drain=drain)
        with self._lock:
            for job in dropped:
                if job.state == QUEUED:
                    job.transition(CANCELLED)
                    self.cancelled += 1
                    self._tenant_bump(job.tenant, "cancelled")
                    if self.store is not None:
                        self.store.record_transition(job)
        joined = self.pool.close(timeout)
        if self.store is not None:
            self.store.close()
        return joined

    def crash(self) -> None:
        """Simulate a process kill (test/demo seam — no real SIGKILL).

        Ordering is the whole point: the store is frozen *first*, so
        nothing that happens afterwards is journaled — exactly like a
        process that died.  Queued jobs are dropped without CANCELLED
        transitions (a crash cancels nothing; the journal still says
        QUEUED, which is what recovery replays), and worker threads are
        not joined (a busy "dead" worker finishing later mutates only
        in-memory state that a real crash would have lost anyway).
        """
        self._crashed = True
        if self.store is not None:
            self.store.close()
        self.queue.close(drain=False)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-compatible queue/worker/lifecycle telemetry."""
        with self._lock:
            states = {state: 0 for state in STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            retained = len(self._jobs)
            tenants = {name: dict(bucket)
                       for name, bucket in self._tenant_counters.items()}
            entries_per_second = self._entry_rate.rate()
        stats = {
            "queue": self.queue.stats(),
            "pool": self.pool.stats(),
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "retained": retained,
            "retention": self.retention,
            "gc_dropped": self.gc_dropped,
            "entries_recorded": self.entries_recorded,
            "entries_per_second": entries_per_second,
            "states": states,
            "tenants": tenants,
        }
        if self.scheduler is not None:
            stats["fair_share"] = self.scheduler.stats()
        if self.store is not None:
            stats["store"] = self.store.stats()
            stats["recovery"] = {
                "resumed_queued": self.resumed_queued,
                "requeued_running": self.requeued_running,
                "recovered_terminal": self.recovered_terminal,
                "orphans_failed": self.orphans_failed,
                "max_requeues": self.max_requeues,
            }
        return stats

    def __repr__(self) -> str:
        return (f"JobManager(workers={self.pool.workers}, "
                f"queue={len(self.queue)}/{self.queue.capacity}, "
                f"submitted={self.submitted})")
