"""Bounded, priority-aware, thread-safe job queue with back-pressure.

The queue is the service's pressure valve: submissions beyond
``capacity`` are rejected *immediately* with a structured
:class:`~repro.exceptions.BackPressureError` (HTTP 503 on the wire)
instead of letting an unbounded backlog eat the server.  On top of the
global cap sit *per-tenant* quotas: a job whose tenant already has
``max_queued`` jobs waiting is rejected with
:class:`~repro.exceptions.QuotaExceededError` (HTTP 429) while every
other tenant keeps submitting — one noisy tenant back-pressures only
itself.

Pop order has two modes:

* **Raw priority** (default, no scheduler): higher ``priority`` pops
  first; within a priority, submission order (FIFO) wins.
* **Fair share** (a :class:`~repro.tenancy.fairshare.FairShareScheduler`
  installed): the waiting job with the highest *composite* score pops —
  role weight, queue age, deadline urgency, and the tenant's decaying
  burst penalty all factor in, recomputed at every pop so the backlog
  keeps reordering as bursts decay and jobs age.

Workers block in :meth:`JobQueue.pop` until a job or shutdown arrives;
:meth:`JobQueue.close` wakes every worker, and a closed, drained queue
pops ``None`` — the worker-pool shutdown signal.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Dict, List, Optional, Tuple

from repro.exceptions import (
    BackPressureError,
    QuotaExceededError,
    ServiceError,
)
from repro.queue.jobs import QueuedJob


class JobQueue:
    """A bounded max-priority queue of :class:`QueuedJob` records.

    Args:
        capacity: Maximum number of waiting jobs; pushes beyond it raise
            :class:`~repro.exceptions.BackPressureError`.
        scheduler: Optional fair-share scheduler; when present, pop
            order follows its composite score instead of the raw
            priority int, and pushes are charged to the submitting
            tenant's burst score.
        events: Optional :class:`~repro.telemetry.events.EventLog`;
            when present, every push/pop/shed is narrated as a
            structured event (correlated to the submitting request's
            span when one is active).
    """

    def __init__(self, capacity: int = 64, scheduler=None,
                 events=None) -> None:
        if capacity < 1:
            raise ServiceError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.scheduler = scheduler
        self.events = events
        self._cond = threading.Condition()
        #: Heap of (-priority, sequence, job): max-priority, FIFO ties.
        #: Under a scheduler the list is scanned (scored at pop time)
        #: instead of heap-popped, but the invariant stays cheap to
        #: keep, so switching modes never rebuilds anything.
        self._heap: List[Tuple[int, int, QueuedJob]] = []
        self._sequence = itertools.count()
        self._closed = False
        self._tenant_depth: Dict[str, int] = {}
        self.pushed = 0
        self.rejected = 0
        self.quota_rejected = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _tenant_name(job: QueuedJob) -> Optional[str]:
        tenant = getattr(job, "tenant", None)
        return tenant.name if tenant is not None else None

    def _depth_add(self, job: QueuedJob, delta: int) -> None:
        name = self._tenant_name(job)
        if name is None:
            return
        depth = self._tenant_depth.get(name, 0) + delta
        if depth > 0:
            self._tenant_depth[name] = depth
        else:
            self._tenant_depth.pop(name, None)

    def push(self, job: QueuedJob, record_burst: bool = True) -> int:
        """Enqueue a job; returns the queue depth after the push.

        Args:
            job: The record to enqueue.
            record_burst: Charge the push to the tenant's burst score
                (False on the store-recovery path — re-enqueuing a
                restart's surviving backlog is not new demand).

        Raises:
            QuotaExceededError: The job's tenant is at its per-tenant
                ``max_queued`` cap (other tenants are unaffected).
            BackPressureError: The queue is at global capacity.
            ServiceError: The queue has been closed.
        """
        with self._cond:
            if self._closed:
                raise ServiceError("job queue is closed; no new submissions")
            tenant = getattr(job, "tenant", None)
            if tenant is not None and tenant.max_queued is not None:
                depth = self._tenant_depth.get(tenant.name, 0)
                if depth >= tenant.max_queued:
                    self.quota_rejected += 1
                    if self.events is not None:
                        self.events.warning(
                            "job shed: tenant quota", component="queue",
                            tenant=tenant.name, job_id=job.job_id,
                            trace_id=getattr(job, "trace_id", None),
                            fields={"depth": depth,
                                    "max_queued": tenant.max_queued})
                    raise QuotaExceededError(
                        f"tenant {tenant.name!r} already has {depth}/"
                        f"{tenant.max_queued} job(s) waiting; retry "
                        f"after some finish",
                        tenant=tenant.name, depth=depth,
                        capacity=tenant.max_queued,
                    )
            if len(self._heap) >= self.capacity:
                self.rejected += 1
                if self.events is not None:
                    self.events.warning(
                        "job shed: back-pressure", component="queue",
                        tenant=self._tenant_name(job), job_id=job.job_id,
                        trace_id=getattr(job, "trace_id", None),
                        fields={"depth": len(self._heap),
                                "capacity": self.capacity})
                raise BackPressureError(
                    f"job queue is full ({len(self._heap)}/{self.capacity} "
                    f"jobs waiting); retry later",
                    depth=len(self._heap), capacity=self.capacity,
                )
            heapq.heappush(self._heap,
                           (-job.priority, next(self._sequence), job))
            self._depth_add(job, +1)
            if self.scheduler is not None:
                self.scheduler.on_push(job, record_burst)
            self.pushed += 1
            if self.events is not None:
                self.events.debug(
                    "job queued", component="queue",
                    tenant=self._tenant_name(job), job_id=job.job_id,
                    trace_id=getattr(job, "trace_id", None),
                    fields={"depth": len(self._heap),
                            "priority": job.priority})
            self._cond.notify()
            return len(self._heap)

    def _pop_locked(self) -> QueuedJob:
        """Remove and return the next job (lock held, heap non-empty)."""
        if self.scheduler is None:
            return heapq.heappop(self._heap)[2]
        now = self.scheduler.clock()
        best = max(range(len(self._heap)),
                   key=lambda index: (
                       self.scheduler.score(self._heap[index][2], now),
                       -self._heap[index][1]))
        job = self._heap.pop(best)[2]
        heapq.heapify(self._heap)
        return job

    def pop(self, timeout: Optional[float] = None) -> Optional[QueuedJob]:
        """Dequeue the best waiting job, blocking while empty.

        "Best" is the highest raw priority (FIFO ties) without a
        scheduler, or the highest fair-share composite score with one.
        Returns ``None`` when the queue is closed and drained (shutdown
        signal), or when ``timeout`` elapses with nothing to pop.
        """
        with self._cond:
            while not self._heap and not self._closed:
                if not self._cond.wait(timeout):
                    return None
            if self._heap:
                job = self._pop_locked()
                self._depth_add(job, -1)
                if self.events is not None:
                    self.events.debug(
                        "job popped", component="queue",
                        tenant=self._tenant_name(job), job_id=job.job_id,
                        trace_id=getattr(job, "trace_id", None),
                        fields={"depth": len(self._heap)})
                return job
            return None  # closed and drained

    def discard(self, job_id: str) -> bool:
        """Remove a waiting job by id (cancellation support).

        Returns True when the job was waiting and is now gone — after
        which no worker can ever pop it; False when it was not in the
        queue (already popped, or never pushed).
        """
        with self._cond:
            for position, (_, _, job) in enumerate(self._heap):
                if job.job_id == job_id:
                    self._heap.pop(position)
                    heapq.heapify(self._heap)
                    self._depth_add(job, -1)
                    return True
            return False

    def close(self, drain: bool = True) -> List[QueuedJob]:
        """Stop accepting pushes and wake every blocked worker.

        Args:
            drain: When True (default) already-queued jobs stay poppable
                so workers finish the backlog; when False the backlog is
                dropped and returned (the manager cancels those records).
        """
        with self._cond:
            self._closed = True
            dropped: List[QueuedJob] = []
            if not drain:
                dropped = [job for _, _, job in self._heap]
                self._heap.clear()
                self._tenant_depth.clear()
            self._cond.notify_all()
            return dropped

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        """Current depth (number of waiting jobs)."""
        with self._cond:
            return len(self._heap)

    def tenant_depths(self) -> Dict[str, int]:
        """Waiting-job count per tenant (tenants with jobs only)."""
        with self._cond:
            return dict(self._tenant_depth)

    def stats(self) -> dict:
        """JSON-compatible counters for service telemetry."""
        with self._cond:
            return {
                "depth": len(self._heap),
                "capacity": self.capacity,
                "pushed": self.pushed,
                "rejected": self.rejected,
                "quota_rejected": self.quota_rejected,
                "tenant_depths": dict(self._tenant_depth),
                "fair_share": self.scheduler is not None,
                "closed": self._closed,
            }

    def __repr__(self) -> str:
        return (f"JobQueue(depth={len(self)}, capacity={self.capacity}, "
                f"closed={self._closed})")
