"""Bounded, priority-aware, thread-safe job queue with back-pressure.

The queue is the service's pressure valve: submissions beyond
``capacity`` are rejected *immediately* with a structured
:class:`~repro.exceptions.BackPressureError` (HTTP 503 on the wire)
instead of letting an unbounded backlog eat the server.  Higher
``priority`` jobs pop first; within a priority, submission order (FIFO)
wins, so equal-priority work is fair.

Workers block in :meth:`JobQueue.pop` until a job or shutdown arrives;
:meth:`JobQueue.close` wakes every worker, and a closed, drained queue
pops ``None`` — the worker-pool shutdown signal.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import List, Optional, Tuple

from repro.exceptions import BackPressureError, ServiceError
from repro.queue.jobs import QueuedJob


class JobQueue:
    """A bounded max-priority queue of :class:`QueuedJob` records.

    Args:
        capacity: Maximum number of waiting jobs; pushes beyond it raise
            :class:`~repro.exceptions.BackPressureError`.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ServiceError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._cond = threading.Condition()
        #: Heap of (-priority, sequence, job): max-priority, FIFO ties.
        self._heap: List[Tuple[int, int, QueuedJob]] = []
        self._sequence = itertools.count()
        self._closed = False
        self.pushed = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def push(self, job: QueuedJob) -> int:
        """Enqueue a job; returns the queue depth after the push.

        Raises:
            BackPressureError: The queue is at capacity.
            ServiceError: The queue has been closed.
        """
        with self._cond:
            if self._closed:
                raise ServiceError("job queue is closed; no new submissions")
            if len(self._heap) >= self.capacity:
                self.rejected += 1
                raise BackPressureError(
                    f"job queue is full ({len(self._heap)}/{self.capacity} "
                    f"jobs waiting); retry later",
                    depth=len(self._heap), capacity=self.capacity,
                )
            heapq.heappush(self._heap,
                           (-job.priority, next(self._sequence), job))
            self.pushed += 1
            self._cond.notify()
            return len(self._heap)

    def pop(self, timeout: Optional[float] = None) -> Optional[QueuedJob]:
        """Dequeue the highest-priority job, blocking while empty.

        Returns ``None`` when the queue is closed and drained (shutdown
        signal), or when ``timeout`` elapses with nothing to pop.
        """
        with self._cond:
            while not self._heap and not self._closed:
                if not self._cond.wait(timeout):
                    return None
            if self._heap:
                return heapq.heappop(self._heap)[2]
            return None  # closed and drained

    def discard(self, job_id: str) -> bool:
        """Remove a waiting job by id (cancellation support).

        Returns True when the job was waiting and is now gone — after
        which no worker can ever pop it; False when it was not in the
        queue (already popped, or never pushed).
        """
        with self._cond:
            for position, (_, _, job) in enumerate(self._heap):
                if job.job_id == job_id:
                    self._heap.pop(position)
                    heapq.heapify(self._heap)
                    return True
            return False

    def close(self, drain: bool = True) -> List[QueuedJob]:
        """Stop accepting pushes and wake every blocked worker.

        Args:
            drain: When True (default) already-queued jobs stay poppable
                so workers finish the backlog; when False the backlog is
                dropped and returned (the manager cancels those records).
        """
        with self._cond:
            self._closed = True
            dropped: List[QueuedJob] = []
            if not drain:
                dropped = [job for _, _, job in self._heap]
                self._heap.clear()
            self._cond.notify_all()
            return dropped

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        """Current depth (number of waiting jobs)."""
        with self._cond:
            return len(self._heap)

    def stats(self) -> dict:
        """JSON-compatible counters for service telemetry."""
        with self._cond:
            return {
                "depth": len(self._heap),
                "capacity": self.capacity,
                "pushed": self.pushed,
                "rejected": self.rejected,
                "closed": self._closed,
            }

    def __repr__(self) -> str:
        return (f"JobQueue(depth={len(self)}, capacity={self.capacity}, "
                f"closed={self._closed})")
