"""Asynchronous job-queue subsystem: tickets, back-pressure, workers.

This package is the layer between a network transport and the blocking
compilation backend (:class:`~repro.api.session.Session`): submissions
return a ticket immediately, a worker pool drains a bounded priority
queue, and clients poll the ticket for status and results — the shape
that lets one server absorb large sweeps without blocking small
requests.

* :mod:`repro.queue.jobs` — :class:`QueuedJob` lifecycle records
  (QUEUED → RUNNING → DONE/FAILED/CANCELLED).
* :mod:`repro.queue.queue` — :class:`JobQueue`, bounded and
  priority-aware, rejecting with
  :class:`~repro.exceptions.BackPressureError` when full (and with
  :class:`~repro.exceptions.QuotaExceededError` when one tenant's
  ``max_queued`` cap is hit); an optional
  :class:`~repro.tenancy.fairshare.FairShareScheduler` replaces raw
  priority pops with fair-share composite scoring.
* :mod:`repro.queue.workers` — :class:`WorkerPool` threads draining the
  queue with per-job failure isolation and graceful shutdown.
* :mod:`repro.queue.manager` — :class:`JobManager` tying them together:
  submit/status/result/cancel/list plus retention-based GC and the
  per-entry progress stream (``record_entry``/``entries_since``) that
  long-poll endpoints and cluster coordinators consume; hand it a
  :class:`~repro.tenancy.store.JobStore` and every lifecycle event is
  journaled and replayed on restart (QUEUED resumes, orphaned RUNNING
  requeues, DONE serves byte-identically).

:mod:`repro.service` mounts a :class:`JobManager` behind its HTTP
endpoints (``/jobs``, ``/jobs/<id>``, ``/jobs/<id>/cancel``); the
subsystem itself is transport-free and usable in-process::

    from repro.queue import JobManager

    manager = JobManager(runner, workers=4, queue_size=128)
    ticket = manager.submit("compile", {"benchmark": "RD53"})
    manager.wait(ticket.job_id)
    payload = manager.result(ticket.job_id)
"""

from repro.queue.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    QueuedJob,
)
from repro.queue.manager import JobManager
from repro.queue.queue import JobQueue
from repro.queue.workers import WorkerPool

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JobManager",
    "JobQueue",
    "QUEUED",
    "QueuedJob",
    "RUNNING",
    "STATES",
    "TERMINAL_STATES",
    "WorkerPool",
]
