"""Queued-job records: lifecycle states, timestamps, serialization.

A :class:`QueuedJob` is the ticket a client gets back from an
asynchronous submission: a monotonic id, the work payload, a priority,
and a state that walks the lifecycle::

    QUEUED ──▶ RUNNING ──▶ DONE
       │           └─────▶ FAILED
       └─────────────────▶ CANCELLED

``DONE``/``FAILED``/``CANCELLED`` are terminal; a record never leaves a
terminal state.  State transitions are validated here but *synchronized*
by the owning :class:`~repro.queue.manager.JobManager` (every transition
happens under the manager's lock), so the record itself stays a plain
mutable object.  A :class:`threading.Event` fires exactly once, when the
job reaches any terminal state, which is what synchronous waiters and
``wait_for`` poll loops block on.

Long-running jobs (sweeps) additionally stream *per-entry* progress: the
worker appends one record per finished entry via :meth:`QueuedJob.add_entry`,
and :meth:`QueuedJob.entries_since` is the long-poll primitive behind the
``GET /jobs/<id>/entries?since=N`` endpoint — the entry list is
append-only, so a ``since`` cursor can never skip or duplicate entries.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ServiceError

#: Lifecycle states.
QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

#: Every state, in lifecycle order.
STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job can never leave.
TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED))

#: Legal state transitions; terminal states allow none.
_TRANSITIONS = {
    QUEUED: frozenset((RUNNING, CANCELLED, FAILED)),
    RUNNING: frozenset((DONE, FAILED)),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


class QueuedJob:
    """One asynchronous work item and its full lifecycle record.

    Attributes:
        job_id: Monotonic id assigned by the manager (``"job-000001"``).
        kind: Work type, ``"compile"`` or ``"sweep"``.
        payload: The JSON-compatible work descriptor, as submitted.
        priority: Higher runs sooner; ties break in submission order.
        state: Current lifecycle state (one of :data:`STATES`).
        submitted_at: Wall-clock submission time (``time.time()``).
        started_at: When a worker picked the job up, or None.
        finished_at: When the job reached a terminal state, or None.
        tenant: The :class:`~repro.tenancy.tenants.Tenant` principal
            the job was submitted as, or None (pre-tenancy callers);
            drives per-tenant quotas and fair-share scheduling.
        trace_id: Request-trace correlation id (the ``X-Repro-Trace``
            header value, server-minted when absent).  Carried on the
            record, journaled with it, and propagated to cluster shards
            so one client request can be followed across the fleet.
        span_parent: Span id of the submitting handler's span, or None.
            Stamped by the manager at submission (under its lock) so the
            worker can parent its ``queue.wait``/``job.run`` spans to
            the handler — contextvars do not cross the queue.  Never
            journaled: spans live in a process-local ring buffer, so
            after a restart there is no parent span to link to.
        deadline_seconds: Optional client-declared time budget; the
            fair-share scheduler raises a job's urgency as it burns
            through it.
        retries: Times the job has been requeued after being orphaned
            RUNNING by a server crash (durable-store recovery).
        enqueued_at: Scheduler-clock enqueue stamp (set by the queue
            when a fair-share scheduler is installed); the age basis.
        response: The endpoint-shaped result payload once ``DONE``.
        error: Structured error record (``{"error_type", "message"}``
            shape, normally :meth:`~repro.core.result.JobFailure.to_dict`
            output) once ``FAILED``.
        exception: The in-process exception object behind ``error`` —
            never serialized, used by the synchronous submit-and-wait
            path to re-raise the original type.
        entries: Append-only per-entry progress records, published by the
            worker as each sweep entry finishes (streaming surface).
    """

    def __init__(self, job_id: str, kind: str,
                 payload: Mapping[str, object], priority: int = 0) -> None:
        self.job_id = job_id
        self.kind = kind
        self.payload = dict(payload)
        self.priority = priority
        self.state = QUEUED
        self.tenant = None
        self.trace_id: Optional[str] = None
        self.span_parent: Optional[str] = None
        self.deadline_seconds: Optional[float] = None
        self.retries = 0
        self.enqueued_at: Optional[float] = None
        self.submitted_at = time.time()  # lint: wall-clock (wire timestamp)
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.response: Optional[Dict[str, object]] = None
        self.error: Optional[Dict[str, object]] = None
        self.exception: Optional[BaseException] = None
        self.entries: List[Dict[str, object]] = []
        self._done = threading.Event()
        self._entries_cond = threading.Condition()

    # ------------------------------------------------------------------
    @property
    def is_terminal(self) -> bool:
        """True once the job can never change state again."""
        return self.state in TERMINAL_STATES

    @property
    def wait_seconds(self) -> Optional[float]:
        """Queue residence time: submission to pickup (or cancel)."""
        end = self.started_at if self.started_at is not None \
            else self.finished_at
        return None if end is None else end - self.submitted_at

    @property
    def run_seconds(self) -> Optional[float]:
        """Execution time: pickup to terminal state."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; True unless timed out."""
        return self._done.wait(timeout)

    # ------------------------------------------------------------------
    # Per-entry streaming
    # ------------------------------------------------------------------
    def add_entry(self, record: Mapping[str, object]) -> int:
        """Append one finished-entry record; returns the new entry count.

        Called by the worker as each sweep entry completes, *before* the
        job's terminal transition, so a reader that observes a terminal
        state is guaranteed to see the complete entry list.
        """
        with self._entries_cond:
            self.entries.append(dict(record))
            self._entries_cond.notify_all()
            return len(self.entries)

    def entries_since(self, since: int = 0,
                      timeout: Optional[float] = None
                      ) -> Tuple[str, List[Dict[str, object]], int]:
        """Long-poll for entries beyond the ``since`` cursor.

        Blocks until at least one entry past ``since`` exists, the job is
        terminal, or ``timeout`` elapses; returns ``(state, entries[since:],
        total)`` read atomically, so a terminal ``state`` means the
        returned slice completes the stream.  The list is append-only:
        consecutive calls with ``since`` advanced by the slice length
        never skip or duplicate an entry.
        """
        if since < 0:
            raise ServiceError(f"entry cursor must be >= 0, got {since}")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._entries_cond:
            while len(self.entries) <= since and not self.is_terminal:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                if not self._entries_cond.wait(remaining):
                    break
            return self.state, list(self.entries[since:]), len(self.entries)

    # ------------------------------------------------------------------
    def transition(self, state: str) -> None:
        """Move to ``state``, enforcing the lifecycle diagram.

        Caller must hold the owning manager's lock; the terminal event
        fires here so waiters wake exactly once.
        """
        if state not in _TRANSITIONS:
            raise ServiceError(f"unknown job state {state!r}; "
                               f"expected one of {list(STATES)}")
        if state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.job_id} cannot move {self.state} -> {state}")
        self.state = state
        now = time.time()  # lint: wall-clock (journaled timestamps)
        if state == RUNNING:
            self.started_at = now
        if state in TERMINAL_STATES:
            self.finished_at = now
            self._done.set()
            # Entry-stream long-pollers must wake on the terminal
            # transition too: it is their end-of-stream signal.
            with self._entries_cond:
                self._entries_cond.notify_all()

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible status payload (what ``GET /jobs/<id>`` serves).

        Terminal jobs carry their ``response`` (DONE) or ``error``
        (FAILED) inline, so one poll fetches status and result together.
        """
        record: Dict[str, object] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "tenant": self.tenant.name if self.tenant is not None else None,
            "trace_id": self.trace_id,
            "retries": self.retries,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wait_seconds": self.wait_seconds,
            "run_seconds": self.run_seconds,
            "entry_count": len(self.entries),
        }
        if self.response is not None:
            record["response"] = self.response
        if self.error is not None:
            record["error"] = self.error
        return record

    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(cls, record: Mapping[str, object]) -> "QueuedJob":
        """Rebuild a job from a durable-store snapshot (recovery path).

        The record is the :func:`repro.tenancy.store.job_snapshot`
        shape.  State is restored *directly* (no lifecycle transitions
        re-fire), timestamps/entries/response/error come back verbatim,
        and the terminal event is pre-fired for already-finished jobs
        so waiters never block on work that ended before the restart.
        """
        job = cls(str(record["job_id"]), str(record["kind"]),
                  record.get("payload") or {},
                  priority=int(record.get("priority", 0)))
        tenant = record.get("tenant")
        if isinstance(tenant, Mapping):
            from repro.tenancy.tenants import Tenant

            job.tenant = Tenant.from_dict(tenant)
        job.trace_id = record.get("trace_id")
        job.deadline_seconds = record.get("deadline_seconds")
        job.retries = int(record.get("retries", 0))
        state = record.get("state", QUEUED)
        if state not in _TRANSITIONS:
            raise ServiceError(f"snapshot of {job.job_id} carries unknown "
                               f"state {state!r}")
        job.state = state
        job.submitted_at = float(record.get("submitted_at",
                                            job.submitted_at))
        job.started_at = record.get("started_at")
        job.finished_at = record.get("finished_at")
        job.response = record.get("response")
        job.error = record.get("error")
        job.entries = [dict(entry) for entry in record.get("entries", [])]
        if job.is_terminal:
            job._done.set()
        return job

    def __repr__(self) -> str:
        return (f"QueuedJob(id={self.job_id!r}, kind={self.kind!r}, "
                f"state={self.state}, priority={self.priority})")
